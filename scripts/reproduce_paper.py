#!/usr/bin/env python
"""End-to-end paper reproduction runner.

Orchestrates the full workflow of the paper at a chosen scale:

1. build the 87-graph dataset (66 train / 5 validation / 16 test),
2. pre-train the policy on the training split with the analytical model
   (the paper: 20,000 samples, 200 checkpoints),
3. validate every checkpoint and pick the best,
4. evaluate all five methods on the test split (Figure 5 / Table 2),
5. evaluate all five methods on BERT with the pipeline simulator
   (Figure 6 / Table 3),
6. run the cost-model calibration study (Figure 7),

writing every artifact under ``--outdir``.

At ``--scale 1`` (default) this finishes in minutes; ``--scale 8`` is
roughly paper scale (full BERT, 36 chips, 800+ sample budgets) and runs for
hours.  The benchmarks under ``benchmarks/`` run the same experiments with
pass/fail shape assertions; this script is the human-facing variant with
progress logging.
"""

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from benchmarks import common as C  # noqa: E402
from benchmarks.bench_fig5_test_set import _run_fig5  # noqa: E402
from benchmarks.bench_fig6_bert import _run_fig6  # noqa: E402
from benchmarks.bench_fig7_cost_model_calibration import _run_fig7  # noqa: E402
from repro.bench.tables import samples_to_threshold_table  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="problem/budget scale (8 ~ paper scale)")
    parser.add_argument("--outdir", default="paper_reproduction")
    args = parser.parse_args()

    os.environ["REPRO_BENCH_SCALE"] = str(args.scale)
    os.makedirs(args.outdir, exist_ok=True)
    summary = {"scale": args.scale}

    def save(name: str, text: str) -> None:
        path = os.path.join(args.outdir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print(f"[saved] {path}")

    # ---- Figure 5 / Table 2 -------------------------------------------
    print("== Figure 5 / Table 2: test-set transfer (analytical model) ==")
    start = time.time()
    cfg, series = _run_fig5()
    elapsed = time.time() - start
    print(f"   done in {elapsed:.0f}s "
          f"({cfg.n_test_graphs} graphs x {cfg.testset_samples} samples x 5 methods)")
    lines = ["samples " + "".join(f"{name:>15}" for name in series)]
    length = min(curve.size for curve in series.values())
    for k in range(0, length, max(length // 12, 1)):
        lines.append(
            f"{k + 1:>7} " + "".join(f"{curve[k]:>14.3f}x" for curve in series.values())
        )
    save("fig5_series", "\n".join(lines))
    rl_final = series["RL"][-1]
    save("table2", samples_to_threshold_table(
        series, [round(rl_final * f, 3) for f in (0.9, 0.95, 1.0)], "RL",
        title="Table 2 (reproduced)",
    ))
    summary["fig5_final"] = {k: float(v[-1]) for k, v in series.items()}

    # ---- Figure 6 / Table 3 -------------------------------------------
    print("== Figure 6 / Table 3: BERT on the pipeline simulator ==")
    start = time.time()
    cfg, graph, series6 = _run_fig6()
    print(f"   done in {time.time() - start:.0f}s "
          f"({graph.n_nodes}-node BERT, {cfg.n_chips_bert} chips)")
    lines = ["samples " + "".join(f"{name:>15}" for name in series6)]
    length = min(curve.size for curve in series6.values())
    for k in range(0, length, max(length // 12, 1)):
        lines.append(
            f"{k + 1:>7} " + "".join(f"{curve[k]:>14.3f}x" for curve in series6.values())
        )
    save("fig6_series", "\n".join(lines))
    anchor = max(series6["RL"][-1], series6["RL Finetuning"][-1])
    save("table3", samples_to_threshold_table(
        series6, [round(anchor * f, 3) for f in (0.9, 0.95, 1.0)], "RL",
        title="Table 3 (reproduced)",
    ))
    summary["fig6_final"] = {k: float(v[-1]) for k, v in series6.items()}

    # ---- Figure 7 ------------------------------------------------------
    print("== Figure 7: cost-model calibration ==")
    start = time.time()
    cfg, graph, predicted, measured, pearson, invalid_rate = _run_fig7()
    print(f"   done in {time.time() - start:.0f}s")
    save("fig7", (
        f"samples: {cfg.calibration_samples}\n"
        f"invalid on hardware: {invalid_rate:.1%} (paper: 13.5%)\n"
        f"Pearson R: {pearson:.3f} (paper: 0.91)"
    ))
    summary["fig7"] = {"pearson": pearson, "invalid_rate": invalid_rate}

    with open(os.path.join(args.outdir, "summary.json"), "w") as fh:
        json.dump(summary, fh, indent=2)
    print(f"\nsummary written to {args.outdir}/summary.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
