#!/usr/bin/env bash
# CI gate: tier-1 test suite + a tiny-scale throughput-bench smoke run.
#
# The bench smoke run both exercises the search/pretrain/zero-shot loops
# end-to-end (catching integration breaks the unit suite can miss) and
# refreshes BENCH_search_throughput.json so samples/sec regressions are
# visible in the diff.  The smoke includes a 2-worker pool sweep under a
# hard timeout: a deadlocked worker pool must fail the gate fast, not hang
# the suite (the pool also has its own recv timeout; the outer `timeout`
# is the belt-and-braces kill switch).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== throughput bench (tiny smoke, 2-worker pool) =="
timeout --kill-after=30 300 \
    python benchmarks/bench_search_throughput.py --tiny --workers 2

echo "== cross-topology smoke (mesh 2x2 + biring) =="
# A partition search on each non-ring interconnect: catches topology
# plumbing breaks (solver general mode, reachability cost models, CLI)
# end-to-end, under a hard timeout so a wedged solver fails fast.
timeout --kill-after=15 120 env PYTHONPATH=src python -m repro partition mlp \
    --topology mesh --mesh-dims 2x2 --method random --samples 4 --seed 0 \
    > /dev/null
timeout --kill-after=15 120 env PYTHONPATH=src python -m repro partition mlp \
    --topology biring --chips 3 --method random --samples 4 --seed 0 \
    > /dev/null

echo "== ci_check OK =="
