#!/usr/bin/env bash
# CI gate: tier-1 test suite + a tiny-scale throughput-bench smoke run.
#
# The bench smoke run both exercises the search/pretrain/zero-shot loops
# end-to-end (catching integration breaks the unit suite can miss) and
# refreshes BENCH_search_throughput.json so samples/sec regressions are
# visible in the diff.  The smoke includes a 2-worker pool sweep under a
# hard timeout: a deadlocked worker pool must fail the gate fast, not hang
# the suite (the pool also has its own recv timeout; the outer `timeout`
# is the belt-and-braces kill switch).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== throughput bench (tiny smoke, 2-worker pool) =="
timeout --kill-after=30 300 \
    python benchmarks/bench_search_throughput.py --tiny --workers 2

echo "== ci_check OK =="
