#!/usr/bin/env bash
# CI gate: tier-1 test suite + a tiny-scale throughput-bench smoke run.
#
# The bench smoke run both exercises the search/pretrain/zero-shot loops
# end-to-end (catching integration breaks the unit suite can miss) and
# refreshes BENCH_search_throughput.json so samples/sec regressions are
# visible in the diff.  The smoke includes a 2-worker pool sweep under a
# hard timeout: a deadlocked worker pool must fail the gate fast, not hang
# the suite (the pool also has its own recv timeout; the outer `timeout`
# is the belt-and-braces kill switch).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== throughput bench (tiny smoke, 2-worker pool) =="
timeout --kill-after=30 300 \
    python benchmarks/bench_search_throughput.py --tiny --workers 2

echo "== cross-topology smoke (mesh 2x2 + biring) =="
# A partition search on each non-ring interconnect: catches topology
# plumbing breaks (solver general mode, reachability cost models, CLI)
# end-to-end, under a hard timeout so a wedged solver fails fast.
timeout --kill-after=15 120 env PYTHONPATH=src python -m repro partition mlp \
    --topology mesh --mesh-dims 2x2 --method random --samples 4 --seed 0 \
    > /dev/null
timeout --kill-after=15 120 env PYTHONPATH=src python -m repro partition mlp \
    --topology biring --chips 3 --method random --samples 4 --seed 0 \
    > /dev/null

echo "== serve smoke (HTTP server, 2 requests, metrics) =="
# Start the serving endpoint, issue two identical requests over HTTP (the
# second must be a cache hit), assert the metrics counters, and shut down
# cleanly — all under a hard timeout so a wedged server fails the gate
# fast.  Exercises the full serve stack end-to-end: fingerprinting, the
# partition cache, the warm pool, the JSON endpoint, and /metrics.
timeout --kill-after=15 120 env PYTHONPATH=src python - <<'PY'
from repro.cli import _resolve_zoo_graph
from repro.serve import (
    PartitionServer, PartitionService, ServiceConfig,
    fetch_metrics, request_partition,
)

# Wired exactly like `repro serve`: the zoo-names-only resolver (a network
# client must never make the server read server-local .npz paths).
service = PartitionService(ServiceConfig(default_samples=6))
with PartitionServer(service, port=0, graph_resolver=_resolve_zoo_graph).start() as server:
    first = request_partition({"graph": "mlp", "chips": 4}, port=server.port)
    assert first["cached"] is False and first["source"] == "cold", first
    second = request_partition({"graph": "mlp", "chips": 4}, port=server.port)
    assert second["cached"] is True, second
    assert second["assignment"] == first["assignment"]
    metrics = fetch_metrics(port=server.port)
    assert metrics["requests_total"] == 2, metrics
    assert metrics["cache"]["hits"] == 1 and metrics["cache"]["misses"] == 1, metrics
    assert metrics["by_source"]["cached"] == 1 and metrics["by_source"]["cold"] == 1
print("serve smoke OK: cold -> cache hit, metrics consistent, clean shutdown")
PY

echo "== chaos smoke (kill a worker mid-replay, assert bit-identity) =="
# One representative fault-injection run from the chaos suite (the full
# suite runs under `pytest -m chaos`; tier-1 deselects the marker).  The
# hard timeout is the point: a recovery path that wedges instead of
# respawning must fail the gate fast.
timeout --kill-after=30 300 \
    python -m pytest -q -m chaos -k smoke tests/reliability

echo "== ci_check OK =="
