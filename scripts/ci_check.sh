#!/usr/bin/env bash
# CI gate: tier-1 test suite + a tiny-scale throughput-bench smoke run.
#
# The bench smoke run both exercises the search/pretrain/zero-shot loops
# end-to-end (catching integration breaks the unit suite can miss) and
# refreshes BENCH_search_throughput.json so samples/sec regressions are
# visible in the diff.  The smoke includes a 2-worker pool sweep under a
# hard timeout: a deadlocked worker pool must fail the gate fast, not hang
# the suite (the pool also has its own recv timeout; the outer `timeout`
# is the belt-and-braces kill switch).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== throughput bench (tiny smoke, 2-worker pool) =="
timeout --kill-after=30 300 \
    python benchmarks/bench_search_throughput.py --tiny --workers 2

echo "== float32 backend smoke (fused kernels vs float64 reference) =="
# A tiny search at both precisions from the same seed: the float32 fused
# path (wide SAGE GEMM, tiled policy head, flat Adam) must produce the
# same best partition as the frozen float64 reference and stay inside the
# backend's drift tolerance — the precision seam's end-to-end invariant,
# under a hard timeout so a wedged fused kernel fails the gate fast.
timeout --kill-after=15 120 env PYTHONPATH=src python - <<'PY'
import numpy as np
from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.graphs.zoo import build_mlp
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.package import MCMPackage
from repro.rl.ppo import PPOConfig

def run(precision):
    cfg = RLPartitionerConfig(
        hidden=32, n_sage_layers=2,
        ppo=PPOConfig(n_rollouts=10, n_minibatches=2, n_epochs=3),
        precision=precision,
    )
    p = RLPartitioner(4, config=cfg, rng=7)
    env = PartitionEnvironment(
        build_mlp(), AnalyticalCostModel(MCMPackage(n_chips=4)), 4
    )
    return p, p.search(env, 30)

p64, r64 = run("float64")
p32, r32 = run("float32")
assert r32.best_assignment is not None
np.testing.assert_array_equal(r64.best_assignment, r32.best_assignment)
s64, s32 = p64.state_dict(), p32.state_dict()
assert all(v.dtype == np.float32 for v in s32.values())
drift = max(
    float(np.max(np.abs(s64[k].astype(np.float64) - s32[k].astype(np.float64))))
    for k in s64
)
assert drift < 1e-4, f"float32 weight drift {drift} exceeds bound"
print(f"float32 smoke OK: same best partition, weight drift {drift:.2e}")
PY

echo "== cross-topology smoke (mesh 2x2 + biring) =="
# A partition search on each non-ring interconnect: catches topology
# plumbing breaks (solver general mode, reachability cost models, CLI)
# end-to-end, under a hard timeout so a wedged solver fails fast.
timeout --kill-after=15 120 env PYTHONPATH=src python -m repro partition mlp \
    --topology mesh --mesh-dims 2x2 --method random --samples 4 --seed 0 \
    > /dev/null
timeout --kill-after=15 120 env PYTHONPATH=src python -m repro partition mlp \
    --topology biring --chips 3 --method random --samples 4 --seed 0 \
    > /dev/null

echo "== serve smoke (HTTP server, 2 requests, metrics) =="
# Start the serving endpoint, issue two identical requests over HTTP (the
# second must be a cache hit), assert the metrics counters, and shut down
# cleanly — all under a hard timeout so a wedged server fails the gate
# fast.  Exercises the full serve stack end-to-end: fingerprinting, the
# partition cache, the warm pool, the JSON endpoint, and /metrics.
timeout --kill-after=15 120 env PYTHONPATH=src python - <<'PY'
from repro.cli import _resolve_zoo_graph
from repro.serve import (
    PartitionServer, PartitionService, ServiceConfig,
    fetch_metrics, request_partition,
)

# Wired exactly like `repro serve`: the zoo-names-only resolver (a network
# client must never make the server read server-local .npz paths).
service = PartitionService(ServiceConfig(default_samples=6))
with PartitionServer(service, port=0, graph_resolver=_resolve_zoo_graph).start() as server:
    first = request_partition({"graph": "mlp", "chips": 4}, port=server.port)
    assert first["cached"] is False and first["source"] == "cold", first
    second = request_partition({"graph": "mlp", "chips": 4}, port=server.port)
    assert second["cached"] is True, second
    assert second["assignment"] == first["assignment"]
    metrics = fetch_metrics(port=server.port)
    assert metrics["requests_total"] == 2, metrics
    assert metrics["cache"]["hits"] == 1 and metrics["cache"]["misses"] == 1, metrics
    assert metrics["by_source"]["cached"] == 1 and metrics["by_source"]["cold"] == 1
print("serve smoke OK: cold -> cache hit, metrics consistent, clean shutdown")
PY

echo "== coalescing smoke (concurrent cold misses over HTTP) =="
# Four concurrent clients send distinct cold requests inside one admission
# window: they must coalesce into a shared replay flush (coalesced_requests
# >= 1 in /metrics) and each still get a valid partition.  Exercises the
# cross-connection batching path end-to-end: threaded HTTP handlers ->
# leader/follower admission -> one replay_batch fan-out.  Hard timeout: a
# batch whose leader never flushes (or whose followers never wake) must
# fail the gate fast, not hang it.
timeout --kill-after=15 120 env PYTHONPATH=src python - <<'PY'
import threading
from repro.cli import _resolve_zoo_graph
from repro.serve import (
    PartitionServer, PartitionService, ServiceConfig,
    fetch_metrics, request_partition,
)

service = PartitionService(
    ServiceConfig(default_samples=6, batch_window_ms=200.0, batch_max_size=4)
)
names = ["mlp", "cnn", "gru", "bert"]
replies, barrier = [None] * 4, threading.Barrier(4)
with PartitionServer(service, port=0, graph_resolver=_resolve_zoo_graph).start() as server:
    def client(i):
        barrier.wait()
        replies[i] = request_partition(
            {"graph": names[i], "chips": 4}, port=server.port
        )
    threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
    for t in threads: t.start()
    for t in threads: t.join()
    assert all(r is not None and not r["cached"] for r in replies), replies
    metrics = fetch_metrics(port=server.port)
assert metrics["batching"]["coalesced_requests"] >= 1, metrics["batching"]
print(
    "coalescing smoke OK: 4 concurrent cold requests, "
    f"{metrics['batching']['coalesced_requests']} coalesced in "
    f"{metrics['batching']['batches_flushed']} flush(es)"
)
PY

echo "== int8 serve smoke (quantized inference-only deployment) =="
# An int8 service must serve a valid partition whose request fingerprint
# matches the float64 deployment's (precision is not identity), surface
# its quantization error in /metrics, and refuse to train.  Hard timeout:
# a wedged quantized GEMM fails the gate fast.
timeout --kill-after=15 120 env PYTHONPATH=src python - <<'PY'
from repro.graphs.zoo import build_mlp
from repro.serve import PartitionRequest, PartitionService, ServiceConfig

s8 = PartitionService(ServiceConfig(default_samples=6, precision="int8"))
s64 = PartitionService(ServiceConfig(default_samples=6))
r8 = s8.submit(PartitionRequest(graph=build_mlp(), n_chips=4))
r64 = s64.submit(PartitionRequest(graph=build_mlp(), n_chips=4))
assert r8.source == "cold" and r8.assignment.max() < 4, r8
assert r8.fingerprint == r64.fingerprint
quant = s8.metrics()["int8_quantization"]
assert quant and all(s["max_abs_err"] > 0 for s in quant.values()), quant
assert "int8_quantization" not in s64.metrics()
print(f"int8 smoke OK: valid partition, quantization stats {list(quant)}")
PY

echo "== router smoke (2 shards x 2 replicas, SIGKILL one mid-burst) =="
# The replicated tier's acceptance bar, end-to-end with real shard
# subprocesses: an armed shard_kill fault SIGKILLs a shard under the
# router mid-burst, and every client request must still succeed (failover
# + fingerprint-seeded determinism make the loss invisible).  The hard
# timeout is the gate: a router that hangs on a dead shard instead of
# failing over must fail fast.
timeout --kill-after=30 300 env PYTHONPATH=src python - <<'PY'
from repro.cli import _resolve_zoo_graph
from repro.reliability import Fault, FaultPlan
from repro.serve import RouterConfig, ShardRouter

plan = FaultPlan([Fault(site="shard_kill", kind="kill", at=())])
router = ShardRouter.spawn(
    2,
    config=RouterConfig(
        replication=2,
        probe_interval_s=0.5,
        failure_threshold=2,
        breaker_reset_s=1.0,
        hedge=False,  # failover, not the hedge, must absorb the kill
        fault_plan=plan,
    ),
    graph_resolver=_resolve_zoo_graph,
    seed=0,
)
try:
    payload = {"graph": "mlp", "chips": 4, "samples": 4}
    replies = [router.handle_partition(payload) for _ in range(6)]
    assert all(status == 200 for status, _ in replies), replies
    assert all(not reply.get("degraded") for _, reply in replies), replies
    first = replies[0][1]["assignment"]
    assert all(reply["assignment"] == first for _, reply in replies)
    metrics = router.metrics()
    assert metrics["failovers"] >= 1, metrics
    assert metrics["faults"]["fired_by_site"] == {"shard_kill": 1}, metrics
    dead = [s for s in metrics["shards"].values() if not s["process_alive"]]
    assert len(dead) == 1, metrics
finally:
    router.close()
print("router smoke OK: shard SIGKILLed, zero failed requests, failovers counted")
PY

echo "== trace smoke (2-shard router, X-Repro-Trace end to end) =="
# A traced request through a router with two shard subprocesses: the
# client-supplied trace id must be echoed back, force-sample the trace,
# and appear in BOTH processes' JSONL sinks — router.attempt on the
# router side, cache.lookup + search.replay_batch on the shard side.
# Hard timeout: a tracing layer that wedges the request path (or a
# writer thread that never drains) must fail the gate fast.
timeout --kill-after=30 300 env PYTHONPATH=src python - <<'PY'
import glob, json, os, tempfile, time
from repro.cli import _resolve_zoo_graph
from repro.serve import RouterConfig, ShardRouter

trace_dir = tempfile.mkdtemp(prefix="repro-trace-smoke-")
router = ShardRouter.spawn(
    2,
    config=RouterConfig(trace_dir=trace_dir, trace_sample=0.0),
    graph_resolver=_resolve_zoo_graph,
    seed=0,
)
try:
    # Same shape as RouterServer.do_POST: a client-supplied header id
    # forces sampling; handle_partition forwards it to the shard.
    trace = router.tracer.start(trace_id="ci-trace-smoke-01")
    status, reply = router.handle_partition(
        {"graph": "mlp", "chips": 4, "samples": 4}, trace=trace
    )
    router.tracer.finish(trace, status=status)
    assert status == 200 and "assignment" in reply, (status, reply)
    # The writer threads are asynchronous (and the shard is another
    # process): poll the JSONL sinks until both sides have landed.
    deadline = time.time() + 30
    rows = []
    while time.time() < deadline:
        router.tracer.flush(timeout=1.0)
        rows = []
        for path in glob.glob(os.path.join(trace_dir, "*.jsonl")):
            with open(path) as fh:
                rows.extend(json.loads(line) for line in fh)
        rows = [r for r in rows if r["trace_id"] == "ci-trace-smoke-01"]
        names = {s["name"] for r in rows for s in r["spans"]}
        if {"router.attempt", "cache.lookup", "search.replay_batch"} <= names:
            break
        time.sleep(0.1)
    assert len(rows) == 2, f"expected router+shard traces, got {rows}"
    names = {s["name"] for r in rows for s in r["spans"]}
    assert "router.attempt" in names, names
    assert "cache.lookup" in names and "search.replay_batch" in names, names
    for r in rows:  # every non-root span links into its own trace
        ids = {s["span_id"] for s in r["spans"]}
        assert all(
            s["parent_id"] in ids for s in r["spans"] if s["span_id"] != "s0"
        ), r
finally:
    router.close()
print("trace smoke OK: id echoed, router+shard spans linked in JSONL")
PY

echo "== chaos smoke (kill a worker mid-replay, assert bit-identity) =="
# One representative fault-injection run from the chaos suite (the full
# suite runs under `pytest -m chaos`; tier-1 deselects the marker).  The
# hard timeout is the point: a recovery path that wedges instead of
# respawning must fail the gate fast.
timeout --kill-after=30 300 \
    python -m pytest -q -m chaos -k smoke tests/reliability

echo "== ci_check OK =="
