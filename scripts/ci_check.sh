#!/usr/bin/env bash
# CI gate: tier-1 test suite + a tiny-scale throughput-bench smoke run.
#
# The bench smoke run both exercises the search/pretrain/zero-shot loops
# end-to-end (catching integration breaks the unit suite can miss) and
# refreshes BENCH_search_throughput.json so samples/sec regressions are
# visible in the diff.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== throughput bench (tiny smoke) =="
python benchmarks/bench_search_throughput.py --tiny

echo "== ci_check OK =="
