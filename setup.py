"""Setup shim for environments without the `wheel` package.

`pip install -e .` needs `wheel` for PEP 660 editable installs on old
setuptools; `python setup.py develop` works without it.  Configuration
lives in pyproject.toml.
"""

from setuptools import setup

setup()
