"""Seeded random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` and normalises it via
:func:`as_generator`.  Components that need several independent streams derive
them with :func:`spawn_generator` so results stay reproducible regardless of
call order elsewhere in the program.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def as_generator(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for entropy-seeded, an ``int`` for a deterministic stream, or
        an existing generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be int, Generator or None, got {type(seed).__name__}")


def spawn_generator(rng: np.random.Generator, key: int) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    The child stream is a deterministic function of the parent state and
    ``key``; drawing from the child does not advance the parent.
    """
    if not isinstance(rng, np.random.Generator):
        raise TypeError("rng must be a numpy Generator")
    if key < 0:
        raise ValueError("key must be non-negative")
    # Mix the key into fresh entropy drawn once from the parent.
    seed_material = rng.integers(0, 2**63 - 1)
    return np.random.default_rng(np.random.SeedSequence([int(seed_material), int(key)]))
