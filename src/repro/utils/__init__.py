"""Shared utilities: seeded RNG helpers and argument validation."""

from repro.utils.rng import as_generator, spawn_generator
from repro.utils.validation import (
    check_array_1d,
    check_in_range,
    check_positive,
    check_probability_matrix,
)

__all__ = [
    "as_generator",
    "spawn_generator",
    "check_array_1d",
    "check_in_range",
    "check_positive",
    "check_probability_matrix",
]
