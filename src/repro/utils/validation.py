"""Lightweight argument-validation helpers shared across the library."""

from __future__ import annotations

import numpy as np


def check_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def check_in_range(value: float, name: str, low: float, high: float) -> float:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return float(value)


def check_array_1d(arr, name: str, size: "int | None" = None) -> np.ndarray:
    """Coerce ``arr`` to a 1-D numpy array, optionally checking its length."""
    out = np.asarray(arr)
    if out.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {out.shape}")
    if size is not None and out.shape[0] != size:
        raise ValueError(f"{name} must have length {size}, got {out.shape[0]}")
    return out


def check_probability_matrix(probs, n_rows: int, n_cols: int, name: str = "probs") -> np.ndarray:
    """Validate an ``(n_rows, n_cols)`` row-stochastic matrix.

    Each row must be a probability distribution (non-negative, summing to one
    within tolerance).  Returns the matrix as ``float64``.
    """
    mat = np.asarray(probs, dtype=np.float64)
    if mat.shape != (n_rows, n_cols):
        raise ValueError(f"{name} must have shape ({n_rows}, {n_cols}), got {mat.shape}")
    if np.any(mat < -1e-12):
        raise ValueError(f"{name} contains negative entries")
    row_sums = mat.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=1e-6):
        bad = int(np.argmax(np.abs(row_sums - 1.0)))
        raise ValueError(f"{name} row {bad} sums to {row_sums[bad]:.6f}, expected 1")
    return mat
