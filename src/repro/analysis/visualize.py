"""Graphviz (DOT) export of computation graphs and partitions."""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import CompGraph
from repro.graphs.ops import OpType

#: color cycle for chip clusters
_PALETTE = [
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6",
    "#ffff99", "#1f78b4", "#33a02c", "#e31a1c", "#ff7f00",
]


def to_dot(
    graph: CompGraph,
    assignment: "np.ndarray | None" = None,
    max_nodes: int = 500,
) -> str:
    """Render ``graph`` as a DOT string, optionally coloured by chip.

    Parameters
    ----------
    graph:
        Graph to render.
    assignment:
        Optional ``(N,)`` chip assignment; nodes are grouped into chip
        clusters when given.
    max_nodes:
        Refuse to render graphs beyond this size (Graphviz becomes
        unusable); raise ``ValueError`` instead.
    """
    if graph.n_nodes > max_nodes:
        raise ValueError(
            f"graph has {graph.n_nodes} nodes; refusing to render more than "
            f"{max_nodes} (pass a larger max_nodes to override)"
        )
    lines = [f'digraph "{graph.name}" {{', "  rankdir=TB;", "  node [shape=box];"]

    def node_line(i: int) -> str:
        label = f"{graph.names[i]}\\n{OpType(int(graph.op_types[i])).name}"
        return f'    n{i} [label="{label}"];'

    if assignment is not None:
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (graph.n_nodes,):
            raise ValueError(f"assignment must have shape ({graph.n_nodes},)")
        for chip in sorted(set(assignment.tolist())):
            color = _PALETTE[chip % len(_PALETTE)]
            lines.append(f"  subgraph cluster_chip{chip} {{")
            lines.append(f'    label="chip {chip}"; style=filled; color="{color}";')
            for i in np.flatnonzero(assignment == chip):
                lines.append(node_line(int(i)))
            lines.append("  }")
    else:
        for i in range(graph.n_nodes):
            lines.append(node_line(i))

    for s, d in zip(graph.src.tolist(), graph.dst.tolist()):
        lines.append(f"  n{s} -> n{d};")
    lines.append("}")
    return "\n".join(lines)
