"""Partition inspection and reporting tools.

Downstream users need to understand *why* a partition is fast or slow:
per-chip loads, ring-link traffic, memory pressure, and where the cut edges
fall.  This package turns an assignment into a structured report, a
rendered table, or a Graphviz dump.
"""

from repro.analysis.report import (
    PartitionReport,
    analyze_partition,
    format_partition_report,
    format_service_metrics,
)
from repro.analysis.visualize import to_dot

__all__ = [
    "PartitionReport",
    "analyze_partition",
    "format_partition_report",
    "format_service_metrics",
    "to_dot",
]
