"""Structured per-chip analysis of a partition."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.tables import format_table
from repro.graphs.graph import CompGraph
from repro.hardware.base import check_assignment, cross_chip_transfers
from repro.hardware.memory import MemoryPlanner
from repro.hardware.package import MCMPackage
from repro.solver.constraints import validate_partition


@dataclass(frozen=True)
class PartitionReport:
    """Per-chip and per-link breakdown of one partition.

    Attributes
    ----------
    n_chips:
        Package size the report was computed for.
    node_counts:
        ``(C,)`` ops per chip.
    compute_us:
        ``(C,)`` raw compute per chip.
    param_bytes:
        ``(C,)`` resident parameter bytes per chip.
    peak_bytes:
        ``(C,)`` scheduled peak memory per chip.
    link_bytes:
        ``(n_links,)`` bytes crossing each interconnect link per inference
        (``C-1`` ring links on the default uni-ring package).
    cut_edges:
        Number of graph edges crossing chips.
    max_hop:
        Longest route (in links) any transfer travels.
    static_ok:
        Whether the partition satisfies Equations 2-4.
    """

    n_chips: int
    node_counts: np.ndarray
    compute_us: np.ndarray
    param_bytes: np.ndarray
    peak_bytes: np.ndarray
    link_bytes: np.ndarray
    cut_edges: int
    max_hop: int
    static_ok: bool

    @property
    def compute_imbalance(self) -> float:
        """Max over mean per-chip compute (1.0 = perfectly balanced)."""
        mean = self.compute_us.mean()
        return float(self.compute_us.max() / mean) if mean > 0 else float("inf")

    @property
    def used_chips(self) -> int:
        """Chips with at least one op."""
        return int((self.node_counts > 0).sum())


def analyze_partition(
    graph: CompGraph, assignment, package: MCMPackage
) -> PartitionReport:
    """Build a :class:`PartitionReport` for ``assignment`` on ``package``."""
    n_chips = package.n_chips
    assignment = check_assignment(graph, assignment, n_chips)

    node_counts = np.bincount(assignment, minlength=n_chips)
    compute = np.zeros(n_chips)
    np.add.at(compute, assignment, graph.compute_us)
    params = np.zeros(n_chips)
    np.add.at(params, assignment, graph.param_bytes)

    planner = MemoryPlanner(n_chips, capacity_bytes=package.chip.sram_bytes)
    peaks = planner.plan(graph, assignment).peak_bytes

    src_c, dst_c, nbytes = cross_chip_transfers(graph, assignment)
    topology = package.topology
    link_bytes = np.zeros(max(package.n_links, 1))
    max_hop = 0
    for s, d, b in zip(src_c, dst_c, nbytes):
        # Unroutable transfers carry no link traffic; the validation report
        # below flags the partition instead.
        if topology.reachable[s, d]:
            link_bytes[topology.link_path(int(s), int(d))] += b
            max_hop = max(max_hop, int(topology.hop_matrix[s, d]))

    report = validate_partition(graph, assignment, n_chips, topology=topology)
    return PartitionReport(
        n_chips=n_chips,
        node_counts=node_counts,
        compute_us=compute,
        param_bytes=params,
        peak_bytes=peaks,
        link_bytes=link_bytes[: package.n_links],
        cut_edges=int(src_c.size),
        max_hop=max_hop,
        static_ok=report.ok,
    )


def format_partition_report(report: PartitionReport) -> str:
    """Render a :class:`PartitionReport` as a fixed-width table."""
    rows = []
    for chip in range(report.n_chips):
        rows.append(
            [
                str(chip),
                str(int(report.node_counts[chip])),
                f"{report.compute_us[chip]:.1f}",
                f"{report.param_bytes[chip] / 2**20:.2f}",
                f"{report.peak_bytes[chip] / 2**20:.2f}",
            ]
        )
    table = format_table(
        ["chip", "ops", "compute (us)", "params (MiB)", "peak mem (MiB)"],
        rows,
        title="partition report",
    )
    summary = (
        f"\nstatic constraints: {'OK' if report.static_ok else 'VIOLATED'}"
        f" | cut edges: {report.cut_edges}"
        f" | max hop: {report.max_hop}"
        f" | compute imbalance: {report.compute_imbalance:.2f}x"
    )
    return table + summary


def _fmt_ms(value) -> str:
    return "-" if value is None else f"{value:.2f}"


def _format_router_metrics(metrics: dict) -> str:
    """Render a :meth:`ShardRouter.metrics` snapshot (``router: true``)."""
    rows = []
    for shard_id, info in sorted(metrics.get("shards", {}).items()):
        health = info.get("health", {})
        breaker = info.get("breaker", {})
        rows.append(
            [
                shard_id,
                info.get("address", "-"),
                "yes" if health.get("healthy") else "no",
                breaker.get("state", "-"),
                str(info.get("requests", 0)),
                str(info.get("failures", 0)),
            ]
        )
    table = format_table(
        ["shard", "address", "healthy", "breaker", "requests", "failures"],
        rows,
        title="router metrics",
    )
    latency = metrics.get("latency_ms", {})
    hedge = metrics.get("hedge", {})
    lines = [
        table,
        f"\nrequests: {metrics.get('requests_total', 0)}"
        f" (p50 {_fmt_ms(latency.get('p50_ms'))} ms"
        f" / p95 {_fmt_ms(latency.get('p95_ms'))} ms"
        f" / p99 {_fmt_ms(latency.get('p99_ms'))} ms)"
        f" | replication: {metrics.get('replication', 1)}",
        f"failovers: {metrics.get('failovers', 0)}"
        f" | hedges: {metrics.get('hedges_fired', 0)}"
        f" fired / {metrics.get('hedge_wins', 0)} won"
        f" (delay {hedge.get('delay_s', 0.0):.3f}s,"
        f" {'on' if hedge.get('enabled') else 'off'})",
        f"degraded serves: {metrics.get('degraded_serves', 0)}"
        f" | all-replicas-down: {metrics.get('all_replicas_down', 0)}"
        f" | client errors: {metrics.get('client_errors', 0)}",
    ]
    faults = metrics.get("faults")
    if faults:
        lines.append(
            f"faults: {faults.get('fired_total', 0)} fired"
            f" / {faults.get('armed', 0)} armed"
        )
    return "\n".join(lines)


def format_service_metrics(metrics: dict) -> str:
    """Render a :meth:`PartitionService.metrics` snapshot as a text report.

    One latency row per request source (``cached`` / ``warm`` / ``cold`` /
    ``degraded``), prefixed by the aggregate counters, then batching /
    reliability / pool lines when those blocks are present — the operator's
    view of the serving layer (the ``/metrics`` endpoint carries the same
    dict as JSON; ``repro metrics`` fetches and feeds it here).  A router
    snapshot (``router: true``) renders the per-shard table instead.
    """
    if metrics.get("router"):
        return _format_router_metrics(metrics)
    cache = metrics.get("cache", {})
    rows = []
    for source in ("cached", "warm", "cold", "degraded"):
        stats = metrics.get("latency_ms", {}).get(source, {})
        rows.append(
            [
                source,
                str(stats.get("count", 0)),
                _fmt_ms(stats.get("p50_ms")),
                _fmt_ms(stats.get("p95_ms")),
                _fmt_ms(stats.get("p99_ms")),
            ]
        )
    table = format_table(
        ["source", "requests", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
        rows,
        title="serving metrics",
    )
    lines = [
        table,
        f"\nrequests: {metrics.get('requests_total', 0)}"
        f" ({metrics.get('requests_per_sec', 0.0):.1f}/s over "
        f"{metrics.get('uptime_s', 0.0):.0f}s)"
        f" | cache hit rate: {cache.get('hit_rate', 0.0):.1%}"
        f" ({cache.get('size', 0)}/{cache.get('capacity', 0)} entries)"
        f" | errors: {metrics.get('errors', 0)}",
    ]
    batching = metrics.get("batching")
    if batching is not None:
        wait = batching.get("batch_wait_ms", {})
        sizes = batching.get("batch_size_histogram", {})
        size_text = (
            " ".join(f"{k}x{v}" for k, v in sorted(
                sizes.items(), key=lambda kv: int(kv[0])
            ))
            or "-"
        )
        lines.append(
            f"batching: {batching.get('batches_flushed', 0)} batches"
            f" / {batching.get('coalesced_requests', 0)} coalesced"
            f" (window {batching.get('window_ms', 0.0):.0f}ms,"
            f" wait p95 {_fmt_ms(wait.get('p95_ms'))} ms)"
            f" | sizes: {size_text}"
        )
    reliability = metrics.get("reliability")
    if reliability is not None:
        deadline = reliability.get("request_deadline_s")
        lines.append(
            f"reliability: {metrics.get('throttled', 0)} throttled"
            f" | {metrics.get('rate_limited', 0)} rate-limited"
            f" | {reliability.get('degraded_serves', 0)} degraded"
            f" | deadline: {'-' if deadline is None else f'{deadline:g}s'}"
        )
        if "faults_fired" in reliability:
            lines.append(
                f"faults: {reliability.get('faults_fired', 0)} fired"
                f" / {reliability.get('faults_armed', 0)} armed"
            )
    pool = metrics.get("pool")
    if pool is not None:
        lines.append(
            f"warm pool: {pool.get('size', 0)}/{pool.get('capacity', 0)}"
            f" policies | {pool.get('builds', 0)} builds"
            f" | {pool.get('weight_loads', 0)} weight loads"
        )
    return "\n".join(lines)
