"""Reverse-mode automatic differentiation over NumPy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations producing
it on a tape; :meth:`Tensor.backward` replays the tape in reverse to
accumulate gradients.  Only the ops needed by the partitioning policy are
implemented — see :mod:`repro.nn.functional` for the full vocabulary — and
each one is gradient-checked in the test suite against finite differences.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """An array with an optional gradient tape.

    Parameters
    ----------
    data:
        Array-like payload (stored as ``float64``).
    requires_grad:
        Record operations so gradients flow back to this tensor.
    parents:
        Input tensors of the op producing this tensor (internal).
    backward_fn:
        Function mapping the output gradient to per-parent gradients
        (internal).
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "_version")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: "tuple | None" = None,
        backward_fn: "Callable | None" = None,
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) or bool(parents)
        self.grad: "np.ndarray | None" = None
        self._parents = parents or ()
        self._backward_fn = backward_fn
        self._version = 0

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def version(self) -> int:
        """Monotonic counter of in-place payload mutations.

        Bumped by whatever rewrites ``data`` after construction (optimiser
        steps, ``load_state_dict``); consumers may memoise values derived
        from this tensor keyed on the counter.
        """
        return self._version

    def bump_version(self) -> None:
        """Record that ``data`` was mutated in place."""
        self._version += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grad = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad})"

    def item(self) -> float:
        """The scalar payload of a 0-d/1-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """A view of the data cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def numpy(self) -> np.ndarray:
        """The raw ndarray (no copy)."""
        return self.data

    # ------------------------------------------------------------------
    # Autodiff
    # ------------------------------------------------------------------
    def backward(self, grad: "np.ndarray | None" = None) -> None:
        """Back-propagate from this tensor through the recorded tape.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor; defaults to
            1 for scalar tensors.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise ValueError(f"grad shape {grad.shape} != tensor shape {self.data.shape}")

        # Topologically order the tape (iterative DFS to survive deep nets).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited and p.requires_grad:
                    stack.append((p, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward_fn is None:
                # Leaf: accumulate into .grad.
                if node.requires_grad:
                    node.grad = node_grad if node.grad is None else node.grad + node_grad
                continue
            parent_grads = node._backward_fn(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                pgrad = _unbroadcast(np.asarray(pgrad, dtype=np.float64), parent.data.shape)
                key = id(parent)
                if parent._backward_fn is None:
                    parent.grad = pgrad if parent.grad is None else parent.grad + pgrad
                else:
                    grads[key] = pgrad if key not in grads else grads[key] + pgrad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Operator sugar (delegates to repro.nn.functional)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from repro.nn import functional as F

        return F.add(self, _wrap(other))

    __radd__ = __add__

    def __sub__(self, other):
        from repro.nn import functional as F

        return F.sub(self, _wrap(other))

    def __rsub__(self, other):
        from repro.nn import functional as F

        return F.sub(_wrap(other), self)

    def __mul__(self, other):
        from repro.nn import functional as F

        return F.mul(self, _wrap(other))

    __rmul__ = __mul__

    def __truediv__(self, other):
        from repro.nn import functional as F

        return F.div(self, _wrap(other))

    def __rtruediv__(self, other):
        from repro.nn import functional as F

        return F.div(_wrap(other), self)

    def __neg__(self):
        from repro.nn import functional as F

        return F.mul(self, Tensor(-1.0))

    def __matmul__(self, other):
        from repro.nn import functional as F

        return F.matmul(self, _wrap(other))

    def sum(self, axis=None, keepdims: bool = False):
        from repro.nn import functional as F

        return F.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from repro.nn import functional as F

        return F.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from repro.nn import functional as F

        return F.reshape(self, shape)


def _wrap(value) -> Tensor:
    """Coerce scalars/arrays to constant tensors."""
    return value if isinstance(value, Tensor) else Tensor(value)


def parameters_vector(params: "Iterable[Tensor]") -> np.ndarray:
    """Flatten a parameter collection into one vector (for tests/debug)."""
    return np.concatenate([p.data.reshape(-1) for p in params]) if params else np.zeros(0)
