"""Reverse-mode automatic differentiation over NumPy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations producing
it on a tape; :meth:`Tensor.backward` replays the tape in reverse to
accumulate gradients.  Only the ops needed by the partitioning policy are
implemented — see :mod:`repro.nn.functional` for the full vocabulary — and
each one is gradient-checked in the test suite against finite differences.
"""

from __future__ import annotations

import os
import zlib
from typing import Callable, Iterable

import numpy as np

#: Dtypes a tensor payload may carry; anything else is promoted to float64
#: at construction (ints, bools, python scalars), exactly as before the
#: precision seam existed.
_PAYLOAD_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


def debug_checks_enabled() -> bool:
    """Whether the opt-in debug invariant checks are on (``REPRO_NN_CHECKS=1``)."""
    return os.environ.get("REPRO_NN_CHECKS", "") == "1"


def payload_digest(arr: np.ndarray) -> int:
    """A cheap checksum of an array's bytes (debug-mode mutation witness)."""
    return zlib.crc32(np.ascontiguousarray(arr).tobytes())


class MutationGuard:
    """Debug-mode witness that cached values still match their inputs.

    Records ``(version, checksum)`` for a set of tensors (plus raw arrays)
    when a cache entry is stored; :meth:`verify` re-checksums on cache read
    and raises if any payload changed bytes *without* bumping its version —
    the exact footgun the caching invariants warn about (an in-place write
    to ``tensor.data`` that skipped :meth:`Tensor.bump_version`).  A payload
    whose version did change is ignored: the cache key already misses on it.
    """

    __slots__ = ("_tensors", "_arrays")

    def __init__(self, tensors, arrays=()):
        self._tensors = [(t, t.version, payload_digest(t.data)) for t in tensors]
        self._arrays = [(a, payload_digest(a)) for a in arrays]

    def verify(self, context: str) -> None:
        """Raise ``RuntimeError`` on a mutated-without-bump payload."""
        for tensor, version, digest in self._tensors:
            if tensor.version == version and payload_digest(tensor.data) != digest:
                raise RuntimeError(
                    f"{context}: Tensor{tensor.data.shape} payload mutated in "
                    "place without bump_version(); memoised values keyed on "
                    "its version are now stale"
                )
        for arr, digest in self._arrays:
            if payload_digest(arr) != digest:
                raise RuntimeError(
                    f"{context}: constant array {arr.shape} mutated in place; "
                    "cached values derived from it are now stale"
                )


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """An array with an optional gradient tape.

    Parameters
    ----------
    data:
        Array-like payload.  Float32/float64 arrays are stored as-is (the
        dtype selects the numeric backend — see :mod:`repro.nn.backend`);
        everything else (python scalars, ints, bools) is promoted to
        ``float64`` exactly as before the precision seam existed.
    requires_grad:
        Record operations so gradients flow back to this tensor.
    parents:
        Input tensors of the op producing this tensor (internal).
    backward_fn:
        Function mapping the output gradient to per-parent gradients
        (internal).
    dtype:
        Explicit storage dtype for the payload (used when creating leaves
        under a non-default backend, or wrapping scalars next to a float32
        operand without promoting it).
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "_version")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: "tuple | None" = None,
        backward_fn: "Callable | None" = None,
        dtype=None,
    ):
        arr = np.asarray(data, dtype=dtype)
        if dtype is None and arr.dtype not in _PAYLOAD_DTYPES:
            arr = arr.astype(np.float64)
        self.data = arr
        self.requires_grad = bool(requires_grad) or bool(parents)
        self.grad: "np.ndarray | None" = None
        self._parents = parents or ()
        self._backward_fn = backward_fn
        self._version = 0

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def version(self) -> int:
        """Monotonic counter of in-place payload mutations.

        Bumped by whatever rewrites ``data`` after construction (optimiser
        steps, ``load_state_dict``); consumers may memoise values derived
        from this tensor keyed on the counter.
        """
        return self._version

    def bump_version(self) -> None:
        """Record that ``data`` was mutated in place."""
        self._version += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grad = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad})"

    def item(self) -> float:
        """The scalar payload of a 0-d/1-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """A view of the data cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def numpy(self) -> np.ndarray:
        """The raw ndarray (no copy)."""
        return self.data

    # ------------------------------------------------------------------
    # Autodiff
    # ------------------------------------------------------------------
    def backward(self, grad: "np.ndarray | None" = None) -> None:
        """Back-propagate from this tensor through the recorded tape.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor; defaults to
            1 for scalar tensors.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(f"grad shape {grad.shape} != tensor shape {self.data.shape}")

        # Topologically order the tape (iterative DFS to survive deep nets).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited and p.requires_grad:
                    stack.append((p, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward_fn is None:
                # Leaf: accumulate into .grad.
                if node.requires_grad:
                    node.grad = node_grad if node.grad is None else node.grad + node_grad
                continue
            parent_grads = node._backward_fn(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                pgrad = _unbroadcast(
                    np.asarray(pgrad, dtype=parent.data.dtype), parent.data.shape
                )
                key = id(parent)
                if parent._backward_fn is None:
                    parent.grad = pgrad if parent.grad is None else parent.grad + pgrad
                else:
                    grads[key] = pgrad if key not in grads else grads[key] + pgrad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Operator sugar (delegates to repro.nn.functional, whose binary ops
    # wrap non-tensor operands in the dtype of the tensor operand so float32
    # computations are not silently promoted by float64 scalar constants)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from repro.nn import functional as F

        return F.add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        from repro.nn import functional as F

        return F.sub(self, other)

    def __rsub__(self, other):
        from repro.nn import functional as F

        return F.sub(other, self)

    def __mul__(self, other):
        from repro.nn import functional as F

        return F.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        from repro.nn import functional as F

        return F.div(self, other)

    def __rtruediv__(self, other):
        from repro.nn import functional as F

        return F.div(other, self)

    def __neg__(self):
        from repro.nn import functional as F

        return F.mul(self, Tensor(-1.0, dtype=self.data.dtype))

    def __matmul__(self, other):
        from repro.nn import functional as F

        return F.matmul(self, other)

    def sum(self, axis=None, keepdims: bool = False):
        from repro.nn import functional as F

        return F.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from repro.nn import functional as F

        return F.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from repro.nn import functional as F

        return F.reshape(self, shape)


def _wrap(value, dtype=None) -> Tensor:
    """Coerce scalars/arrays to constant tensors.

    ``dtype`` sets the payload dtype for non-tensor values; binary ops pass
    their tensor operand's dtype so scalar constants follow the operand's
    backend instead of promoting float32 maths to float64 (NEP 50 keeps
    python scalars weak, but 0-d float64 *arrays* are strong).
    """
    return value if isinstance(value, Tensor) else Tensor(value, dtype=dtype)


def _wrap_pair(a, b) -> "tuple[Tensor, Tensor]":
    """Wrap a binary op's operands, casting scalar wraps to the tensor
    operand's dtype (float64 when neither side is a tensor)."""
    if isinstance(a, Tensor):
        return a, (b if isinstance(b, Tensor) else Tensor(b, dtype=a.data.dtype))
    if isinstance(b, Tensor):
        return Tensor(a, dtype=b.data.dtype), b
    return Tensor(a), Tensor(b)


def parameters_vector(params: "Iterable[Tensor]") -> np.ndarray:
    """Flatten a parameter collection into one vector (for tests/debug)."""
    return np.concatenate([p.data.reshape(-1) for p in params]) if params else np.zeros(0)
