"""Weight initialisers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator


def glorot_uniform(shape: tuple, rng=None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for dense weights."""
    rng = as_generator(rng)
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: tuple) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape)


def scaled_normal(shape: tuple, scale: float = 0.01, rng=None) -> np.ndarray:
    """Small-variance normal initialisation (output heads)."""
    rng = as_generator(rng)
    return rng.normal(0.0, scale, size=shape)
