"""Differentiable functional ops for the NumPy autodiff engine.

Every function takes/returns :class:`repro.nn.tensor.Tensor` and registers a
backward closure on the tape.  The vocabulary is exactly what the
partitioning policy and PPO need: arithmetic, matmul, activations, softmax /
log-softmax, reductions, indexing, and concatenation.
"""

from __future__ import annotations

import numpy as np

from repro.nn.backend import backend_of, typed_aggregation
from repro.nn.tensor import Tensor, _wrap, _wrap_pair


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------
def add(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise ``a + b`` with broadcasting."""
    a, b = _wrap_pair(a, b)
    return Tensor(a.data + b.data, parents=(a, b), backward_fn=lambda g: (g, g))


def sub(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise ``a - b`` with broadcasting."""
    a, b = _wrap_pair(a, b)
    return Tensor(a.data - b.data, parents=(a, b), backward_fn=lambda g: (g, -g))


def mul(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise ``a * b`` with broadcasting."""
    a, b = _wrap_pair(a, b)
    return Tensor(
        a.data * b.data,
        parents=(a, b),
        backward_fn=lambda g: (g * b.data, g * a.data),
    )


def div(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise ``a / b`` with broadcasting."""
    a, b = _wrap_pair(a, b)
    return Tensor(
        a.data / b.data,
        parents=(a, b),
        backward_fn=lambda g: (g / b.data, -g * a.data / (b.data**2)),
    )


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matrix product ``a @ b`` (2-D operands)."""
    a, b = _wrap_pair(a, b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("matmul expects 2-D tensors")
    return Tensor(
        a.data @ b.data,
        parents=(a, b),
        backward_fn=lambda g: (g @ b.data.T, a.data.T @ g),
    )


def _aggregate_transpose(agg_matrix):
    """The transpose used by aggregation backwards, preferring the CSR copy
    precomputed by :func:`repro.nn.layers.mean_aggregation_matrix`."""
    cached = getattr(agg_matrix, "_cached_transpose", None)
    if cached is not None:
        return cached
    return agg_matrix.T if hasattr(agg_matrix, "T") else agg_matrix.transpose()


def linear(x: Tensor, weight: Tensor, bias: Tensor) -> Tensor:
    """Fused affine map ``x @ weight + bias`` (one tape node).

    Identical maths to ``add(matmul(x, weight), bias)`` with a third of the
    tape nodes; the policy and value heads sit on the search hot path where
    per-op overhead dominates at these matrix sizes.
    """
    x, weight, bias = _wrap(x), _wrap(weight), _wrap(bias)
    if x.ndim != 2 or weight.ndim != 2:
        raise ValueError("linear expects 2-D input and weight")
    out = x.data @ weight.data + bias.data

    def backward(g):
        return (g @ weight.data.T, x.data.T @ g, g.sum(axis=0))

    return Tensor(out, parents=(x, weight, bias), backward_fn=backward)


def sage_mean_combine(
    h: Tensor, agg_matrix, w_self: Tensor, w_neigh: Tensor, bias: Tensor
) -> Tensor:
    """Fused GraphSAGE layer: ``relu(h @ w_self + (A @ h) @ w_neigh + b)``.

    ``agg_matrix`` is the constant row-normalised adjacency ``A``; only the
    tensors receive gradients.  One tape node replaces the six of the
    unfused composition.  On the float64 backend the forward values are
    bitwise-identical to the unfused composition (same expression, same
    evaluation order); on a backend with ``fused_gemm`` the two per-hop
    matmuls are batched into one wide GEMM, ``[h | A@h] @ [w_self; w_neigh]``,
    which changes summation order and is therefore pinned by tolerance
    tests instead of goldens.
    """
    h, w_self, w_neigh, bias = _wrap(h), _wrap(w_self), _wrap(w_neigh), _wrap(bias)
    agg_matrix = typed_aggregation(agg_matrix, h.data.dtype)
    if backend_of(h.data.dtype).fused_gemm:
        return _sage_mean_combine_fused(h, agg_matrix, w_self, w_neigh, bias)
    neigh = agg_matrix @ h.data
    pre = h.data @ w_self.data + neigh @ w_neigh.data + bias.data
    mask = pre > 0
    out = pre * mask

    need_h_grad = h.requires_grad

    def backward(g):
        gp = g * mask
        gh = None
        if need_h_grad:
            gh = gp @ w_self.data.T + _aggregate_transpose(agg_matrix) @ (gp @ w_neigh.data.T)
        return (gh, h.data.T @ gp, neigh.T @ gp, gp.sum(axis=0))

    return Tensor(out, parents=(h, w_self, w_neigh, bias), backward_fn=backward)


def _sage_mean_combine_fused(
    h: Tensor, agg_matrix, w_self: Tensor, w_neigh: Tensor, bias: Tensor
) -> Tensor:
    """Wide-GEMM GraphSAGE layer for ``fused_gemm`` backends.

    Forward runs one ``(N, 2F) @ (2F, O)`` product instead of two
    ``(N, F) @ (F, O)`` products; backward runs two GEMMs (weight grad via
    the concatenated activations, input grad via the concatenated weights)
    instead of four.  Mathematically identical to the serial form; the
    summation order differs, so this path never runs under float64.
    """
    neigh = agg_matrix @ h.data
    hn = np.concatenate([h.data, neigh], axis=1)
    w_cat = np.concatenate([w_self.data, w_neigh.data], axis=0)
    pre = hn @ w_cat + bias.data
    mask = pre > 0
    out = pre * mask

    need_h_grad = h.requires_grad
    in_features = h.data.shape[1]

    def backward(g):
        gp = g * mask
        gw = hn.T @ gp
        gh = None
        if need_h_grad:
            gcat = gp @ w_cat.T
            gh = gcat[:, :in_features] + _aggregate_transpose(agg_matrix) @ (
                np.ascontiguousarray(gcat[:, in_features:])
            )
        # gw's row slices are views of one buffer; downstream only reads or
        # rebinds parent .grad per-parent over disjoint slices, so no copy.
        return (gh, gw[:in_features], gw[in_features:], gp.sum(axis=0))

    return Tensor(out, parents=(h, w_self, w_neigh, bias), backward_fn=backward)


def sage_mean_combine_int8(
    h: np.ndarray, agg_matrix, w_q: np.ndarray, w_scale: float,
    bias: np.ndarray,
) -> np.ndarray:
    """Quantized GraphSAGE hop: int8 GEMM with float32 accumulation.

    Inference-only (raw ndarrays, no tape).  ``w_q``/``w_scale`` is the
    per-tensor symmetric quantization of ``[w_self; w_neigh]`` prepared by
    :meth:`GraphSAGELayer.int8_weights`; the concatenated activation
    ``[h | A@h]`` is quantized dynamically per call against its own max.
    The product runs as a float32 sgemm over the int8 values, which is
    *exact* integer arithmetic at these sizes: each product is <= 127^2
    and row sums stay far below 2^24, float32's exact-integer ceiling.
    One scale multiply dequantizes the accumulator; bias add and ReLU run
    in float32.
    """
    from repro.nn.backend import typed_aggregation

    h = np.ascontiguousarray(h, dtype=np.float32)
    agg_matrix = typed_aggregation(agg_matrix, np.float32)
    hn = np.concatenate([h, agg_matrix @ h], axis=1)
    a_bound = float(np.max(np.abs(hn))) if hn.size else 0.0
    a_scale = a_bound / 127.0 if a_bound > 0.0 else 1.0
    a_q = np.clip(np.rint(hn / np.float32(a_scale)), -127, 127).astype(np.int8)
    acc = a_q.astype(np.float32) @ w_q.astype(np.float32)
    pre = acc * np.float32(a_scale * w_scale) + bias.astype(np.float32)
    return np.maximum(pre, np.float32(0.0))


def tiled_linear(h: Tensor, extra: np.ndarray, weight: Tensor, bias: Tensor, n_tile: int) -> Tensor:
    """Fused affine over ``n_tile`` stacked copies of ``h`` plus per-row extras.

    Computes exactly ``linear(concat([concat([h] * n_tile, axis=0), extra],
    axis=1), weight, bias)`` — the shape of the policy/value head's first
    layer over a conditioning batch, where the (N, F) encoder output is
    shared by all ``n_tile`` rollouts and only the (n_tile*N, E) state
    block differs — but evaluates ``h @ weight[:F]`` **once** and tiles the
    result, cutting the dominant first-layer GEMM's flops by ``n_tile``.
    ``extra`` is a constant (no gradient).  Fusion changes summation order
    versus the serial composition, so callers gate it on ``fused_gemm``
    backends; equivalence is pinned by gradcheck/tolerance tests.
    """
    h, weight, bias = _wrap(h), _wrap(weight), _wrap(bias)
    extra = np.asarray(extra, dtype=h.data.dtype)
    if h.ndim != 2 or weight.ndim != 2 or extra.ndim != 2:
        raise ValueError("tiled_linear expects 2-D h, weight, and extra")
    n, in_h = h.data.shape
    if extra.shape[0] != n_tile * n:
        raise ValueError(
            f"extra has {extra.shape[0]} rows; expected n_tile*N = {n_tile * n}"
        )
    w_h = weight.data[:in_h]
    w_e = weight.data[in_h:]
    out = np.tile(h.data @ w_h, (n_tile, 1))
    out += extra @ w_e
    out += bias.data

    def backward(g):
        g_stack = g.reshape(n_tile, n, -1).sum(axis=0)
        gh = g_stack @ w_h.T
        gw = np.concatenate([h.data.T @ g_stack, extra.T @ g], axis=0)
        return (gh, gw, g.sum(axis=0))

    return Tensor(out, parents=(h, weight, bias), backward_fn=backward)


# ----------------------------------------------------------------------
# Activations
# ----------------------------------------------------------------------
def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    x = _wrap(x)
    mask = x.data > 0
    return Tensor(x.data * mask, parents=(x,), backward_fn=lambda g: (g * mask,))


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    x = _wrap(x)
    out = np.tanh(x.data)
    return Tensor(out, parents=(x,), backward_fn=lambda g: (g * (1.0 - out**2),))


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    x = _wrap(x)
    out = 1.0 / (1.0 + np.exp(-np.clip(x.data, -60, 60)))
    return Tensor(out, parents=(x,), backward_fn=lambda g: (g * out * (1.0 - out),))


def exp(x: Tensor) -> Tensor:
    """Element-wise exponential."""
    x = _wrap(x)
    out = np.exp(np.clip(x.data, -700, 700))
    return Tensor(out, parents=(x,), backward_fn=lambda g: (g * out,))


def log(x: Tensor) -> Tensor:
    """Element-wise natural log."""
    x = _wrap(x)
    return Tensor(np.log(x.data), parents=(x,), backward_fn=lambda g: (g / x.data,))


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------
def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = _wrap(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - logsumexp
    softmax_vals = np.exp(out)

    def backward(g):
        return (g - softmax_vals * g.sum(axis=axis, keepdims=True),)

    return Tensor(out, parents=(x,), backward_fn=backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = _wrap(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(g):
        dot = (g * out).sum(axis=axis, keepdims=True)
        return (out * (g - dot),)

    return Tensor(out, parents=(x,), backward_fn=backward)


# ----------------------------------------------------------------------
# Reductions / shaping
# ----------------------------------------------------------------------
def sum(x: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Sum along ``axis`` (all axes by default)."""
    x = _wrap(x)
    out = x.data.sum(axis=axis, keepdims=keepdims)

    def backward(g):
        if axis is None:
            return (np.broadcast_to(g, x.data.shape).copy(),)
        gg = g if keepdims else np.expand_dims(g, axis)
        return (np.broadcast_to(gg, x.data.shape).copy(),)

    return Tensor(out, parents=(x,), backward_fn=backward)


def mean(x: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Mean along ``axis`` (all axes by default)."""
    x = _wrap(x)
    out = x.data.mean(axis=axis, keepdims=keepdims)
    if axis is None:
        count = x.data.size
    else:
        count = x.data.shape[axis]

    def backward(g):
        if axis is None:
            return (np.broadcast_to(g / count, x.data.shape).copy(),)
        gg = g if keepdims else np.expand_dims(g, axis)
        return (np.broadcast_to(gg / count, x.data.shape).copy(),)

    return Tensor(out, parents=(x,), backward_fn=backward)


def reshape(x: Tensor, shape) -> Tensor:
    """Reshape preserving element order."""
    x = _wrap(x)
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    out = x.data.reshape(shape)
    return Tensor(
        out, parents=(x,), backward_fn=lambda g: (g.reshape(x.data.shape),)
    )


def concat(tensors, axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [_wrap(t) for t in tensors]
    if not tensors:
        raise ValueError("concat requires at least one tensor")
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(g):
        return tuple(np.split(g, splits, axis=axis))

    return Tensor(out, parents=tuple(tensors), backward_fn=backward)


def gather_rows(x: Tensor, index: np.ndarray) -> Tensor:
    """Select rows ``x[index]`` of a 2-D tensor."""
    x = _wrap(x)
    index = np.asarray(index, dtype=np.int64)

    def backward(g):
        grad = np.zeros_like(x.data)
        np.add.at(grad, index, g)
        return (grad,)

    return Tensor(x.data[index], parents=(x,), backward_fn=backward)


def take_along_last(x: Tensor, index: np.ndarray) -> Tensor:
    """Pick one entry per row: ``x[i, index[i]]`` for a 2-D tensor.

    This is the log-probability lookup used by the PPO objective.
    """
    x = _wrap(x)
    index = np.asarray(index, dtype=np.int64)
    if x.ndim != 2 or index.shape != (x.shape[0],):
        raise ValueError("take_along_last expects (N, C) tensor and (N,) index")
    rows = np.arange(x.shape[0])

    def backward(g):
        grad = np.zeros_like(x.data)
        grad[rows, index] = g
        return (grad,)

    return Tensor(x.data[rows, index], parents=(x,), backward_fn=backward)


# ----------------------------------------------------------------------
# Aggregation for GraphSAGE
# ----------------------------------------------------------------------
def sparse_mean_aggregate(agg_matrix, x: Tensor) -> Tensor:
    """Neighbourhood mean aggregation ``A @ x`` with a fixed matrix.

    ``agg_matrix`` is a constant (scipy.sparse or ndarray) row-normalised
    adjacency; only ``x`` receives gradients.
    """
    x = _wrap(x)
    agg_matrix = typed_aggregation(agg_matrix, x.data.dtype)
    out = agg_matrix @ x.data

    def backward(g):
        return (_aggregate_transpose(agg_matrix) @ g,)

    return Tensor(out, parents=(x,), backward_fn=backward)


def ppo_objective(
    log_probs: Tensor,
    values: Tensor,
    actions: np.ndarray,
    old_log_probs: np.ndarray,
    advantages: np.ndarray,
    returns: np.ndarray,
    clip_ratio: float,
    value_coef: float,
    entropy_coef: float,
) -> "tuple[Tensor, dict]":
    """Fused PPO surrogate: clipped policy loss + value loss - entropy bonus.

    Computes, in one tape node, exactly what the unfused composition
    ``-mean(min(ratio*adv, clip(ratio)*adv)) + value_coef*mean((v-R)^2)
    - entropy_coef*(-mean(sum(p*logp)))`` builds from ~14 nodes; at PPO
    minibatch sizes the per-op overhead dominates the maths.  Returns the
    scalar loss tensor and a dict of detached diagnostics.
    """
    log_probs, values = _wrap(log_probs), _wrap(values)
    lp = log_probs.data
    rows = np.arange(lp.shape[0])
    actions = np.asarray(actions, dtype=np.int64)
    # Constants follow the operand dtype (no-ops on float64): rollout
    # buffers hand float64 advantage/return rows, and mixing them into
    # float32 surrogate maths would promote every elementwise op below.
    old_log_probs = np.asarray(old_log_probs, dtype=lp.dtype)
    advantages = np.asarray(advantages, dtype=lp.dtype)
    returns = np.asarray(returns, dtype=values.data.dtype)

    new_lp = lp[rows, actions]
    ratio = np.exp(new_lp - old_log_probs)
    lo, hi = 1.0 - clip_ratio, 1.0 + clip_ratio
    clipped_ratio = np.clip(ratio, lo, hi)
    unclipped = ratio * advantages
    clipped = clipped_ratio * advantages
    take_unclipped = unclipped <= clipped
    surrogate = np.where(take_unclipped, unclipped, clipped)
    policy_loss = -surrogate.mean()

    value_err = values.data - returns
    value_loss = float((value_err**2).mean())

    probs = np.exp(lp)
    ent_terms = (probs * lp).sum(axis=1)
    entropy = -ent_terms.mean()

    loss = policy_loss + value_coef * value_loss - entropy_coef * entropy
    n_rows = lp.shape[0]

    def backward(g):
        g = float(g)
        # Policy term: d(-mean(min(u, c)))/d new_lp.
        d_surr = -g / n_rows
        d_ratio = np.where(
            take_unclipped, advantages, advantages * ((ratio >= lo) & (ratio <= hi))
        )
        d_new_lp = d_surr * d_ratio * ratio
        grad_lp = np.zeros_like(lp)
        grad_lp[rows, actions] = d_new_lp
        # Entropy term: d(-entropy_coef * -mean(sum(p * lp)))/d lp.
        grad_lp += (g * entropy_coef / n_rows) * (probs * lp + probs)
        # Value term.
        grad_values = g * value_coef * 2.0 * value_err / value_err.size
        return (grad_lp, grad_values)

    out = Tensor(loss, parents=(log_probs, values), backward_fn=backward)
    stats = {
        "policy_loss": float(policy_loss),
        "value_loss": value_loss,
        "entropy": float(entropy),
    }
    return out, stats


# ----------------------------------------------------------------------
# Composite helpers
# ----------------------------------------------------------------------
def clip(x: Tensor, low: float, high: float) -> Tensor:
    """Clamp values to ``[low, high]`` (gradient is 1 inside the range)."""
    x = _wrap(x)
    out = np.clip(x.data, low, high)
    mask = (x.data >= low) & (x.data <= high)
    return Tensor(out, parents=(x,), backward_fn=lambda g: (g * mask,))


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise minimum; gradient flows to the smaller operand."""
    a, b = _wrap_pair(a, b)
    take_a = a.data <= b.data
    out = np.where(take_a, a.data, b.data)
    return Tensor(
        out,
        parents=(a, b),
        backward_fn=lambda g: (g * take_a, g * ~take_a),
    )


def square(x: Tensor) -> Tensor:
    """Element-wise square."""
    x = _wrap(x)
    return Tensor(x.data**2, parents=(x,), backward_fn=lambda g: (2.0 * g * x.data,))
