"""Numeric precision backends for the nn stack.

A :class:`Backend` bundles a storage dtype with the kernel-selection flags
the rest of the stack keys on: whether the fused large-GEMM training path
is eligible, and the tolerance envelope the equivalence tests pin the fast
path against.  Two backends exist:

``float64``
    The frozen default.  Serial evaluation order, bit-for-bit reproducible
    against the goldens; nothing in this module may change its arithmetic.
``float32``
    The opt-in fast path.  Same operations, but ops are allowed to batch
    per-minibatch matmuls into single large GEMMs (changing summation
    order), so results are pinned by tolerance bounds instead of goldens.
``int8``
    The inference-only serving backend.  Encoder weights are quantized
    per-tensor (symmetric, scale = max|w|/127) at checkpoint-install time;
    the SAGE hop runs as an int8xint8 GEMM with float32 accumulation and
    the policy/value heads stay float32 ("dequantized heads").  Training
    under int8 is forbidden — it exists only behind ``repro serve`` /
    ``repro route`` ``--precision int8``.  Its storage dtype is float32
    (activations and heads), so :func:`backend_of` never resolves to it:
    quantization is selected by name, never inferred from arrays.

There is deliberately **no mutable global backend**: precision is a
property of the arrays flowing through the tape.  Leaf tensors (weights,
features) are created in the backend's dtype and NumPy propagates it from
there; ops that want the fused kernels look the backend up from their
operand dtype via :func:`backend_of`.  This keeps mixed-precision
partitioners in one process (serving pools, equivalence tests) safe by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Precision names accepted by configs and the CLI ``--precision`` flag.
PRECISIONS = ("float64", "float32")

#: Precisions accepted on the *serving* path (``repro serve`` / ``route``).
#: Superset of :data:`PRECISIONS`: int8 is inference-only, never a
#: training precision and never the default.
SERVE_PRECISIONS = ("float64", "float32", "int8")


@dataclass(frozen=True)
class Backend:
    """A numeric precision: storage dtype + kernel-selection flags.

    Attributes
    ----------
    name:
        Precision name (``"float64"`` / ``"float32"``).
    dtype:
        NumPy storage dtype for leaf tensors created under this backend.
    fused_gemm:
        Whether ops may take the fused large-GEMM path.  Fusion changes
        floating-point summation order, so it is forbidden on the
        bit-for-bit ``float64`` default.
    rtol, atol:
        The tolerance envelope the equivalence tests hold this backend to
        (relative to the float64 reference); zero for float64 itself.
    quantized:
        Whether encoder weights are int8-quantized at install time and the
        SAGE hop runs the quantized kernel.  Implies inference-only: the
        PPO trainer refuses to step a quantized policy.
    """

    name: str
    dtype: np.dtype
    fused_gemm: bool
    rtol: float
    atol: float
    quantized: bool = False

    # -- array helpers --------------------------------------------------
    def asarray(self, data) -> np.ndarray:
        """``data`` as an array in this backend's dtype (copies if needed)."""
        return np.asarray(data, dtype=self.dtype)

    def cast(self, arr) -> np.ndarray:
        """``arr`` in this backend's dtype; the same object when it already is."""
        arr = np.asarray(arr)
        return arr if arr.dtype == self.dtype else arr.astype(self.dtype)

    def zeros(self, shape) -> np.ndarray:
        """A zero array in this backend's dtype."""
        return np.zeros(shape, dtype=self.dtype)

    def full(self, shape, fill_value) -> np.ndarray:
        """A constant array in this backend's dtype."""
        return np.full(shape, fill_value, dtype=self.dtype)


FLOAT64 = Backend(
    name="float64", dtype=np.dtype(np.float64), fused_gemm=False, rtol=0.0, atol=0.0
)
#: Tolerances sized for ~1e3-step training windows: single-precision GEMM
#: rounding compounds through Adam, so the envelope is loose in relative
#: terms but still far below any decision boundary the policy acts on.
FLOAT32 = Backend(
    name="float32", dtype=np.dtype(np.float32), fused_gemm=True, rtol=5e-2, atol=1e-4
)
#: Inference-only serving backend.  Activations and heads are float32, so
#: the storage dtype matches FLOAT32; only the name selects quantization.
#: The tolerance budget bounds encoder-output drift vs the float32
#: reference (per-tensor symmetric weight quantization at hidden widths
#: <= 64 lands well inside it); the *behavioural* pin is argmax-partition
#: agreement across the zoo, tested in tests/nn/test_int8_backend.py.
INT8 = Backend(
    name="int8",
    dtype=np.dtype(np.float32),
    fused_gemm=True,
    rtol=5e-2,
    atol=5e-2,
    quantized=True,
)

_BY_NAME = {b.name: b for b in (FLOAT64, FLOAT32, INT8)}
# int8 is deliberately absent: its storage dtype is float32, and arrays
# must never infer quantization — backend_of(float32 array) is FLOAT32.
_BY_DTYPE = {b.dtype: b for b in (FLOAT64, FLOAT32)}


def resolve_backend(spec=None) -> Backend:
    """The :class:`Backend` for ``spec`` (name, dtype, Backend, or None).

    ``None`` resolves to the frozen float64 default.
    """
    if spec is None:
        return FLOAT64
    if isinstance(spec, Backend):
        return spec
    if isinstance(spec, str):
        backend = _BY_NAME.get(spec)
        if backend is None:
            raise ValueError(
                f"unknown precision {spec!r}; expected one of {SERVE_PRECISIONS}"
            )
        return backend
    return backend_of(spec)


def backend_of(dtype) -> Backend:
    """The :class:`Backend` whose storage dtype is ``dtype``."""
    backend = _BY_DTYPE.get(np.dtype(dtype))
    if backend is None:
        raise ValueError(f"no backend for dtype {dtype!r}; expected one of {PRECISIONS}")
    return backend


def quantize_symmetric(arr):
    """Per-tensor symmetric int8 quantization of ``arr``.

    Returns ``(q, scale)`` with ``q`` int8 in [-127, 127] and
    ``scale = max|arr| / 127`` (1.0 for an all-zero tensor, so dequant is
    still exact).  Symmetric quantization keeps zero exactly representable
    — ReLU sparsity and zero-padded features survive the round trip.
    """
    arr = np.asarray(arr, dtype=np.float64)
    max_abs = float(np.max(np.abs(arr))) if arr.size else 0.0
    scale = max_abs / 127.0 if max_abs > 0.0 else 1.0
    q = np.clip(np.rint(arr / scale), -127, 127).astype(np.int8)
    return q, scale


def dequantize(q, scale) -> np.ndarray:
    """The float32 tensor ``q * scale`` (inverse of :func:`quantize_symmetric`)."""
    return q.astype(np.float32) * np.float32(scale)


def typed_aggregation(agg_matrix, dtype):
    """A dtype-matched variant of a constant aggregation matrix, cached.

    The row-normalised adjacency built by ``mean_aggregation_matrix`` is
    float64; under scipy a float64 CSR times a float32 dense silently
    promotes the product back to float64, defeating the fast path.  This
    returns ``agg_matrix`` itself when the dtype already matches (so the
    float64 path sees the identical object) and otherwise a cast copy
    memoised on the original matrix, with its ``_cached_transpose``
    companion cast alongside it.
    """
    dtype = np.dtype(dtype)
    if agg_matrix.dtype == dtype:
        return agg_matrix
    cache = getattr(agg_matrix, "_typed_variants", None)
    if cache is None:
        cache = {}
        try:
            agg_matrix._typed_variants = cache
        except AttributeError:  # plain ndarrays reject new attributes
            pass
    typed = cache.get(dtype)
    if typed is None:
        typed = agg_matrix.astype(dtype)
        transpose = getattr(agg_matrix, "_cached_transpose", None)
        if transpose is not None:
            try:
                typed._cached_transpose = transpose.astype(dtype)
            except AttributeError:
                pass
        cache[dtype] = typed
    return typed
