"""Neural-network layers for the partitioning policy.

The paper's feature network is GraphSAGE (Hamilton et al., 2017): each layer
combines a node's own representation with the mean of its neighbours'.  The
policy/value heads are plain feed-forward stacks.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.nn import functional as F
from repro.nn.init import glorot_uniform, zeros
from repro.nn.tensor import Tensor
from repro.utils.rng import as_generator


class Module:
    """Base class: parameter collection + state-dict plumbing."""

    def parameters(self) -> list[Tensor]:
        """All trainable tensors, in deterministic order."""
        params: list[Tensor] = []
        for name in sorted(vars(self)):
            value = getattr(self, name)
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
        return params

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def weights_version(self) -> int:
        """Monotonic counter over all parameter mutations.

        The sum of every parameter's :attr:`Tensor.version`; any optimiser
        step or ``load_state_dict`` changes it, so derived quantities (e.g.
        a graph encoding) may be memoised keyed on this value.
        """
        return sum(p._version for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat name -> array mapping of all parameters."""
        out: dict[str, np.ndarray] = {}
        self._collect_state("", out)
        return out

    def _collect_state(self, prefix: str, out: dict) -> None:
        for name in sorted(vars(self)):
            value = getattr(self, name)
            key = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                out[key] = value.data.copy()
            elif isinstance(value, Module):
                value._collect_state(f"{key}.", out)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        item._collect_state(f"{key}.{i}.", out)

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters saved by :meth:`state_dict` (strict shapes)."""
        own = {}
        self._collect_tensors("", own)
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ValueError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for key, tensor in own.items():
            # Restore into the tensor's existing dtype (the active backend):
            # loading a float64 checkpoint must not silently promote a
            # float32 run back to float64, nor vice versa.
            arr = np.asarray(state[key], dtype=tensor.data.dtype)
            if arr.shape != tensor.data.shape:
                raise ValueError(
                    f"shape mismatch for {key}: {arr.shape} vs {tensor.data.shape}"
                )
            tensor.data = arr.copy()
            tensor.bump_version()

    def _collect_tensors(self, prefix: str, out: dict) -> None:
        for name in sorted(vars(self)):
            value = getattr(self, name)
            key = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                out[key] = value
            elif isinstance(value, Module):
                value._collect_tensors(f"{key}.", out)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        item._collect_tensors(f"{key}.{i}.", out)


class Linear(Module):
    """Dense layer ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, rng=None, dtype=None):
        rng = as_generator(rng)
        # Init draws stay float64 from the shared RNG stream and are cast
        # afterwards, so every precision starts from the same weights.
        self.weight = Tensor(
            glorot_uniform((in_features, out_features), rng), requires_grad=True, dtype=dtype
        )
        self.bias = Tensor(zeros((out_features,)), requires_grad=True, dtype=dtype)

    def __call__(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Sequential(Module):
    """Chain of layers with optional activation between them."""

    def __init__(self, layers: list, activation=F.relu, final_activation=None):
        self.layers = list(layers)
        self._activation = activation
        self._final_activation = final_activation

    def __call__(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i + 1 < len(self.layers) and self._activation is not None:
                x = self._activation(x)
        if self._final_activation is not None:
            x = self._final_activation(x)
        return x


class GraphSAGELayer(Module):
    """One GraphSAGE layer with mean aggregation.

    ``h' = relu(h @ W_self + mean_neigh(h) @ W_neigh + b)``

    Neighbourhood means are computed with a fixed row-normalised adjacency
    matrix built once per graph by :func:`mean_aggregation_matrix`.
    """

    def __init__(self, in_features: int, out_features: int, rng=None, dtype=None):
        rng = as_generator(rng)
        self.w_self = Tensor(
            glorot_uniform((in_features, out_features), rng), requires_grad=True, dtype=dtype
        )
        self.w_neigh = Tensor(
            glorot_uniform((in_features, out_features), rng), requires_grad=True, dtype=dtype
        )
        self.bias = Tensor(zeros((out_features,)), requires_grad=True, dtype=dtype)

    def __call__(self, h: Tensor, agg_matrix) -> Tensor:
        return F.sage_mean_combine(h, agg_matrix, self.w_self, self.w_neigh, self.bias)

    def int8_weights(self):
        """Quantized ``[w_self; w_neigh]`` for the int8 serving kernel.

        Returns ``(w_q, scale, bias32, max_abs_err)`` where ``w_q`` is the
        per-tensor symmetric int8 quantization of the concatenated hop
        weights (the same ``[w_self; w_neigh]`` layout the fused float
        kernel uses), ``bias32`` the float32 bias, and ``max_abs_err`` the
        worst-case dequantization error over the tensor.  Memoised on the
        weight versions, so a checkpoint install (which bumps versions)
        re-quantizes and a warm hit pays nothing.
        """
        from repro.nn.backend import quantize_symmetric

        key = (self.w_self._version, self.w_neigh._version)
        cached = getattr(self, "_int8_cache", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        w_cat = np.concatenate([self.w_self.data, self.w_neigh.data], axis=0)
        w_q, scale = quantize_symmetric(w_cat)
        err = float(
            np.max(np.abs(w_q.astype(np.float64) * scale - np.asarray(w_cat, dtype=np.float64)))
        ) if w_cat.size else 0.0
        packed = (w_q, scale, self.bias.data.astype(np.float32), err)
        self._int8_cache = (key, packed)
        return packed


def mean_aggregation_matrix(n_nodes: int, src: np.ndarray, dst: np.ndarray):
    """Row-normalised undirected adjacency for GraphSAGE mean aggregation.

    Both edge directions are used (a node should see producers *and*
    consumers); isolated nodes aggregate zeros.
    """
    rows = np.concatenate([dst, src])
    cols = np.concatenate([src, dst])
    data = np.ones(rows.size)
    adj = sp.coo_matrix((data, (rows, cols)), shape=(n_nodes, n_nodes)).tocsr()
    # Collapse duplicate edges, then row-normalise.
    adj.data = np.ones_like(adj.data)
    degree = np.asarray(adj.sum(axis=1)).reshape(-1)
    inv = np.divide(1.0, degree, out=np.zeros_like(degree), where=degree > 0)
    agg = (sp.diags(inv) @ adj).tocsr()
    # The backward pass multiplies by the transpose on every step; a
    # precomputed CSR transpose avoids rebuilding a CSC view per call.
    agg._cached_transpose = agg.T.tocsr()
    return agg
