"""Checkpoint serialisation for modules (.npz format)."""

from __future__ import annotations

import os

import numpy as np

from repro.nn.layers import Module


def save_state(module: Module, path: str) -> None:
    """Write a module's parameters to ``path`` as a compressed ``.npz``."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **state)


def load_state(module: Module, path: str) -> None:
    """Load parameters written by :func:`save_state` into ``module``."""
    with np.load(path) as data:
        module.load_state_dict({k: data[k] for k in data.files})
