"""Checkpoint serialisation for modules (.npz format)."""

from __future__ import annotations

import os

import numpy as np

from repro.nn.layers import Module


def save_state_dict(state: "dict[str, np.ndarray]", path: str) -> None:
    """Write a bare ``state_dict`` to ``path`` as a compressed ``.npz``.

    The checkpoint registry (:mod:`repro.serve.registry`) stores weights
    detached from any live module, so the dict form is the primitive and
    :func:`save_state` is the module-level convenience over it.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **state)


def load_state_dict_file(path: str) -> "dict[str, np.ndarray]":
    """Read a ``state_dict`` written by :func:`save_state_dict`."""
    with np.load(path) as data:
        return {k: data[k] for k in data.files}


def save_state(module: Module, path: str) -> None:
    """Write a module's parameters to ``path`` as a compressed ``.npz``."""
    save_state_dict(module.state_dict(), path)


def load_state(module: Module, path: str) -> None:
    """Load parameters written by :func:`save_state` into ``module``.

    Routes through :meth:`Module.load_state_dict`, which bumps every loaded
    tensor's version — required so memos keyed on
    :meth:`Module.weights_version` (e.g. the policy's encoder cache) are
    invalidated by a checkpoint load exactly like by an optimiser step.
    """
    module.load_state_dict(load_state_dict_file(path))
