"""Optimisers and gradient utilities."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def clip_grad_norm(params: list[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Tensor], lr: float = 1e-2, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not (0.0 <= momentum < 1.0):
            raise ValueError("momentum must be in [0, 1)")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad
            p.bump_version()

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 3e-4,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = b1, b2
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """Apply one Adam update from the accumulated gradients."""
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            p.bump_version()

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def state_dict(self) -> dict:
        """Optimiser state for checkpointing."""
        return {
            "t": self._t,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore optimiser state from :meth:`state_dict`."""
        self._t = int(state["t"])
        if len(state["m"]) != len(self._m) or len(state["v"]) != len(self._v):
            raise ValueError("optimizer state does not match parameter count")
        self._m = [np.asarray(m, dtype=np.float64).copy() for m in state["m"]]
        self._v = [np.asarray(v, dtype=np.float64).copy() for v in state["v"]]
