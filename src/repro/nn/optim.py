"""Optimisers and gradient utilities."""

from __future__ import annotations

import numpy as np

from repro.nn.backend import backend_of
from repro.nn.tensor import Tensor


def clip_grad_norm(params: list[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for p in params:
        if p.grad is not None:
            if p.grad.dtype == np.float32:
                # BLAS dot, no squared temporary; float32 only — the dot's
                # accumulation order differs from the reduction below, and
                # the float64 path is frozen bit-for-bit.
                flat = np.ascontiguousarray(p.grad).ravel()
                total += float(np.dot(flat, flat))
            else:
                total += float((p.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Tensor], lr: float = 1e-2, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not (0.0 <= momentum < 1.0):
            raise ValueError("momentum must be in [0, 1)")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad
            p.bump_version()

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam optimiser (Kingma & Ba, 2015).

    Two update kernels share the same mathematics:

    * **Serial per-parameter loop** (float64, and whenever any parameter is
      missing a gradient): preallocated per-parameter scratch with ``out=``
      expressions in the original operation order — bit-for-bit identical
      to the allocating textbook form.
    * **Fused flat step** (``fused_gemm`` backends, i.e. float32): moments
      and scratch live in flat buffers with per-parameter views, so one
      vectorised sweep updates every parameter instead of ~30 small-array
      op dispatches per step.  Same element-wise maths; only the loop
      structure changes, so float32 results match the serial loop exactly.
    """

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 3e-4,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = b1, b2
        self.eps = eps
        dtypes = {p.data.dtype for p in self.params}
        self._fused = len(dtypes) == 1 and backend_of(next(iter(dtypes))).fused_gemm
        if self._fused:
            dtype = next(iter(dtypes))
            sizes = [p.data.size for p in self.params]
            total = int(np.sum(sizes)) if sizes else 0
            offsets = np.cumsum([0] + sizes)
            self._slices = [
                slice(int(offsets[i]), int(offsets[i + 1])) for i in range(len(sizes))
            ]
            self._flat_m = np.zeros(total, dtype=dtype)
            self._flat_v = np.zeros(total, dtype=dtype)
            self._flat_g = np.empty(total, dtype=dtype)
            self._flat_s = np.empty(total, dtype=dtype)
            # Per-parameter views into the flat moments: state_dict and the
            # serial fallback loop see the same storage as the fused step.
            self._m = [
                self._flat_m[sl].reshape(p.data.shape)
                for p, sl in zip(self.params, self._slices)
            ]
            self._v = [
                self._flat_v[sl].reshape(p.data.shape)
                for p, sl in zip(self.params, self._slices)
            ]
        else:
            self._m = [np.zeros_like(p.data) for p in self.params]
            self._v = [np.zeros_like(p.data) for p in self.params]
        # Preallocated per-parameter scratch for the serial loop: the update
        # runs thousands of times per search on small tensors, where
        # temporary allocation dominates the arithmetic.  Every ``out=``
        # expression below keeps the original operation order, so results
        # are bit-for-bit identical to the allocating form.
        self._s1 = [np.empty_like(p.data) for p in self.params]
        self._s2 = [np.empty_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """Apply one Adam update from the accumulated gradients."""
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        if self._fused and all(p.grad is not None for p in self.params):
            # A missing gradient falls through to the serial loop, whose
            # skip semantics (param, m, v all untouched) the flat sweep
            # cannot express; the loop writes through the flat views, so
            # the two kernels stay interchangeable step to step.
            self._step_fused(bias1, bias2)
            return
        for p, m, v, s1, s2 in zip(self.params, self._m, self._v, self._s1, self._s2):
            if p.grad is None:
                continue
            grad = p.grad
            # m = beta1 * m + (1 - beta1) * grad
            np.multiply(m, self.beta1, out=m)
            np.multiply(grad, 1.0 - self.beta1, out=s1)
            np.add(m, s1, out=m)
            # v = beta2 * v + (1 - beta2) * grad**2
            np.multiply(v, self.beta2, out=v)
            np.power(grad, 2, out=s1)
            np.multiply(s1, 1.0 - self.beta2, out=s1)
            np.add(v, s1, out=v)
            # p.data -= lr * (m / bias1) / (sqrt(v / bias2) + eps)
            np.divide(v, bias2, out=s1)
            np.sqrt(s1, out=s1)
            np.add(s1, self.eps, out=s1)
            np.divide(m, bias1, out=s2)
            np.multiply(s2, self.lr, out=s2)
            np.divide(s2, s1, out=s2)
            p.data -= s2
            p.bump_version()

    def _step_fused(self, bias1: float, bias2: float) -> None:
        """One vectorised update over the flat moment/scratch buffers."""
        g, m, v, s = self._flat_g, self._flat_m, self._flat_v, self._flat_s
        for p, sl in zip(self.params, self._slices):
            g[sl] = p.grad.reshape(-1)
        # m = beta1 * m + (1 - beta1) * g
        np.multiply(m, self.beta1, out=m)
        np.multiply(g, 1.0 - self.beta1, out=s)
        np.add(m, s, out=m)
        # v = beta2 * v + (1 - beta2) * g**2
        np.multiply(v, self.beta2, out=v)
        np.multiply(g, g, out=s)
        np.multiply(s, 1.0 - self.beta2, out=s)
        np.add(v, s, out=v)
        # update = lr * (m / bias1) / (sqrt(v / bias2) + eps); g is free now.
        np.divide(v, bias2, out=s)
        np.sqrt(s, out=s)
        np.add(s, self.eps, out=s)
        np.divide(m, bias1, out=g)
        np.multiply(g, self.lr, out=g)
        np.divide(g, s, out=g)
        for p, sl in zip(self.params, self._slices):
            p.data -= g[sl].reshape(p.data.shape)
            p.bump_version()

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def state_dict(self) -> dict:
        """Optimiser state for checkpointing."""
        return {
            "t": self._t,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore optimiser state from :meth:`state_dict`.

        Moments restore into each parameter's existing dtype (the active
        backend), not a hardcoded float64 — loading a checkpoint must not
        silently promote a float32 run.  Writes go through the preallocated
        buffers so the fused step's flat views stay valid.
        """
        self._t = int(state["t"])
        if len(state["m"]) != len(self._m) or len(state["v"]) != len(self._v):
            raise ValueError("optimizer state does not match parameter count")
        for dst, src in zip(self._m, state["m"]):
            dst[...] = np.asarray(src, dtype=dst.dtype)
        for dst, src in zip(self._v, state["v"]):
            dst[...] = np.asarray(src, dtype=dst.dtype)
