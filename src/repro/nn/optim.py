"""Optimisers and gradient utilities."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def clip_grad_norm(params: list[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Tensor], lr: float = 1e-2, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not (0.0 <= momentum < 1.0):
            raise ValueError("momentum must be in [0, 1)")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad
            p.bump_version()

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 3e-4,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = b1, b2
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        # Preallocated per-parameter scratch: the update runs thousands of
        # times per search on small tensors, where temporary allocation
        # dominates the arithmetic.  Every ``out=`` expression below keeps
        # the original operation order, so results are bit-for-bit
        # identical to the allocating form.
        self._s1 = [np.empty_like(p.data) for p in self.params]
        self._s2 = [np.empty_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """Apply one Adam update from the accumulated gradients."""
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v, s1, s2 in zip(self.params, self._m, self._v, self._s1, self._s2):
            if p.grad is None:
                continue
            grad = p.grad
            # m = beta1 * m + (1 - beta1) * grad
            np.multiply(m, self.beta1, out=m)
            np.multiply(grad, 1.0 - self.beta1, out=s1)
            np.add(m, s1, out=m)
            # v = beta2 * v + (1 - beta2) * grad**2
            np.multiply(v, self.beta2, out=v)
            np.power(grad, 2, out=s1)
            np.multiply(s1, 1.0 - self.beta2, out=s1)
            np.add(v, s1, out=v)
            # p.data -= lr * (m / bias1) / (sqrt(v / bias2) + eps)
            np.divide(v, bias2, out=s1)
            np.sqrt(s1, out=s1)
            np.add(s1, self.eps, out=s1)
            np.divide(m, bias1, out=s2)
            np.multiply(s2, self.lr, out=s2)
            np.divide(s2, s1, out=s2)
            p.data -= s2
            p.bump_version()

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def state_dict(self) -> dict:
        """Optimiser state for checkpointing."""
        return {
            "t": self._t,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore optimiser state from :meth:`state_dict`."""
        self._t = int(state["t"])
        if len(state["m"]) != len(self._m) or len(state["v"]) != len(self._v):
            raise ValueError("optimizer state does not match parameter count")
        self._m = [np.asarray(m, dtype=np.float64).copy() for m in state["m"]]
        self._v = [np.asarray(v, dtype=np.float64).copy() for v in state["v"]]
