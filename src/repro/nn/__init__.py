"""Minimal NumPy neural-network stack (autodiff, layers, optimisers).

No deep-learning framework is available offline, so the GraphSAGE + PPO
stack the paper builds on TensorFlow is reimplemented here from scratch:
a reverse-mode tape over NumPy arrays (:mod:`repro.nn.tensor`), functional
ops with gradients (:mod:`repro.nn.functional`), the layers the policy needs
(:mod:`repro.nn.layers`), Adam/SGD with gradient clipping
(:mod:`repro.nn.optim`), and ``.npz`` checkpointing
(:mod:`repro.nn.serialization`).
"""

from repro.nn import functional
from repro.nn.layers import GraphSAGELayer, Linear, Module, Sequential
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.serialization import (
    load_state,
    load_state_dict_file,
    save_state,
    save_state_dict,
)
from repro.nn.tensor import Tensor

__all__ = [
    "Tensor",
    "functional",
    "Module",
    "Linear",
    "GraphSAGELayer",
    "Sequential",
    "Adam",
    "SGD",
    "clip_grad_norm",
    "save_state",
    "load_state",
    "save_state_dict",
    "load_state_dict_file",
]
