"""Minimal NumPy neural-network stack (autodiff, layers, optimisers).

No deep-learning framework is available offline, so the GraphSAGE + PPO
stack the paper builds on TensorFlow is reimplemented here from scratch:
a reverse-mode tape over NumPy arrays (:mod:`repro.nn.tensor`), functional
ops with gradients (:mod:`repro.nn.functional`), the layers the policy needs
(:mod:`repro.nn.layers`), Adam/SGD with gradient clipping
(:mod:`repro.nn.optim`), ``.npz`` checkpointing
(:mod:`repro.nn.serialization`), and the numeric precision seam
(:mod:`repro.nn.backend`): a frozen bit-for-bit float64 default plus an
opt-in float32 fast path with fused large-GEMM kernels.
"""

from repro.nn import functional
from repro.nn.backend import (
    FLOAT32,
    FLOAT64,
    PRECISIONS,
    Backend,
    backend_of,
    resolve_backend,
    typed_aggregation,
)
from repro.nn.layers import GraphSAGELayer, Linear, Module, Sequential
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.serialization import (
    load_state,
    load_state_dict_file,
    save_state,
    save_state_dict,
)
from repro.nn.tensor import MutationGuard, Tensor, debug_checks_enabled

__all__ = [
    "Tensor",
    "functional",
    "Backend",
    "FLOAT32",
    "FLOAT64",
    "PRECISIONS",
    "backend_of",
    "resolve_backend",
    "typed_aggregation",
    "MutationGuard",
    "debug_checks_enabled",
    "Module",
    "Linear",
    "GraphSAGELayer",
    "Sequential",
    "Adam",
    "SGD",
    "clip_grad_norm",
    "save_state",
    "load_state",
    "save_state_dict",
    "load_state_dict_file",
]
