"""Shared observability layer: tracing, typed metrics, phase profiling.

Three pillars, all zero-perturbation (no RNG use, timers only around
existing boundaries — see the ROADMAP "Observability invariants"):

* :mod:`repro.obs.trace` — ``Trace``/``Span`` request tracing with ids
  propagated via the ``X-Repro-Trace`` header and sampled JSONL sinks.
* :mod:`repro.obs.metrics` — ``Counter``/``Gauge``/``Histogram``
  primitives (bounded-memory log buckets, streaming percentiles, merge)
  plus Prometheus text rendering.
* :mod:`repro.obs.profile` — ``PhaseTimer`` attributing training-window
  wall time to rollout / solver / encoder / PPO-update / pool-IPC.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    latency_summary,
    prometheus_from_snapshot,
)
from repro.obs.profile import NULL_PHASE, PhaseTimer
from repro.obs.trace import (
    NULL_SPAN,
    TRACE_HEADER,
    Span,
    Trace,
    Tracer,
    activate,
    current_trace,
    deactivate,
    span,
    trace_id_should_sample,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_PHASE",
    "NULL_SPAN",
    "PhaseTimer",
    "Span",
    "TRACE_HEADER",
    "Trace",
    "Tracer",
    "activate",
    "current_trace",
    "deactivate",
    "latency_summary",
    "prometheus_from_snapshot",
    "span",
    "trace_id_should_sample",
]
