"""Training-loop phase profiling.

:class:`PhaseTimer` attributes wall time inside a search/pretrain loop to
named phases — ``rollout`` / ``solver`` / ``encoder`` / ``ppo_update`` /
``pool_ipc`` — at existing call boundaries, so benches and the CLI report
"where did this window go?" from the library instead of monkeypatching
trainer methods.

Zero-perturbation: the hook sites read ``partitioner.profiler`` once per
batch; when it is ``None`` (the default) they fall back to a shared no-op
context manager, so the instrumented loop with profiling off executes the
same arithmetic in the same order as the uninstrumented one.
"""

from __future__ import annotations

import json
import threading
import time

__all__ = ["NULL_PHASE", "PhaseTimer"]


class _NullPhase:
    """Shared no-op phase context: the profiling-off path."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_PHASE = _NullPhase()


class _Phase:
    __slots__ = ("_timer", "_name", "_t0")

    def __init__(self, timer: "PhaseTimer", name: str) -> None:
        self._timer = timer
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Phase":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._timer.add(self._name, time.perf_counter() - self._t0)
        return False


class PhaseTimer:
    """Accumulates per-phase wall seconds across a training run.

    ``phase(name)`` returns a context manager timing one occurrence;
    ``add(name, seconds)`` records externally measured time (IPC waits).
    ``shares()`` normalises against total wall time between construction
    (or the last :meth:`reset`) and now, so unattributed time shows up as
    an explicit ``other`` share instead of silently inflating the rest.
    """

    def __init__(self, log_path: "str | None" = None) -> None:
        self._seconds: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()
        self._log_path = log_path
        self._t_start = time.perf_counter()

    def phase(self, name: str) -> _Phase:
        return _Phase(self, name)

    def add(self, name: str, seconds: float) -> None:
        with self._lock:
            self._seconds[name] = self._seconds.get(name, 0.0) + seconds
            self._counts[name] = self._counts.get(name, 0) + 1

    def reset(self) -> None:
        with self._lock:
            self._seconds.clear()
            self._counts.clear()
            self._t_start = time.perf_counter()

    @property
    def elapsed_s(self) -> float:
        return time.perf_counter() - self._t_start

    def seconds(self) -> "dict[str, float]":
        with self._lock:
            return dict(self._seconds)

    def counts(self) -> "dict[str, int]":
        with self._lock:
            return dict(self._counts)

    def shares(self, elapsed_s: "float | None" = None) -> "dict[str, float]":
        """Fraction of wall time per phase, plus ``other`` for the rest.

        Phases that nest (``solver`` inside a timed batch) are reported as
        measured; ``other`` is clamped at 0 when attributed time exceeds
        the wall clock due to nesting.
        """
        total = self.elapsed_s if elapsed_s is None else float(elapsed_s)
        with self._lock:
            seconds = dict(self._seconds)
        if total <= 0.0:
            return {name: 0.0 for name in seconds}
        out = {name: round(s / total, 4) for name, s in sorted(seconds.items())}
        out["other"] = round(max(0.0, 1.0 - sum(seconds.values()) / total), 4)
        return out

    def breakdown(self, elapsed_s: "float | None" = None) -> dict:
        """The JSON row benches and ``--profile`` emit."""
        total = self.elapsed_s if elapsed_s is None else float(elapsed_s)
        with self._lock:
            seconds = {k: round(v, 6) for k, v in sorted(self._seconds.items())}
            counts = dict(sorted(self._counts.items()))
        return {
            "elapsed_s": round(total, 6),
            "seconds": seconds,
            "counts": counts,
            "shares": self.shares(total),
        }

    def log_event(self, event: str, **fields) -> None:
        """Append one JSONL event (window boundary, breakdown) to the log."""
        if self._log_path is None:
            return
        row = {"event": event, **fields}
        try:
            with open(self._log_path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(row, separators=(",", ":")) + "\n")
        except OSError:
            pass

    def format(self, elapsed_s: "float | None" = None) -> str:
        """Human-readable breakdown table for ``repro partition --profile``."""
        info = self.breakdown(elapsed_s)
        lines = [f"phase breakdown over {info['elapsed_s']:.3f}s wall:"]
        shares = info["shares"]
        for name, secs in info["seconds"].items():
            n = info["counts"].get(name, 0)
            lines.append(
                f"  {name:>10}: {secs:9.4f}s  {shares.get(name, 0.0) * 100:5.1f}%"
                f"  ({n} calls)"
            )
        lines.append(f"  {'other':>10}: {'':>10} {shares.get('other', 0.0) * 100:5.1f}%")
        return "\n".join(lines)
