"""End-to-end request tracing with zero-perturbation guarantees.

A :class:`Trace` is one request's tree of timed :class:`Span`\\ s, carried
across the process boundary by the ``X-Repro-Trace`` header: the router
opens the trace, forwards the id to the shard it picks, and both sides
append their spans to per-process JSONL files keyed by the shared id.

Design constraints (the "zero-perturbation" rule, see ROADMAP):

* **No RNG coupling** — trace ids come from ``uuid.uuid4`` (OS entropy),
  never from the seeded NumPy streams that drive search; span ids are a
  per-trace counter.  Enabling tracing cannot move a single sample.
* **Deterministic sampling** — the keep/drop decision hashes the trace id
  (SHA-256), so the router and every shard agree on the same decision for
  the same id without coordination, and replays are reproducible.
* **Off the hot path** — the disabled tracer and the unsampled trace both
  reduce to a shared no-op span singleton, and file I/O never runs on a
  request thread: completed traces are handed to a single background
  writer that appends them to the process's JSONL file.  ``flush()``
  blocks until the queue drains (tests, CLI teardown); ``close()`` drains
  and joins the writer.  Traces finished after ``close()`` are dropped.

A slow-request threshold (``slow_ms``) force-writes traces whose total
duration crosses it even when the sampler dropped them — the request you
most want to see is the one the sampler would have thrown away.
"""

from __future__ import annotations

import collections
import contextvars
import itertools
import hashlib
import json
import os
import threading
import time
import uuid

__all__ = [
    "NULL_SPAN",
    "Span",
    "Trace",
    "Tracer",
    "activate",
    "current_trace",
    "deactivate",
    "span",
    "trace_id_should_sample",
]

TRACE_HEADER = "X-Repro-Trace"


def trace_id_should_sample(trace_id: str, sample: float) -> bool:
    """Deterministic keep/drop for ``trace_id`` at rate ``sample``.

    Hashes the id rather than drawing randomness so every process holding
    the same id makes the same decision, and so tracing never touches an
    RNG stream (seeded or otherwise).
    """
    if sample >= 1.0:
        return True
    if sample <= 0.0:
        return False
    digest = hashlib.sha256(trace_id.encode("utf-8")).hexdigest()[:8]
    return int(digest, 16) / float(0xFFFFFFFF) < sample


class _NullSpan:
    """Shared no-op span: the disabled path is attribute lookups only."""

    __slots__ = ()
    trace_id = None
    span_id = None

    def end(self, **attrs) -> None:
        pass

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Span:
    """One timed operation inside a trace."""

    __slots__ = ("trace", "name", "span_id", "parent_id", "t0", "dur_ms", "attrs", "_token")

    def __init__(self, trace: "Trace", name: str, span_id: str, parent_id: "str | None", attrs: dict) -> None:
        self.trace = trace
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t0 = time.perf_counter()
        self.dur_ms: "float | None" = None
        self.attrs = attrs
        self._token = None

    @property
    def trace_id(self) -> str:
        return self.trace.trace_id

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def end(self, **attrs) -> None:
        if self.dur_ms is None:
            self.dur_ms = (time.perf_counter() - self.t0) * 1e3
        if attrs:
            self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set((self.trace, self.span_id))
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.end()
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        return False

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ms": round((self.t0 - self.trace.t0) * 1e3, 4),
            "dur_ms": round(self.dur_ms, 4) if self.dur_ms is not None else None,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class Trace:
    """A request's span tree.  Thread-safe: router attempt threads append
    spans to the same trace concurrently."""

    __slots__ = ("trace_id", "sampled", "service", "t0", "root", "_spans", "_next")

    def __init__(self, trace_id: str, sampled: bool, service: str = "") -> None:
        self.trace_id = trace_id
        self.sampled = sampled
        self.service = service
        self.t0 = time.perf_counter()
        self._spans: "list[Span]" = []
        # No lock on the span path: itertools.count and list.append are
        # atomic under the GIL, which is all concurrent attempt threads need.
        self._next = itertools.count()
        self.root = self.start_span("request")

    def start_span(self, name: str, parent_id: "str | None" = None, **attrs) -> Span:
        span_id = f"s{next(self._next)}"
        if parent_id is None and span_id != "s0":
            parent_id = self.root.span_id
        sp = Span(self, name, span_id, parent_id, attrs)
        self._spans.append(sp)
        return sp

    def spans(self) -> "list[Span]":
        return list(self._spans)

    def to_dict(self) -> dict:
        root = self.root
        return {
            "trace_id": self.trace_id,
            "service": self.service,
            "dur_ms": round(root.dur_ms, 4) if root.dur_ms is not None else None,
            "spans": [sp.to_dict() for sp in self.spans()],
        }


# (trace, parent_span_id) for the current execution context, or None.
_CURRENT: "contextvars.ContextVar[tuple | None]" = contextvars.ContextVar(
    "repro_trace", default=None
)


def current_trace() -> "Trace | None":
    state = _CURRENT.get()
    return state[0] if state is not None else None


def activate(trace: "Trace | None", parent_id: "str | None" = None):
    """Bind ``trace`` to the current context; returns a token for deactivate."""
    if trace is None:
        return None
    return _CURRENT.set((trace, parent_id or trace.root.span_id))


def deactivate(token) -> None:
    if token is not None:
        _CURRENT.reset(token)


def span(name: str, **attrs):
    """Start a child span of the context's current span (no-op when none).

    Usable as a context manager::

        with span("cache.lookup", fingerprint=fp):
            entry = cache.get(fp)
    """
    state = _CURRENT.get()
    if state is None:
        return NULL_SPAN
    trace, parent_id = state
    return trace.start_span(name, parent_id=parent_id, **attrs)


class Tracer:
    """Creates traces and writes the sampled ones to JSONL.

    One file per process (``trace-<pid>.jsonl`` under ``trace_dir``), one
    line per completed trace, appended atomically enough for line-oriented
    readers (single ``write`` of one line).  ``enabled`` is False when no
    ``trace_dir`` is configured; every entry point short-circuits on it.

    Writes are asynchronous: :meth:`finish` enqueues the completed trace
    and a lazily started daemon thread does the serialize/append, so the
    request thread never pays for file I/O (and never contends on the GIL
    for it between back-to-back requests).  :meth:`flush` waits for the
    queue to drain; :meth:`close` flushes and stops the writer.
    """

    def __init__(
        self,
        trace_dir: "str | None" = None,
        sample: float = 1.0,
        slow_ms: float = 0.0,
        service: str = "",
    ) -> None:
        self.trace_dir = trace_dir
        self.sample = float(sample)
        self.slow_ms = float(slow_ms)
        self.service = service
        self.enabled = trace_dir is not None
        self._write_lock = threading.Lock()
        self._cond = threading.Condition()
        self._queue: "collections.deque[Trace]" = collections.deque()
        self._thread: "threading.Thread | None" = None
        self._writing = False
        self._closed = False
        self._fh = None
        if self.enabled:
            os.makedirs(trace_dir, exist_ok=True)

    def start(self, trace_id: "str | None" = None, forced: bool = False) -> "Trace | None":
        """Open a trace (None when tracing is disabled).

        A caller-supplied ``trace_id`` (an incoming ``X-Repro-Trace``
        header) forces sampling: the client asked to see this request.
        """
        if not self.enabled:
            return None
        if trace_id:
            forced = True
        else:
            trace_id = uuid.uuid4().hex[:16]
        sampled = forced or trace_id_should_sample(trace_id, self.sample)
        return Trace(trace_id, sampled, service=self.service)

    def finish(self, trace: "Trace | None", **attrs) -> bool:
        """Close the root span and write the trace if it should be kept."""
        if trace is None:
            return False
        trace.root.end(**attrs)
        keep = trace.sampled or (
            self.slow_ms > 0.0
            and trace.root.dur_ms is not None
            and trace.root.dur_ms >= self.slow_ms
        )
        if not keep:
            return False
        with self._cond:
            if self._closed:
                return False
            self._queue.append(trace)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._drain_loop,
                    name="repro-trace-writer",
                    daemon=True,
                )
                self._thread.start()
            # Deliberately no notify: waking the writer per trace puts a
            # GIL handoff on every request.  The writer polls on a short
            # timeout and drains whole batches; flush()/close() notify when
            # somebody actually needs the queue empty *now*.
        return True

    #: Writer poll period: the upper bound on how stale the JSONL file can
    #: be behind completed traces (flush() short-circuits it).
    _POLL_S = 0.05

    def _drain_loop(self) -> None:
        while True:
            with self._cond:
                if not self._queue and not self._closed:
                    self._cond.wait(self._POLL_S)
                batch = list(self._queue)
                self._queue.clear()
                self._writing = bool(batch)
            for trace in batch:
                self._write(trace)
            with self._cond:
                self._writing = False
                if batch:
                    self._cond.notify_all()
                if self._closed and not self._queue:
                    return

    def flush(self, timeout: float = 5.0) -> bool:
        """Block until every enqueued trace is on disk (or ``timeout``)."""
        if not self.enabled:
            return True
        deadline = time.perf_counter() + timeout
        with self._cond:
            while self._queue or self._writing:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
        return True

    def close(self, timeout: float = 5.0) -> None:
        """Drain the queue, stop the writer thread, close the file."""
        if not self.enabled:
            return
        with self._cond:
            self._closed = True
            thread = self._thread
            self._cond.notify_all()
        if thread is not None:
            thread.join(timeout)
        while True:  # whatever a wedged/raced writer left behind
            with self._cond:
                if not self._queue:
                    break
                trace = self._queue.popleft()
            self._write(trace)
        with self._write_lock:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None

    def _write(self, trace: Trace) -> None:
        line = json.dumps(trace.to_dict(), separators=(",", ":")) + "\n"
        try:
            with self._write_lock:
                if self._fh is None:
                    path = os.path.join(
                        self.trace_dir, f"trace-{os.getpid()}.jsonl"
                    )
                    self._fh = open(path, "a", encoding="utf-8")
                self._fh.write(line)
                self._fh.flush()
        except OSError:
            # Observability must never take down serving: a full disk or a
            # removed trace dir drops the trace, not the request.
            pass
