"""Typed metric primitives with bounded memory.

Three primitives back every counter/latency dict the serving stack used to
assemble by hand:

* :class:`Counter` — monotonically increasing integer, thread-safe.
* :class:`Gauge` — a settable scalar (optionally computed via callback).
* :class:`Histogram` — log-bucketed streaming distribution with p50/p95/p99
  and associative :meth:`Histogram.merge` (a router can aggregate shard
  histograms in any grouping and get the same result).

The histogram's bucket boundaries grow geometrically by ``2**(1/16)`` per
bucket, so any reported percentile is within ~4.4% relative error of the
exact value while memory stays bounded by the number of *distinct occupied
buckets* (≈640 over twelve decades), never by the observation count.

:class:`MetricsRegistry` names metrics and renders the lot as Prometheus
text exposition; :func:`prometheus_from_snapshot` additionally flattens an
arbitrary nested JSON snapshot (the existing ``/metrics`` shape) into
gauges so the Prometheus view covers everything the JSON view does.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "latency_summary",
    "prometheus_from_snapshot",
]

# Per-bucket growth factor.  2**(1/16) = 16 buckets per octave: relative
# percentile error is at most (sqrt(growth) - 1) ~ 2.2% at the geometric
# bucket midpoint, <= 4.4% worst case across a bucket.
_GROWTH_PER_OCTAVE = 16
_GROWTH = 2.0 ** (1.0 / _GROWTH_PER_OCTAVE)
_LOG_GROWTH = math.log(_GROWTH)
# Observations below this are counted in a single underflow bucket: the
# serving stack measures milliseconds/seconds, where 1e-9 is already far
# below clock resolution.
_MIN_TRACKED = 1e-9


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self._value})"


class Gauge:
    """A scalar that can go up and down, or track a live callback."""

    __slots__ = ("name", "_value", "_fn", "_lock")

    def __init__(self, name: str = "", fn=None) -> None:
        self.name = name
        self._value = 0.0
        self._fn = fn
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self.value})"


def _bucket_index(value: float) -> int:
    """Bucket index for ``value``; bucket ``i`` covers [growth^i, growth^(i+1))."""
    return math.floor(math.log(value) / _LOG_GROWTH)


class Histogram:
    """Log-bucketed streaming histogram with mergeable state.

    Buckets are sparse (a dict keyed by integer bucket index), so memory is
    bounded by the number of *occupied* buckets regardless of how many
    observations stream through.  Exact count/sum/min/max are kept
    alongside, so means are exact; only percentiles are approximated (to
    within the bucket width, ~4.4% relative).
    """

    __slots__ = ("name", "_buckets", "_zero", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._buckets: dict[int, int] = {}
        self._zero = 0  # observations below _MIN_TRACKED (incl. 0 and negatives)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if value < _MIN_TRACKED:
                self._zero += 1
            else:
                idx = _bucket_index(value)
                self._buckets[idx] = self._buckets.get(idx, 0) + 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def n_buckets(self) -> int:
        """Occupied bucket count — the memory bound, independent of count."""
        return len(self._buckets)

    def percentile(self, q: float) -> "float | None":
        """Approximate q-th percentile (q in [0, 100])."""
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q: float) -> "float | None":
        if self._count == 0:
            return None
        rank = q / 100.0 * self._count
        seen = self._zero
        if rank <= seen:
            # All sub-threshold observations report as the true minimum.
            return float(min(self._min, 0.0) if self._min < math.inf else 0.0)
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if rank <= seen:
                # Geometric bucket midpoint, clamped to the observed range
                # so single-observation histograms report exact values.
                mid = _GROWTH ** (idx + 0.5)
                return float(min(max(mid, self._min), self._max))
        return float(self._max)

    def merge(self, other: "Histogram") -> "Histogram":
        """Return a new histogram equal to observing both streams.

        Associative and commutative: a router may aggregate shard
        histograms in any grouping.
        """
        out = Histogram(self.name or other.name)
        for h in (self, other):
            with h._lock:
                for idx, n in h._buckets.items():
                    out._buckets[idx] = out._buckets.get(idx, 0) + n
                out._zero += h._zero
                out._count += h._count
                out._sum += h._sum
                out._min = min(out._min, h._min)
                out._max = max(out._max, h._max)
        return out

    def summary(self) -> dict:
        """Streaming summary: count, mean, p50/p95/p99, min/max."""
        with self._lock:
            if self._count == 0:
                return {
                    "count": 0,
                    "mean": None,
                    "p50": None,
                    "p95": None,
                    "p99": None,
                    "min": None,
                    "max": None,
                }
            return {
                "count": self._count,
                "mean": self._sum / self._count,
                "p50": self._percentile_locked(50),
                "p95": self._percentile_locked(95),
                "p99": self._percentile_locked(99),
                "min": self._min,
                "max": self._max,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self._count})"


def latency_summary(values_ms) -> dict:
    """Exact percentile summary of a finished latency list (bench helper).

    For *post-hoc* analysis of a bounded list — benches, not servers —
    where exactness beats streaming.  Matches the row shape benches write:
    ``{"n", "p50_ms", "p95_ms", "p99_ms", "mean_ms"}``.
    """
    import numpy as np

    arr = np.asarray(list(values_ms), dtype=np.float64)
    if arr.size == 0:
        return {"n": 0, "p50_ms": None, "p95_ms": None, "p99_ms": None, "mean_ms": None}
    return {
        "n": int(arr.size),
        "p50_ms": float(np.percentile(arr, 50)),
        "p95_ms": float(np.percentile(arr, 95)),
        "p99_ms": float(np.percentile(arr, 99)),
        "mean_ms": float(arr.mean()),
    }


def _sanitize(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text


class MetricsRegistry:
    """Named home for a process's metrics, renderable as Prometheus text.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice for
    the same name returns the same object, so subsystems can share a
    registry without coordinating construction order.
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = _sanitize(namespace)
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls, **kwargs):
        name = _sanitize(name)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}"
                    )
                return existing
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str, fn=None) -> Gauge:
        return self._get_or_create(name, Gauge, fn=fn)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def render(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every metric."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: list[str] = []
        ns = self.namespace
        for name, metric in metrics:
            full = f"{ns}_{name}"
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {full} counter")
                lines.append(f"{full} {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {full} gauge")
                lines.append(f"{full} {_fmt(metric.value)}")
            elif isinstance(metric, Histogram):
                lines.extend(_render_histogram(full, metric))
        return "\n".join(lines) + "\n"


def _fmt(value) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _render_histogram(full: str, hist: Histogram) -> "list[str]":
    lines = [f"# TYPE {full} histogram"]
    with hist._lock:
        buckets = sorted(hist._buckets.items())
        zero, count, total = hist._zero, hist._count, hist._sum
    cumulative = zero
    if zero:
        lines.append(f'{full}_bucket{{le="{_fmt(_MIN_TRACKED)}"}} {cumulative}')
    for idx, n in buckets:
        cumulative += n
        upper = _GROWTH ** (idx + 1)
        lines.append(f'{full}_bucket{{le="{_fmt(upper)}"}} {cumulative}')
    lines.append(f'{full}_bucket{{le="+Inf"}} {count}')
    lines.append(f"{full}_sum {_fmt(total)}")
    lines.append(f"{full}_count {count}")
    return lines


def prometheus_from_snapshot(snapshot: dict, prefix: str = "repro") -> str:
    """Flatten a nested ``/metrics`` JSON snapshot into Prometheus gauges.

    Every numeric leaf of the nested dict becomes one gauge named by its
    path (``cache.hit_rate`` -> ``repro_cache_hit_rate``); booleans render
    as 0/1; None and non-numeric leaves are skipped.  This keeps the
    Prometheus view in lockstep with the JSON view without a second
    bookkeeping path.
    """
    lines: list[str] = []
    prefix = _sanitize(prefix)

    def walk(path: str, node) -> None:
        if isinstance(node, dict):
            for key in sorted(node, key=str):
                walk(f"{path}_{_sanitize(str(key))}" if path else _sanitize(str(key)), node[key])
        elif isinstance(node, bool):
            lines.append(f"# TYPE {prefix}_{path} gauge")
            lines.append(f"{prefix}_{path} {1 if node else 0}")
        elif isinstance(node, (int, float)):
            lines.append(f"# TYPE {prefix}_{path} gauge")
            lines.append(f"{prefix}_{path} {_fmt(node)}")
        # strings / None / lists: not representable as a scalar sample.

    walk("", snapshot)
    return "\n".join(lines) + "\n"
