"""Deterministic fault injection: seed-keyed plans, constructor-injected.

A :class:`FaultPlan` is an explicit, finite schedule of faults.  Each layer
that can fail takes the plan as a constructor argument and consults it at
its injection points:

=================== ============== ===========================================
site                kinds          injection point
=================== ============== ===========================================
``pool``            ``crash``      worker ``os._exit``\\ s before the task
                    ``delay``      worker sleeps ``delay_s`` before the task
``registry``        ``io_error``   :meth:`CheckpointRegistry.publish` /
                                   ``load`` raise
``cache``           ``io_error``   persistent-cache journal append /
                                   compaction raise
``server``          ``drop``       HTTP handler closes the connection without
                                   replying
``shard_kill``      ``kill``       router SIGKILLs the shard process it is
                                   about to forward to (key: ``(shard_id,)``)
``shard_stall``     ``stall``      router's forward to the shard sleeps
                                   ``delay_s`` first — a wedged shard, seen
                                   as a slow/expired attempt
``network_partition`` ``partition`` router's transport to the shard fails
                                   without sending (the process stays alive;
                                   key: ``(shard_id,)``)
=================== ============== ===========================================

Determinism contract: a fault fires for the *task/operation it names*, at
most ``times`` times, and consumption is recorded in the plan — so a
reassigned task (the pool consumes pool faults at submit time, parent-side)
is re-executed clean, and a chaos run is a pure function of ``(workload
seed, plan)``.  The recovery invariants the chaos suite pins (bit-identical
trajectories, zero corrupt-entry crashes) all reduce to that contract.

Plans are cheap to share: one lock guards the armed counters, and a layer
holding ``fault_plan=None`` pays a single ``is None`` check.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np


class InjectedIOError(OSError):
    """The injected stand-in for a disk/OS failure (an ``OSError``)."""


@dataclass(frozen=True)
class Fault:
    """One schedulable fault.

    Attributes
    ----------
    site:
        Which layer consults it: ``"pool"``, ``"registry"``, ``"cache"``,
        or ``"server"``.
    kind:
        ``"crash"``, ``"delay"``, ``"io_error"``, or ``"drop"`` (see the
        module table for which site honours which kind).
    at:
        Match key, compared as a prefix of the operation key the layer
        passes to :meth:`FaultPlan.fire` — e.g. ``(window, shard)`` for a
        pool task, ``("load",)`` for a registry operation.  The empty
        tuple matches every operation at the site.
    delay_s:
        Sleep injected before the task runs (``kind="delay"`` only).
    times:
        How many times the fault fires before it is spent (``times < 0``
        never spends — an "always fail" fault for degradation tests).
    """

    site: str
    kind: str
    at: tuple = ()
    delay_s: float = 0.0
    times: int = 1


class FaultPlan:
    """A finite, deterministic schedule of :class:`Fault`\\ s.

    ``fire(site, kind, key)`` consumes and returns the first armed fault
    whose ``at`` is a prefix of ``key`` (or ``None``); every firing is
    recorded in :attr:`fired` for the metrics/assertion surface.
    """

    def __init__(self, faults: "list[Fault] | None" = None, seed: int = 0):
        self.seed = int(seed)
        self._faults = list(faults or [])
        self._remaining = [f.times for f in self._faults]
        self.fired: "list[tuple]" = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        n_windows: int = 4,
        n_shards: int = 4,
        n_faults: int = 2,
        kinds: tuple = ("crash", "delay"),
        delay_s: float = 0.0,
    ) -> "FaultPlan":
        """A seed-keyed random *pool* fault schedule (the chaos tests' input).

        Purely a function of its arguments: the same seed always produces
        the same plan, so "bit-identical under any seed-keyed plan" is a
        testable statement.  Faults target concrete ``(window, shard)``
        task ids, which is where worker loss hurts the schedule most.
        """
        rng = np.random.default_rng(np.random.SeedSequence([int(seed), 0xFA]))
        faults = []
        for _ in range(int(n_faults)):
            kind = kinds[int(rng.integers(len(kinds)))]
            at = (int(rng.integers(n_windows)), int(rng.integers(n_shards)))
            faults.append(
                Fault(site="pool", kind=kind, at=at, delay_s=delay_s)
            )
        return cls(faults, seed=seed)

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a CLI spec string (``repro serve --fault-plan``).

        Grammar: faults separated by ``;`` (or ``,``), each
        ``site:kind[:at=a/b][:times=N][:delay=S]`` — e.g.

        * ``server:drop:times=2`` — drop the next two HTTP connections;
        * ``registry:io_error:at=load:times=-1`` — every weights load fails;
        * ``shard_kill:kill:at=s1`` — SIGKILL shard ``s1`` when the router
          next forwards to it;
        * ``shard_stall:stall:at=s0:delay=2`` — stall one forward to ``s0``
          for two seconds (a hedge/failover trigger).

        ``at`` elements are ``/``-separated and parsed as ints where
        possible (pool task ids are ``(window, shard)`` int tuples).
        """
        faults = []
        for item in spec.replace(",", ";").split(";"):
            item = item.strip()
            if not item:
                continue
            fields = item.split(":")
            if len(fields) < 2:
                raise ValueError(
                    f"bad fault spec {item!r}: expected site:kind[:key=value...]"
                )
            site, kind = fields[0].strip(), fields[1].strip()
            at: tuple = ()
            times, delay_s = 1, 0.0
            for extra in fields[2:]:
                name, sep, value = extra.partition("=")
                name, value = name.strip(), value.strip()
                if not sep:
                    raise ValueError(
                        f"bad fault option {extra!r} in {item!r}: "
                        "expected at=/times=/delay="
                    )
                if name == "at":
                    at = tuple(
                        int(part) if part.lstrip("-").isdigit() else part
                        for part in value.split("/")
                        if part != ""
                    )
                elif name == "times":
                    times = int(value)
                elif name == "delay":
                    delay_s = float(value)
                else:
                    raise ValueError(
                        f"unknown fault option {name!r} in {item!r}"
                    )
            faults.append(
                Fault(site=site, kind=kind, at=at, delay_s=delay_s, times=times)
            )
        if not faults:
            raise ValueError(f"fault spec {spec!r} declares no faults")
        return cls(faults, seed=seed)

    def describe(self) -> "list[dict]":
        """JSON-safe armed-plan echo (the ``/metrics`` surface): one dict
        per declared fault with its remaining budget."""
        with self._lock:
            return [
                {
                    "site": f.site,
                    "kind": f.kind,
                    "at": list(f.at),
                    "delay_s": f.delay_s,
                    "times": f.times,
                    "remaining": self._remaining[i],
                }
                for i, f in enumerate(self._faults)
            ]

    # ------------------------------------------------------------------
    def fire(self, site: str, kind: str, key: tuple = ()) -> "Fault | None":
        """Consume one armed fault matching ``(site, kind, key)``, if any."""
        key = tuple(key)
        with self._lock:
            for i, fault in enumerate(self._faults):
                if fault.site != site or fault.kind != kind:
                    continue
                if self._remaining[i] == 0:
                    continue
                if fault.at and key[: len(fault.at)] != fault.at:
                    continue
                if self._remaining[i] > 0:
                    self._remaining[i] -= 1
                self.fired.append((site, kind, key))
                return fault
        return None

    def io_error(self, site: str, op: str) -> None:
        """Raise :class:`InjectedIOError` if an ``io_error`` fault is armed.

        The convenience form the persistence layers call at their disk
        touch points: ``plan.io_error("registry", "publish")``.
        """
        if self.fire(site, "io_error", (op,)) is not None:
            raise InjectedIOError(
                f"injected {site} {op} failure (FaultPlan seed={self.seed})"
            )

    # ------------------------------------------------------------------
    def pool_directive(self, task_id: tuple) -> "tuple | None":
        """The pool's submit-time hook: crash/delay directive for one task.

        Consulted (and consumed) by the *parent* when the task is first
        dispatched — never on reassignment — so an injected crash kills
        exactly one worker once and the recovered schedule runs clean.
        """
        fault = self.fire("pool", "crash", tuple(task_id))
        if fault is not None:
            return ("crash",)
        fault = self.fire("pool", "delay", tuple(task_id))
        if fault is not None:
            return ("delay", float(fault.delay_s))
        return None

    # ------------------------------------------------------------------
    def counts(self) -> dict:
        """Fired-fault counters by site (the ``/metrics`` surface)."""
        with self._lock:
            by_site: dict = {}
            for site, _kind, _key in self.fired:
                by_site[site] = by_site.get(site, 0) + 1
            return {
                "armed": sum(1 for r in self._remaining if r != 0),
                "fired_total": len(self.fired),
                "fired_by_site": by_site,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(seed={self.seed}, faults={len(self._faults)}, "
            f"fired={len(self.fired)})"
        )
