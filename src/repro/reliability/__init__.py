"""Reliability subsystem: deterministic fault injection + recovery hooks.

The fault-injection harness (:mod:`repro.reliability.faults`) is the test
and chaos-engineering surface of the recovery machinery that lives in the
layers it exercises:

* the supervised worker pool (:class:`repro.parallel.pool.WorkerPool`)
  respawns crashed or stuck workers and reassigns their tasks — result
  *invariant*, because every task's RNG is spawn-keyed;
* the serving layer (:mod:`repro.serve.service`) degrades to the greedy
  heuristic baseline instead of failing when a checkpoint cannot load or a
  search blows its deadline, and sheds load with structured 429s;
* persistence (:mod:`repro.serve.registry`, :mod:`repro.serve.persist`)
  publishes atomically and survives torn journal writes.

Faults are **constructor arguments**, never monkeypatches: every layer that
can fail takes an optional :class:`FaultPlan` and consults it at its
failure points, so a chaos test injects the exact fault schedule the seed
describes and the production path (``fault_plan=None``) stays zero-cost.
"""

from repro.reliability.faults import (
    Fault,
    FaultPlan,
    InjectedIOError,
)

__all__ = ["Fault", "FaultPlan", "InjectedIOError"]
