"""Constructive contiguous partitioning — always valid, never searches.

This is both the production compiler's greedy heuristic (the paper's
baseline) and the solver strategies' terminal fallback: sweep a topological
order accumulating compute, closing a chip once it holds its proportional
share, but only at *safe* cut points where no edge would cross two chip
boundaries.  The resulting chip-dependency graph is a path, which satisfies
the acyclic-dataflow, no-skipping, and triangle constraints by construction —
and therefore stays valid on every built-in topology, since each of them can
route every ascending chip pair.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import CompGraph


def contiguous_partition(
    graph: CompGraph, n_chips: int, weights: "np.ndarray | None" = None
) -> np.ndarray:
    """Balanced contiguous partition with safe cut points.

    Segments are balanced by ``weights`` (per-node, defaulting to
    ``compute_us``).  Complexity ``O(N + E)``.  Always returns a partition
    satisfying all static constraints; uses fewer than ``n_chips`` chips
    when safe cut points are too scarce.
    """
    if n_chips < 1:
        raise ValueError("n_chips must be >= 1")
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (graph.n_nodes,):
            raise ValueError(f"weights must have shape ({graph.n_nodes},)")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
    n = graph.n_nodes
    order = graph.topological_order()
    position = np.empty(n, dtype=np.int64)
    position[order] = np.arange(n)

    # reach[p]: furthest consumer position of any edge whose producer sits
    # strictly before position p (i.e. edges "open" across p).  Edges from
    # replicable constants never cross the ring and are ignored.
    reach = np.zeros(n + 1, dtype=np.int64)
    if graph.n_edges:
        live = ~graph.is_replicable()[graph.src]
        src_pos = position[graph.src[live]]
        dst_pos = position[graph.dst[live]]
        np.maximum.at(reach, src_pos + 1, dst_pos)
    running = np.maximum.accumulate(reach)

    node_weight = graph.compute_us if weights is None else weights
    cum = np.cumsum(node_weight[order])
    total = max(float(cum[-1]), 1e-12)

    assignment_by_pos = np.empty(n, dtype=np.int64)
    chip = 0
    seg_start = 0
    boundary_reach = 0  # furthest consumer of edges crossing the last cut
    for p in range(n):
        target = total * (chip + 1) / n_chips
        done = cum[p] >= target - 1e-9
        must_wait = p + 1 <= boundary_reach  # an open edge still spans here
        if done and not must_wait and chip < n_chips - 1 and p + 1 < n:
            assignment_by_pos[seg_start : p + 1] = chip
            chip += 1
            seg_start = p + 1
            boundary_reach = int(running[p + 1])
    assignment_by_pos[seg_start:] = chip

    assignment = np.empty(n, dtype=np.int64)
    assignment[order] = assignment_by_pos
    return assignment
