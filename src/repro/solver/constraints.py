"""Whole-partition validators for the static constraints (Equations 2-4).

These are the ground-truth checks used by the environment, the tests, and the
solver's own property tests; the incremental solver must never emit a
partition these functions reject.

Topology generalisation: Eq. 2 ("acyclic dataflow", ``f(u) <= f(v)``) is the
uni-directional ring's instance of the *reachability* constraint — every
edge's destination chip must be routable from its source chip.  Validators
accept an optional :class:`repro.hardware.topology.Topology`; ``None`` or
any total-order topology keeps the exact legacy uni-ring semantics
(including the triangle constraint, Eq. 4, which is a ring-compiler
artifact), while other topologies check reachability + no-skipping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import CompGraph
from repro.hardware.base import check_assignment
from repro.solver.chipgraph import chip_adjacency, triangle_violations


def check_acyclic_dataflow(graph: CompGraph, assignment: np.ndarray) -> bool:
    """Constraint 1 (Eq. 2): ``f(u) <= f(v)`` for every edge ``(u, v)``.

    Edges from replicable constants are exempt: constants are materialised
    on every chip rather than streamed over the ring.
    """
    if graph.n_edges == 0:
        return True
    exempt = graph.is_replicable()[graph.src]
    return bool(np.all((assignment[graph.src] <= assignment[graph.dst]) | exempt))


def check_reachable_dataflow(
    graph: CompGraph, assignment: np.ndarray, topology
) -> bool:
    """Generalised Constraint 1: every edge's chips must be routable.

    ``topology.reachable[f(u), f(v)]`` must hold for every constraint edge;
    for the uni-ring this is exactly ``f(u) <= f(v)`` (Eq. 2).  Edges from
    replicable constants are exempt, as in the ordered check.
    """
    if graph.n_edges == 0:
        return True
    exempt = graph.is_replicable()[graph.src]
    ok = topology.reachable[assignment[graph.src], assignment[graph.dst]]
    return bool(np.all(ok | exempt))


def check_no_skipping(graph: CompGraph, assignment: np.ndarray, n_chips: int) -> bool:
    """Constraint 2 (Eq. 3): used chip IDs form a prefix ``{0..max}``."""
    used = np.zeros(n_chips, dtype=bool)
    used[assignment] = True
    top = int(assignment.max())
    return bool(used[: top + 1].all())


def check_triangle_dependency(
    graph: CompGraph, assignment: np.ndarray, n_chips: int
) -> bool:
    """Constraint 3 (Eq. 4): every direct chip dependency has longest path 1."""
    adj = chip_adjacency(graph, assignment, n_chips)
    if not np.any(adj):
        return True
    return triangle_violations(adj).size == 0


@dataclass(frozen=True)
class ConstraintReport:
    """Outcome of validating a complete partition against Eq. 2-4."""

    acyclic_dataflow: bool
    no_skipping: bool
    triangle_dependency: bool

    @property
    def ok(self) -> bool:
        """True when all static constraints hold."""
        return self.acyclic_dataflow and self.no_skipping and self.triangle_dependency

    @property
    def violated(self) -> tuple:
        """Names of violated constraints (empty when valid)."""
        out = []
        if not self.acyclic_dataflow:
            out.append("acyclic_dataflow")
        if not self.no_skipping:
            out.append("no_skipping")
        if not self.triangle_dependency:
            out.append("triangle_dependency")
        return tuple(out)


def validate_partition(
    graph: CompGraph, assignment, n_chips: int, topology=None
) -> ConstraintReport:
    """Validate a complete assignment against all static constraints.

    ``topology=None`` (or any total-order topology, i.e. the uni-ring)
    applies the paper's Equations 2-4 exactly.  Other topologies replace
    Eq. 2 by the reachability check and drop the triangle constraint, which
    is specific to the ring compiler (reported as satisfied so the
    :class:`ConstraintReport` shape stays stable).
    """
    assignment = check_assignment(graph, assignment, n_chips)
    if topology is None or topology.is_total_order:
        acyclic = check_acyclic_dataflow(graph, assignment)
        return ConstraintReport(
            acyclic_dataflow=acyclic,
            no_skipping=check_no_skipping(graph, assignment, n_chips),
            # The triangle check presumes ascending chip edges; report it as
            # violated when dataflow is already broken.
            triangle_dependency=(
                check_triangle_dependency(graph, assignment, n_chips)
                if acyclic
                else False
            ),
        )
    if topology.n_chips != n_chips:
        raise ValueError(
            f"topology is for {topology.n_chips} chips, validator got {n_chips}"
        )
    return ConstraintReport(
        acyclic_dataflow=check_reachable_dataflow(graph, assignment, topology),
        no_skipping=check_no_skipping(graph, assignment, n_chips),
        triangle_dependency=True,
    )
