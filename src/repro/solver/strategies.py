"""SAMPLE and FIX solver strategies (the paper's Algorithms 1 and 2).

Both strategies walk a node order, restricting one node's domain per step
through :meth:`ConstraintSolver.set_domain`; the decision count returned by
the solver is the loop index, so a back-track transparently rewinds the walk.

* **SAMPLE** (Algorithm 1): at each node, sample a chip from the policy's
  probability distribution restricted to the current valid domain.
* **FIX** (Algorithm 2): first pass keeps the candidate assignment wherever
  it is valid; second pass randomly assigns whatever remains open.

Completeness substitution (documented in DESIGN.md): the paper drives
CP-SAT, whose clause learning escapes the deep dead-ends that high-fan-in
graph motifs (embedding-shard merges, attention-head fan-outs) create under
the triangle constraint.  This solver uses chronological back-tracking, so
the strategies add two standard solver-internal heuristics instead:

1. the default node order is a *random linear extension* (a fresh random
   order that respects the partial order, keeping propagation exact along
   the frontier), and
2. *guided restarts*: a run that stops progressing is restarted, and later
   restarts multiply the value-ordering distribution by a topological-
   position prior of escalating sharpness (nodes near pipeline position
   ``p`` favour chip ``floor(p * C)``).  Restart 0 is fully faithful to the
   caller's distribution, so easy instances are unaffected; the
   multiplicative blend keeps the caller's preferences in play on hard
   instances while suppressing the far-from-position values that wedge the
   triangle constraint.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import CompGraph
from repro.solver.engine import ConstraintSolver, Unsatisfiable
from repro.solver.fallback import contiguous_partition
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability_matrix

#: Abort a run when the frontier has not advanced for this many driver steps.
#: Heavy local back-tracking is normal near chip boundaries (a few hundred
#: steps without net progress while a motif re-seats), so the patience must
#: comfortably exceed those bursts.
_STALL_PATIENCE_FACTOR = 1.0
_STALL_PATIENCE_MIN = 512
#: Restart budget before handing the instance to the constructive fallback.
_MAX_RESTARTS = 12


def _guide_concentration(restart: int) -> float:
    """Prior sharpness schedule; 0 disables guiding.

    Even restarts (including the first attempt) stay faithful to the
    caller's distribution — graphs with long sequential chains (RNNs)
    solve easily unguided and are actively hurt by the positional prior.
    Odd restarts escalate the prior — fan-out/merge motifs (attention
    heads, embedding shards) need it to avoid triangle-constraint wedging.
    """
    if restart % 2 == 0:
        return 0.0
    return min(3.0 + 1.5 * ((restart + 1) // 2), 12.0)


def _resolve_order(order, graph: CompGraph, rng: np.random.Generator) -> np.ndarray:
    """Default to a fresh random linear extension, as the paper's solver
    defaults to a fresh random order per call."""
    if order is None:
        return graph.random_topological_order(rng)
    order = np.asarray(order, dtype=np.int64)
    if sorted(order.tolist()) != list(range(graph.n_nodes)):
        raise ValueError("order must be a permutation of all node ids")
    return order


def topo_prior(graph: CompGraph, n_chips: int, concentration: float = 1.5) -> np.ndarray:
    """``(N, C)`` distribution concentrating node ``u`` near its pipeline chip.

    The prior favours ``floor(position[u] * C)`` with geometric decay, i.e.
    a balanced contiguous placement — always reachable for the solver and a
    sensible value-ordering default for hard instances.
    """
    position = graph.compute_position()
    target = np.minimum((position * n_chips).astype(np.int64), n_chips - 1)
    chips = np.arange(n_chips)
    logits = -concentration * np.abs(chips[None, :] - target[:, None])
    probs = np.exp(logits)
    return probs / probs.sum(axis=1, keepdims=True)


def _guide(graph: CompGraph, probs: np.ndarray, n_chips: int, restart: int) -> np.ndarray:
    """Multiplicatively sharpen ``probs`` with the topological prior.

    Restart 0 returns ``probs`` unchanged.  Later restarts return
    ``probs * prior`` (renormalised), which suppresses the scattered
    placements that wedge the triangle constraint while preserving the
    caller's relative preferences among nearby chips.
    """
    conc = _guide_concentration(restart)
    if conc <= 0.0:
        return probs
    prior = topo_prior(graph, n_chips, concentration=conc)
    blended = probs * prior
    totals = blended.sum(axis=1, keepdims=True)
    # Rows where the product underflows fall back to the prior alone.
    bad = (totals <= 0).reshape(-1)
    if np.any(bad):
        blended[bad] = prior[bad]
        totals = blended.sum(axis=1, keepdims=True)
    return blended / totals


def _sample_from(domain: np.ndarray, probs_row: "np.ndarray | None", rng) -> int:
    """Sample a chip from ``domain`` following ``probs_row`` when usable.

    Inverse-CDF sampling over the (tiny) domain; ``rng.choice`` carries
    tens of microseconds of generic-dispatch overhead per call, which
    dominates the solver driver at search rates.
    """
    size = domain.size
    if size == 1:
        return int(domain[0])
    if probs_row is None:
        return int(domain[rng.integers(size)])
    weights = probs_row.take(domain).tolist()
    total = 0.0
    for w in weights:
        total += w
    if not 0.0 < total < np.inf:  # catches 0, negatives, inf, and nan
        return int(domain[rng.integers(size)])
    r = rng.random() * total
    acc = 0.0
    for i in range(size - 1):
        acc += weights[i]
        if r < acc:
            return int(domain[i])
    return int(domain[size - 1])


def _run_driver(
    solver: ConstraintSolver,
    order: np.ndarray,
    step_fn,
    n_steps_target: int,
) -> bool:
    """Drive ``step_fn`` until ``n_steps_target`` decisions or a stall.

    ``step_fn(i, u)`` performs one ``set_domain`` call and returns the new
    decision count.  Returns True when the target was reached.
    """
    n = order.size
    patience = max(int(_STALL_PATIENCE_FACTOR * n), _STALL_PATIENCE_MIN)
    step_budget = n_steps_target + 3 * patience
    i = 0
    best = 0
    steps = 0
    since_progress = 0
    while i < n_steps_target:
        u = int(order[i % n])
        try:
            i = step_fn(i, u)
        except Unsatisfiable:
            # Accumulated root-level exclusions wedged this run entirely;
            # a restart clears them.
            return False
        steps += 1
        if i > best:
            best = i
            since_progress = 0
        else:
            since_progress += 1
            if since_progress >= patience:
                return False
        if steps >= step_budget:
            return False
    return True


def sample_partition(
    graph: CompGraph,
    probs: np.ndarray,
    n_chips: int,
    rng=None,
    order=None,
    solver: "ConstraintSolver | None" = None,
    topology=None,
) -> np.ndarray:
    """Algorithm 1 (SAMPLE): draw a valid partition guided by ``probs``.

    Parameters
    ----------
    graph:
        Graph to partition.
    probs:
        ``(N, C)`` row-stochastic matrix — the policy output ``P``.
    n_chips:
        Number of chiplets.
    rng:
        Seed or generator for sampling.
    order:
        Node visit order; defaults to a fresh random linear extension.
    solver:
        Reuse an existing (reset) solver; a new one is built by default.
        A reused solver's topology takes precedence over ``topology``.
    topology:
        Platform interconnect for a freshly built solver; ``None`` is the
        legacy uni-ring.

    Returns
    -------
    ``(N,)`` array: a partition satisfying all static constraints.
    """
    rng = as_generator(rng)
    probs = check_probability_matrix(probs, graph.n_nodes, n_chips)
    s = (
        solver
        if solver is not None
        else ConstraintSolver(graph, n_chips, topology=topology)
    )
    if s.n_decisions:
        raise ValueError("solver must be freshly reset")

    for restart in range(_MAX_RESTARTS):
        run_order = (
            _resolve_order(order, graph, rng)
            if restart == 0
            else graph.random_topological_order(rng)
        )
        effective = _guide(graph, probs, n_chips, restart)

        def step(i: int, u: int) -> int:
            domain = s.get_domain(u)
            return s.set_domain(u, _sample_from(domain, effective[u], rng))

        if _run_driver(s, run_order, step, graph.n_nodes):
            return s.assignment()
        s.reset()
    # Terminal fallback: always-valid contiguous partition (see fix_partition).
    return contiguous_partition(graph, n_chips)


def fix_partition(
    graph: CompGraph,
    candidate: np.ndarray,
    n_chips: int,
    rng=None,
    order=None,
    solver: "ConstraintSolver | None" = None,
    topology=None,
) -> np.ndarray:
    """Algorithm 2 (FIX): repair ``candidate`` into a valid partition.

    The first sweep keeps every candidate value that is still in its node's
    valid domain; the second sweep assigns the remaining nodes from their
    domains (uniformly on the first attempt, guided on later restarts).

    Parameters
    ----------
    graph:
        Graph to partition.
    candidate:
        ``(N,)`` proposed assignment ``y`` (possibly invalid).
    n_chips:
        Number of chiplets.
    rng, order, solver, topology:
        As in :func:`sample_partition`.

    Returns
    -------
    ``(N,)`` array: a valid partition agreeing with ``candidate`` wherever
    the constraints allowed it.
    """
    rng = as_generator(rng)
    candidate = np.asarray(candidate, dtype=np.int64)
    if candidate.shape != (graph.n_nodes,):
        raise ValueError(f"candidate must have shape ({graph.n_nodes},)")
    if candidate.size and (candidate.min() < 0 or candidate.max() >= n_chips):
        raise ValueError(f"candidate contains chip ids outside [0, {n_chips})")
    s = (
        solver
        if solver is not None
        else ConstraintSolver(graph, n_chips, topology=topology)
    )
    if s.n_decisions:
        raise ValueError("solver must be freshly reset")

    n = graph.n_nodes
    uniform = np.full((n, n_chips), 1.0 / n_chips)
    for restart in range(_MAX_RESTARTS):
        run_order = (
            _resolve_order(order, graph, rng)
            if restart == 0
            else graph.random_topological_order(rng)
        )
        guided = _guide(graph, uniform, n_chips, restart)
        # A candidate can be individually feasible at every step yet wedge
        # the completion; since phase 1 replays it identically, plain
        # restarts cannot escape.  Restarts therefore *thin* the candidate:
        # guided restarts drop values outside a band of the node's pipeline
        # position (the scattered wedge pattern), and every restart drops a
        # growing random subset so successive attempts genuinely differ.
        keep = np.ones(n, dtype=bool)
        if restart > 0:
            if _guide_concentration(restart) > 0:
                position = graph.compute_position()
                target = np.minimum(
                    (position * n_chips).astype(np.int64), n_chips - 1
                )
                keep &= np.abs(candidate - target) <= 2
            keep &= rng.random(n) < 0.75 ** ((restart + 1) // 2)

        def step(i: int, u: int) -> int:
            domain = s.get_domain(u)
            if i < n:
                if keep[u] and candidate[u] in domain:
                    return s.set_domain(u, int(candidate[u]))
                # Leave the node open; this no-op decision advances i.
                return s.set_domain(u, domain)
            if domain.size == 1:
                return s.set_domain(u, domain)
            return s.set_domain(u, _sample_from(domain, guided[u], rng))

        if _run_driver(s, run_order, step, 2 * n):
            return s.assignment()
        s.reset()
    # Terminal fallback: the constructive contiguous partition is always
    # valid; reaching it means the candidate resisted every repair attempt.
    return contiguous_partition(graph, n_chips)
