"""Chip-dependency graph utilities for the triangle constraint.

The triangle constraint (paper Constraint 3 / Equation 4) is defined on the
graph whose nodes are chips and whose edges are data dependencies between
chips: every *direct* dependency must also be the *longest* path between its
endpoints.  Under the acyclic-dataflow constraint all chip edges point from
lower to higher IDs, so chips are already topologically ordered by ID and
longest paths follow from a single ascending DP sweep.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import CompGraph


def chip_adjacency(graph: CompGraph, assignment: np.ndarray, n_chips: int) -> np.ndarray:
    """``(C, C)`` boolean chip-dependency adjacency implied by ``assignment``.

    Edges out of replicable (constant) nodes are ignored: constants are
    materialised on every chip and never cross the ring.
    """
    adj = np.zeros((n_chips, n_chips), dtype=bool)
    if graph.n_edges == 0:
        return adj
    src_c = assignment[graph.src]
    dst_c = assignment[graph.dst]
    cross = (src_c != dst_c) & ~graph.is_replicable()[graph.src]
    adj[src_c[cross], dst_c[cross]] = True
    return adj


def longest_paths(adj: np.ndarray) -> np.ndarray:
    """Longest path lengths (in edges) between all chip pairs.

    ``adj`` must be a DAG adjacency whose edges go from lower to higher
    index (guaranteed for chip graphs satisfying acyclic dataflow).  Entries
    with no path are ``-1``; the diagonal is ``0``.
    """
    n = adj.shape[0]
    if adj.shape != (n, n):
        raise ValueError("adj must be square")
    if np.any(adj & ~np.triu(np.ones((n, n), dtype=bool), k=1)):
        raise ValueError("chip adjacency must only contain edges low -> high")
    dist = np.full((n, n), -1, dtype=np.int64)
    np.fill_diagonal(dist, 0)
    has_pred = adj.any(axis=0)
    for b in range(n):
        if not has_pred[b]:
            continue
        # Longest path to b via any direct predecessor a: dist[:, a] + 1.
        reachable = adj[:, b][None, :] & (dist >= 0)
        best = np.where(reachable, dist + 1, -1).max(axis=1)
        dist[:, b] = np.maximum(dist[:, b], best)
    return dist


def triangle_violations(adj: np.ndarray) -> np.ndarray:
    """Direct chip edges whose longest path exceeds 1 (the forbidden pattern).

    Returns an ``(K, 2)`` array of violating ``(src_chip, dst_chip)`` pairs.
    """
    dist = longest_paths(adj)
    bad = adj & (dist > 1)
    return np.argwhere(bad)
