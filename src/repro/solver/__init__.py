"""Constraint solver for the multi-chip partitioning problem.

Implements the role CP-SAT plays in the paper: maintain per-node domains of
valid chip IDs, propagate the static constraints (acyclic dataflow, no
skipping chips, chip triangle dependency), and back-track when a decision
leads to a dead end.  The solver is driven one node at a time through
``get_domain`` / ``set_domain`` exactly as in the paper's Algorithms 1 and 2,
exposed as the SAMPLE and FIX strategies.
"""

from repro.solver.chipgraph import chip_adjacency, longest_paths
from repro.solver.constraints import (
    ConstraintReport,
    check_acyclic_dataflow,
    check_no_skipping,
    check_reachable_dataflow,
    check_triangle_dependency,
    validate_partition,
)
from repro.solver.engine import ConstraintSolver, Unsatisfiable
from repro.solver.enumerate import count_valid_partitions, enumerate_valid_partitions
from repro.solver.fallback import contiguous_partition
from repro.solver.strategies import fix_partition, sample_partition

__all__ = [
    "ConstraintSolver",
    "contiguous_partition",
    "enumerate_valid_partitions",
    "count_valid_partitions",
    "Unsatisfiable",
    "sample_partition",
    "fix_partition",
    "validate_partition",
    "ConstraintReport",
    "check_acyclic_dataflow",
    "check_reachable_dataflow",
    "check_no_skipping",
    "check_triangle_dependency",
    "chip_adjacency",
    "longest_paths",
]
