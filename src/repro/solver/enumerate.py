"""Exhaustive enumeration of valid partitions (small instances only).

Used to cross-validate the constraint solver: the set of partitions the
solver can emit must coincide with the brute-force valid set, and counting
valid partitions quantifies just how sparse the space is (the paper's core
motivation).
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.graphs.graph import CompGraph
from repro.solver.constraints import validate_partition

#: refuse brute force beyond this many candidate assignments
_MAX_CANDIDATES = 2_000_000


def enumerate_valid_partitions(
    graph: CompGraph, n_chips: int, limit: "int | None" = None, topology=None
) -> list[np.ndarray]:
    """All assignments satisfying the static constraints, by brute force.

    Parameters
    ----------
    graph:
        Graph to partition (must be small: ``n_chips ** n_nodes`` candidate
        assignments are enumerated).
    n_chips:
        Number of chiplets.
    limit:
        Stop after this many valid partitions (``None`` = all).
    topology:
        Platform interconnect; ``None`` is the legacy uni-ring semantics.
    """
    n = graph.n_nodes
    total = n_chips**n
    if total > _MAX_CANDIDATES:
        raise ValueError(
            f"{n_chips}**{n} = {total} candidates exceeds the brute-force "
            f"budget of {_MAX_CANDIDATES}"
        )
    out: list[np.ndarray] = []
    for values in product(range(n_chips), repeat=n):
        assignment = np.array(values, dtype=np.int64)
        if validate_partition(graph, assignment, n_chips, topology=topology).ok:
            out.append(assignment)
            if limit is not None and len(out) >= limit:
                break
    return out


def count_valid_partitions(
    graph: CompGraph, n_chips: int, topology=None
) -> tuple[int, int]:
    """``(n_valid, n_total)`` assignment counts — the sparsity the paper
    describes ("valid solutions are extremely sparse")."""
    valid = enumerate_valid_partitions(graph, n_chips, topology=topology)
    return len(valid), n_chips**graph.n_nodes
