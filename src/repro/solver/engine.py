"""Propagation-based constraint solver with the paper's driver interface.

The solver maintains a *domain* (set of still-valid chip IDs) for every node
and exposes exactly the interface of the paper's Algorithms 1 and 2:

* ``get_domain(u)`` — query the current valid domain of node ``u``.
* ``set_domain(u, values)`` — restrict ``u``'s domain, run constraint
  propagation, and return the new decision count; on a dead end the solver
  back-tracks (undoing decisions and excluding the offending values) and
  returns a *smaller* count, telling the driver to resume from that node.

Propagation covers the three static constraints:

* **Acyclic dataflow** (Eq. 2) is a conjunction of ``f(u) <= f(v)``
  constraints, for which bounds propagation over the DAG is exact: the
  lower bound of a node flows to its successors and the upper bound to its
  predecessors.
* **No skipping chips** (Eq. 3) is tracked through per-chip coverage (which
  nodes could still land on chip ``d``); a chip below the largest forced
  lower bound with zero coverage is a dead end, and on a complete
  assignment the check is exact.
* **Triangle dependency** (Eq. 4) is tracked through an incrementally
  maintained chip-dependency edge multiset; since edges are only added as
  nodes become fixed, any longest-path violation among current edges is
  permanent and triggers an immediate back-track.

Internally the domain state is stored *chip-major*: one node-set bitmask
(an arbitrary-precision int, one bit per node) per chip, rather than one
chip-mask per node.  Bounds propagation then runs word-parallel — a lower
bound raised on node ``u`` excludes every descendant (a precomputed bitmask)
from the low chips in a handful of integer ops instead of an explicit
BFS wave — and back-tracking restores O(chips) snapshots instead of walking
per-node undo trails.  The node-major view (``_masks``, ``_cover``) is
derived on demand.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.graphs.graph import CompGraph
from repro.solver.chipgraph import longest_paths


class Unsatisfiable(RuntimeError):
    """Raised when no valid partition exists under the accumulated exclusions."""


#: Per-byte bitmask -> set-bit-indices lookup, the building block for
#: ``get_domain``'s mask -> array conversion.  The arrays are write-protected
#: because single-byte masks return them without copying.
_BYTE_BITS: list = []
for _byte in range(256):
    _arr = np.array([_i for _i in range(8) if _byte >> _i & 1], dtype=np.int64)
    _arr.setflags(write=False)
    _BYTE_BITS.append(_arr)
del _byte, _arr


def _mask_to_values(mask: int) -> np.ndarray:
    """Set-bit indices of ``mask`` (ascending), via the per-byte table.

    Single-byte masks (every platform up to 8 chiplets) resolve to a shared
    read-only array with no allocation at all.
    """
    if mask < 256:
        return _BYTE_BITS[mask]
    parts = []
    base = 0
    while mask:
        byte = mask & 0xFF
        if byte:
            parts.append(_BYTE_BITS[byte] + base)
        mask >>= 8
        base += 8
    return parts[0] if len(parts) == 1 else np.concatenate(parts)


class _Conflict(Exception):
    """Internal signal: the current restriction emptied a domain or broke Eq. 3/4."""


class ConstraintSolver:
    """Interactive constraint solver over chip-assignment domains.

    Parameters
    ----------
    graph:
        The computation graph being partitioned.
    n_chips:
        Number of chiplets (at most 63 so a domain fits in one bitmask).
    triangle_frontier:
        Eager re-propagation of the one-hop triangle masks (see
        :meth:`_propagate`).  ``None`` (default) keeps the heuristic —
        enabled only for tight chip counts (``n_chips <= 4``); pass
        ``True``/``False`` to force it either way, e.g. to enable the
        strengthening on wedge-heavy instances above 4 chips.
    topology:
        Interconnect the partition must be routable on
        (:class:`repro.hardware.topology.Topology`).  ``None`` or any
        total-order topology (the uni-ring) keeps the exact legacy engine:
        Eq. 2 bounds propagation, the no-skipping coverage check, and the
        triangle constraint (Eq. 4).  Other topologies run the
        reachability-generalised propagation instead
        (:meth:`_propagate_general`): every precedence restriction is
        derived from the topology's chip-reachability matrix, and the
        triangle constraint — a uni-ring compiler artifact — does not
        apply.  The bounds propagation *is* the reachability propagation
        specialised to the total order (``reach_from(c) = {c..C-1}``,
        ``reach_to(c) = {0..c}``), which is why the uni-ring reduces
        bit-for-bit to the legacy code path.
    """

    def __init__(
        self,
        graph: CompGraph,
        n_chips: int,
        triangle_frontier: "bool | None" = None,
        topology=None,
    ):
        if n_chips < 1 or n_chips > 63:
            raise ValueError("n_chips must be in [1, 63]")
        if topology is not None and topology.n_chips != n_chips:
            raise ValueError(
                f"topology is for {topology.n_chips} chips, solver got {n_chips}"
            )
        self.graph = graph
        self.n_chips = n_chips
        self.topology = topology
        #: Reachability-generalised mode: active for any topology whose
        #: reachability is not the chip-ID total order.  Total-order
        #: topologies (the uni-ring) take the legacy engine unchanged.
        self._general = topology is not None and not topology.is_total_order
        if self._general:
            # Per-chip reachability sets, as chip-index lists: which chips
            # can reach ``d`` / are reachable from ``d`` (both include
            # ``d``).  These generalise the ordered engine's prefix/suffix
            # unions.
            reach = topology.reachable
            self._reach_to_list = [
                np.flatnonzero(reach[:, d]).tolist() for d in range(n_chips)
            ]
            self._reach_from_list = [
                np.flatnonzero(reach[d]).tolist() for d in range(n_chips)
            ]
        #: Re-apply the one-hop triangle masks of every fixed node whenever
        #: new chip edges tighten the tables (see :meth:`_propagate`).  The
        #: strengthening is sound and catches triangle wedges hundreds of
        #: driver steps early where the chip-dependency graph has no slack
        #: (measured 2.7-17x on 4-chip instances), but on permissive
        #: higher-chip-count instances the extra pruning rounds and the
        #: trajectory shifts they cause cost more than the wedges they
        #: avoid — so the heuristic default enables it only for tight chip
        #: counts.  Public knob; override freely (constructor argument or
        #: attribute).
        self.triangle_frontier = (
            n_chips <= 4 if triangle_frontier is None else bool(triangle_frontier)
        )
        n = graph.n_nodes

        replicable = graph.is_replicable()
        # Constraint-relevant adjacency: edges out of replicable constants
        # are exempt from all placement constraints.
        self._succs: list[list[int]] = [[] for _ in range(n)]
        self._preds: list[list[int]] = [[] for _ in range(n)]
        for s, d in zip(graph.src.tolist(), graph.dst.tolist()):
            if replicable[s]:
                continue
            self._succs[s].append(d)
            self._preds[d].append(s)

        # Node-set bitmasks for word-parallel propagation: direct neighbour
        # sets plus transitive descendant/ancestor closures over the
        # constraint edges.
        self._full = (1 << n) - 1 if n else 0
        self._succ_bits = [0] * n
        self._pred_bits = [0] * n
        for u in range(n):
            sb = 0
            for w in self._succs[u]:
                sb |= 1 << w
            self._succ_bits[u] = sb
            pb = 0
            for w in self._preds[u]:
                pb |= 1 << w
            self._pred_bits[u] = pb
        order = graph.topological_order().tolist()
        self._desc = [0] * n
        for u in reversed(order):
            acc = 0
            for w in self._succs[u]:
                acc |= (1 << w) | self._desc[w]
            self._desc[u] = acc
        self._anc = [0] * n
        for v in order:
            acc = 0
            for u in self._preds[v]:
                acc |= (1 << u) | self._anc[u]
            self._anc[v] = acc

        self.reset()

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Discard all decisions and exclusions; restore full domains."""
        n = self.graph.n_nodes
        self._avail: list[int] = [self._full] * self.n_chips
        # With a single chip every domain starts single-valued (fixed); no
        # propagation wave will ever run to discover that.
        self._fixed_set = self._full if self.n_chips == 1 else 0
        # Chip values of fixed nodes.  Not snapshotted: every read is
        # guarded by ``_fixed_set`` (which is), so entries left stale by a
        # rewind are unreachable until the node is fixed again, which
        # rewrites them.
        self._values: list[int] = [0] * n
        # Per-chip unions of the fixed nodes' neighbour sets.  When a new
        # chip edge tightens the triangle tables these let the wave re-apply
        # the one-hop masks to *every* fixed node in O(chips^2) mask ops,
        # catching wedges the moment the edge appears instead of hundreds
        # of driver steps later.
        self._succ_frontier: list[int] = [0] * self.n_chips
        self._pred_frontier: list[int] = [0] * self.n_chips
        self._max_lo = 0
        self._edge_count = np.zeros((self.n_chips, self.n_chips), dtype=np.int64)
        self._adj_mask = 0  # bit a*C+b set iff _edge_count[a, b] > 0
        # Per-branch closure memory: nodes whose descendant (ancestor)
        # exclusions at each chip level were already applied.  Monotone with
        # the domains, so snapshots restore it consistently.
        self._done_lo: list[int] = [0] * self.n_chips
        self._done_hi: list[int] = [0] * self.n_chips
        self._decisions: list[tuple] = []  # (node, tried_mask, snapshot)
        self._new_edges = False
        # Triangle tables memoised by the adjacency bitmask: back-tracking
        # revisits the same chip graphs constantly, so keying the cache by
        # the adjacency itself (not a version counter) gives high hit rates.
        if not hasattr(self, "_tables_memo"):
            self._tables_memo: dict[int, dict] = {}
        self._tables_entry: "dict | None" = None
        self._tables_dirty = True

    def _snapshot(self) -> tuple:
        """O(chips) copy of all branch state (masks are immutable ints)."""
        return (
            list(self._avail),
            self._fixed_set,
            self._max_lo,
            self._edge_count.copy(),
            self._adj_mask,
            list(self._done_lo),
            list(self._done_hi),
            list(self._succ_frontier),
            list(self._pred_frontier),
        )

    def _restore(self, snap: tuple) -> None:
        """Rewind to a snapshot taken by :meth:`_snapshot`."""
        (
            self._avail,
            self._fixed_set,
            self._max_lo,
            self._edge_count,
            self._adj_mask,
            self._done_lo,
            self._done_hi,
            self._succ_frontier,
            self._pred_frontier,
        ) = (
            list(snap[0]),
            snap[1],
            snap[2],
            snap[3].copy(),
            snap[4],
            list(snap[5]),
            list(snap[6]),
            list(snap[7]),
            list(snap[8]),
        )
        self._new_edges = False
        self._tables_dirty = True

    # ------------------------------------------------------------------
    # Node-major views (queries, diagnostics, and white-box tests)
    # ------------------------------------------------------------------
    def _domain_mask(self, node: int) -> int:
        """Chip-bitmask view of one node's domain."""
        mask = 0
        for d in range(self.n_chips):
            if self._avail[d] >> node & 1:
                mask |= 1 << d
        return mask

    @property
    def _masks(self) -> list[int]:
        """Per-node chip-bitmask domains (derived view)."""
        return [self._domain_mask(u) for u in range(self.graph.n_nodes)]

    @property
    def _cover(self) -> list[int]:
        """Per-chip count of nodes that could still land there."""
        return [self._avail[d].bit_count() for d in range(self.n_chips)]

    @property
    def n_decisions(self) -> int:
        """Number of committed decisions (the paper's loop index ``i``)."""
        return len(self._decisions)

    def is_fixed(self, node: int) -> bool:
        """True when the node's domain is a single chip."""
        return bool(self._fixed_set >> node & 1)

    def _fixed_value(self, node: int) -> int:
        """The chip a fixed node sits on (valid only while it is fixed)."""
        return self._values[node]

    def get_domain(self, node: int) -> np.ndarray:
        """Valid chip IDs currently available for ``node`` (ascending).

        On top of the propagated domain this applies *triangle look-ahead*:
        values whose implied chip-dependency edge (with an already-fixed
        neighbour) would immediately violate Equation 4 are filtered out.
        The look-ahead is sound within the current search branch — chip
        edges only accumulate, so a value invalid now stays invalid — and
        it is what lets the solver handle production-size graphs without
        CP-SAT-style clause learning.
        """
        mask = self._domain_mask(node)
        if mask & (mask - 1) == 0:
            return _mask_to_values(mask)
        if self._general:
            # The reachability propagation already restricts neighbours of
            # fixed nodes through their full domains (stronger than the
            # one-hop look-ahead), and Eq. 4 does not apply off the ring.
            return _mask_to_values(mask)
        pruned = self._triangle_prune(node, mask)
        # Never return an empty domain from look-ahead alone; let
        # set_domain discover the conflict and back-track properly.
        return _mask_to_values(pruned if pruned else mask)

    def _triangle_prune(self, node: int, mask: int) -> int:
        """Intersect ``mask`` with chip edges implied by fixed neighbours.

        ``_successor_mask(a)`` is exactly ``{a} | {d : allowed[a, d]}``, so
        ANDing the masks of every fixed neighbour reproduces the per-value
        filter in pure bit arithmetic.
        """
        fixed = self._fixed_set
        values = self._values
        keep = -1
        bit = self._pred_bits[node] & fixed
        while bit:
            b = bit & -bit
            keep &= self._successor_mask(values[b.bit_length() - 1])
            bit ^= b
        bit = self._succ_bits[node] & fixed
        while bit:
            b = bit & -bit
            keep &= self._predecessor_mask(values[b.bit_length() - 1])
            bit ^= b
        return mask if keep == -1 else mask & keep

    def assignment(self) -> np.ndarray:
        """The complete assignment; raises if any node is still unfixed."""
        n = self.graph.n_nodes
        if self._fixed_set != self._full:
            unfixed = (~self._fixed_set & self._full)
            u = (unfixed & -unfixed).bit_length() - 1
            raise RuntimeError(f"node {u} is not fixed; solve to completion first")
        out = np.empty(n, dtype=np.int64)
        for d in range(self.n_chips):
            m = self._avail[d]
            while m:
                b = m & -m
                out[b.bit_length() - 1] = d
                m ^= b
        return out

    # ------------------------------------------------------------------
    # Triangle tables (memoised per chip adjacency)
    # ------------------------------------------------------------------
    def _tables(self) -> dict:
        """Triangle tables for the current chip adjacency (memoised).

        Each entry holds the longest-path matrix, the addable-edge matrix,
        whether the adjacency itself violates Eq. 4, and lazily filled
        per-chip domain bitmasks.
        """
        if not self._tables_dirty and self._tables_entry is not None:
            return self._tables_entry
        key = self._adj_mask
        entry = self._tables_memo.get(key)
        if entry is None:
            adj = self._edge_count > 0
            dist = longest_paths(adj)
            reach = dist >= 0
            # A new direct edge (x, y) is addable iff no existing path
            # x -> y of length >= 2, and no existing direct edge (a, b)
            # such that a reaches x and y reaches b (which would stretch
            # a-b's longest path past 1).
            bad = (
                reach.T.astype(np.int64)
                @ adj.astype(np.int64)
                @ reach.T.astype(np.int64)
            ) > 0
            allowed = ~bad & (dist < 2)
            allowed |= adj  # existing edges remain usable
            entry = {
                "allowed": allowed,
                "violated": bool(np.any(adj & (dist > 1))),
                "from_mask": {},
                "to_mask": {},
            }
            if len(self._tables_memo) >= 4096:
                self._tables_memo.clear()
            self._tables_memo[key] = entry
        self._tables_entry = entry
        self._tables_dirty = False
        return entry

    def _rebuild_adj_mask(self) -> None:
        """Recompute ``_adj_mask`` from ``_edge_count`` (test hook support)."""
        mask = 0
        c = self.n_chips
        for a, b in zip(*np.nonzero(self._edge_count)):
            mask |= 1 << (int(a) * c + int(b))
        self._adj_mask = mask

    def _edge_allowed_from(self, a: int) -> np.ndarray:
        """Boolean row: which destination chips accept a new edge from ``a``."""
        return self._tables()["allowed"][a]

    def _edge_allowed_to(self, b: int) -> np.ndarray:
        """Boolean column: which source chips accept a new edge into ``b``."""
        return self._tables()["allowed"][:, b]

    def _successor_mask(self, c: int) -> int:
        """Bitmask of values a successor of a node fixed at ``c`` may take."""
        entry = self._tables_entry
        if entry is None or self._tables_dirty:
            entry = self._tables()
        cached = entry["from_mask"].get(c)
        if cached is None:
            cached = 1 << c
            for d in np.flatnonzero(entry["allowed"][c]):
                cached |= 1 << int(d)
            entry["from_mask"][c] = cached
        return cached

    def _predecessor_mask(self, c: int) -> int:
        """Bitmask of values a predecessor of a node fixed at ``c`` may take."""
        entry = self._tables_entry
        if entry is None or self._tables_dirty:
            entry = self._tables()
        cached = entry["to_mask"].get(c)
        if cached is None:
            cached = 1 << c
            for d in np.flatnonzero(entry["allowed"][:, c]):
                cached |= 1 << int(d)
            entry["to_mask"][c] = cached
        return cached

    # ------------------------------------------------------------------
    # The paper's driver interface
    # ------------------------------------------------------------------
    def set_domain(self, node: int, values: "int | Iterable[int]") -> int:
        """Restrict ``node`` to ``values``, propagate, and return decision count.

        On success the restriction is committed as a new decision and
        ``n_decisions`` (== previous + 1) is returned.  On conflict the
        solver back-tracks — undoing the attempt, excluding the offending
        values at the surviving level, and popping decisions as needed —
        and returns the new (smaller) decision count.
        """
        mask_req = self._to_mask(values)
        snap = self._snapshot()
        try:
            self._apply(node, mask_req)
        except _Conflict:
            self._restore(snap)
            return self._resolve_conflict(node, mask_req)
        self._decisions.append((node, mask_req, snap))
        return len(self._decisions)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _to_mask(self, values: "int | Iterable[int]") -> int:
        if isinstance(values, (int, np.integer)):
            v = int(values)
            if not (0 <= v < self.n_chips):
                raise ValueError(f"chip id {v} out of range [0, {self.n_chips})")
            return 1 << v
        mask = 0
        for v in values:
            if not (0 <= v < self.n_chips):
                raise ValueError(f"chip id {v} out of range [0, {self.n_chips})")
            mask |= 1 << int(v)
        if mask == 0:
            raise ValueError("values must be non-empty")
        return mask

    def _apply(self, node: int, mask_req: int) -> None:
        """Restrict one node's chip mask and propagate to fixpoint."""
        cur = self._domain_mask(node)
        new = cur & mask_req
        if new == 0:
            raise _Conflict
        if new == cur:
            # No-op restriction (e.g. committing a value propagation already
            # fixed): the state is at fixpoint and passed every check when
            # it was produced, so there is nothing to propagate or re-check.
            return
        bit = 1 << node
        avail = self._avail
        removed = cur ^ new
        while removed:
            d_bit = removed & -removed
            avail[d_bit.bit_length() - 1] &= ~bit
            removed ^= d_bit
        if self._general:
            self._propagate_general()
        else:
            self._propagate()

    def _propagate(self) -> None:
        """Word-parallel propagation to fixpoint, then the global checks.

        Each round applies (1) the transitive lower-bound closure — nodes
        whose lower bound exceeds ``d`` drag all their descendants off
        chips ``<= d`` via the precomputed descendant bitmasks, (2) the
        symmetric upper-bound closure over ancestors, and (3) triangle
        restrictions and chip-edge bookkeeping for newly fixed nodes.
        Rounds repeat until nothing changes; conflicts (an emptied domain,
        an uncoverable chip, a violated triangle) raise :class:`_Conflict`
        and the caller rewinds via snapshot.
        """
        avail = self._avail
        full = self._full
        c = self.n_chips
        desc = self._desc
        anc = self._anc
        done_lo = self._done_lo
        done_hi = self._done_hi
        # The state entering the wave already satisfies the triangle masks
        # of the current adjacency; re-application is only needed when the
        # adjacency changes mid-wave, and one pass per wave bounds its cost
        # on edge-churny instances.
        applied_adj = self._adj_mask
        reapplied = False
        while True:
            changed = False

            # Lower bounds flow to descendants (Eq. 2, src side).
            acc = 0
            for d in range(c - 1):
                acc |= avail[d]
                new = full & ~acc & ~done_lo[d]  # newly known lo > d
                if new:
                    rem = 0
                    m = new
                    while m:
                        b = m & -m
                        rem |= desc[b.bit_length() - 1]
                        m ^= b
                    done_lo[d] |= new | rem
                    if rem:
                        for d2 in range(d + 1):
                            old = avail[d2]
                            if old & rem:
                                avail[d2] = old & ~rem
                                changed = True

            # Upper bounds flow to ancestors (Eq. 2, dst side).
            acc = 0
            for d in range(c - 1, 0, -1):
                acc |= avail[d]
                new = full & ~acc & ~done_hi[d]  # newly known hi < d
                if new:
                    rem = 0
                    m = new
                    while m:
                        b = m & -m
                        rem |= anc[b.bit_length() - 1]
                        m ^= b
                    done_hi[d] |= new | rem
                    if rem:
                        for d2 in range(d, c):
                            old = avail[d2]
                            if old & rem:
                                avail[d2] = old & ~rem
                                changed = True

            # An emptied domain conflicts; check before the (costlier)
            # fixed-node processing so doomed waves abort early.
            ge1 = 0
            ge2 = 0
            for d in range(c):
                a = avail[d]
                ge2 |= ge1 & a
                ge1 |= a
            if ge1 != full:
                raise _Conflict

            # Newly fixed nodes: record chip edges (second endpoint to fix
            # adds the edge, preserving multiset semantics) and apply the
            # one-hop triangle masks to direct neighbours.
            new_fixed = ge1 & ~ge2 & ~self._fixed_set
            if new_fixed:
                values = self._values
                for d in range(c):
                    hit = new_fixed & avail[d]
                    while hit:
                        b = hit & -hit
                        values[b.bit_length() - 1] = d
                        hit ^= b
                nf = new_fixed
                while nf:
                    b = nf & -nf
                    nf ^= b
                    u = b.bit_length() - 1
                    self._fixed_set |= b
                    value = values[u]
                    fixed = self._fixed_set
                    for w in self._succs[u]:
                        if fixed >> w & 1:
                            other = values[w]
                            if other != value:
                                self._add_chip_edge(value, other)
                    for w in self._preds[u]:
                        if fixed >> w & 1:
                            other = values[w]
                            if other != value:
                                self._add_chip_edge(other, value)
                    sb = self._succ_bits[u]
                    if sb:
                        self._succ_frontier[value] |= sb
                        sm = self._successor_mask(value)
                        for d in range(c):
                            if not (sm >> d & 1):
                                old = avail[d]
                                if old & sb:
                                    avail[d] = old & ~sb
                                    changed = True
                    pb = self._pred_bits[u]
                    if pb:
                        self._pred_frontier[value] |= pb
                        pm = self._predecessor_mask(value)
                        for d in range(c):
                            if not (pm >> d & 1):
                                old = avail[d]
                                if old & pb:
                                    avail[d] = old & ~pb
                                    changed = True

            if not changed:
                # At fixpoint, re-apply the one-hop triangle masks of *all*
                # fixed nodes if new chip edges tightened the tables during
                # this wave: the per-chip neighbour frontiers do it in
                # O(chips^2) mask ops, catching wedges the moment the edge
                # appears instead of hundreds of driver steps later.  Doing
                # this once per fixpoint (not per adjacency change) keeps
                # the strengthening essentially free on easy instances.
                if (
                    self.triangle_frontier
                    and not reapplied
                    and self._adj_mask != applied_adj
                ):
                    reapplied = True
                    applied_adj = self._adj_mask
                    for ch in range(c):
                        fr = self._succ_frontier[ch]
                        if fr:
                            sm = self._successor_mask(ch)
                            for d in range(c):
                                if not (sm >> d & 1):
                                    old = avail[d]
                                    if old & fr:
                                        avail[d] = old & ~fr
                                        changed = True
                        fr = self._pred_frontier[ch]
                        if fr:
                            pm = self._predecessor_mask(ch)
                            for d in range(c):
                                if not (pm >> d & 1):
                                    old = avail[d]
                                    if old & fr:
                                        avail[d] = old & ~fr
                                        changed = True
                if not changed:
                    break

        # No-skipping: every chip below the largest forced lower bound must
        # still be coverable by some node.
        acc = 0
        max_lo = 0
        for d in range(c - 1):
            acc |= avail[d]
            if full & ~acc:
                max_lo = d + 1
        self._max_lo = max_lo
        for d in range(max_lo):
            if avail[d] == 0:
                raise _Conflict

        # Triangle dependency among currently fixed cross-chip edges.
        if self._new_edges:
            self._new_edges = False
            if self._tables()["violated"]:
                raise _Conflict

    def _propagate_general(self) -> None:
        """Reachability propagation for non-total-order topologies.

        The ordered engine's bounds propagation is the special case of this
        wave for ``reach_to(d) = {0..d}`` / ``reach_from(d) = {d..C-1}``:
        a node whose domain contains no chip that can reach ``d`` drags all
        its (transitive) descendants off chip ``d``, and symmetrically a
        node whose domain contains no chip reachable *from* ``d`` drags its
        ancestors off ``d``.  Soundness follows from the transitivity of
        reachability (any valid completion routes every ancestor/descendant
        pair).  The per-chip ``done`` sets memoise processed nodes exactly
        as in the ordered engine — blocked status is monotone as domains
        shrink, so snapshots restore them consistently.

        The triangle constraint (Eq. 4) is not enforced here: it is a
        compiler restriction of the paper's uni-directional ring, meaningless
        once the chip-dependency graph may legally contain cycles.  The
        no-skipping rule (Eq. 3) is a chip-*allocation* rule, independent of
        the interconnect, and is checked the same way as in the ordered
        engine.
        """
        avail = self._avail
        full = self._full
        c = self.n_chips
        desc = self._desc
        anc = self._anc
        done_lo = self._done_lo
        done_hi = self._done_hi
        reach_to = self._reach_to_list
        reach_from = self._reach_from_list
        while True:
            changed = False
            for d in range(c):
                # Nodes that cannot sit on any chip reaching ``d`` exclude
                # their descendants from ``d`` (generalised lower bound).
                acc = 0
                for x in reach_to[d]:
                    acc |= avail[x]
                blocked = full & ~acc & ~done_lo[d]
                if blocked:
                    rem = 0
                    m = blocked
                    while m:
                        b = m & -m
                        rem |= desc[b.bit_length() - 1]
                        m ^= b
                    done_lo[d] |= blocked | rem
                    if avail[d] & rem:
                        avail[d] &= ~rem
                        changed = True
                # Nodes that cannot sit on any chip reachable from ``d``
                # exclude their ancestors from ``d`` (generalised upper
                # bound).
                acc = 0
                for x in reach_from[d]:
                    acc |= avail[x]
                blocked = full & ~acc & ~done_hi[d]
                if blocked:
                    rem = 0
                    m = blocked
                    while m:
                        b = m & -m
                        rem |= anc[b.bit_length() - 1]
                        m ^= b
                    done_hi[d] |= blocked | rem
                    if avail[d] & rem:
                        avail[d] &= ~rem
                        changed = True

            ge1 = 0
            ge2 = 0
            for d in range(c):
                a = avail[d]
                ge2 |= ge1 & a
                ge1 |= a
            if ge1 != full:
                raise _Conflict
            if not changed:
                break

        # Fixed-node bookkeeping (``assignment()`` / ``is_fixed`` views);
        # no chip-edge or triangle tracking in this mode.
        new_fixed = ge1 & ~ge2 & ~self._fixed_set
        if new_fixed:
            values = self._values
            for d in range(c):
                hit = new_fixed & avail[d]
                while hit:
                    b = hit & -hit
                    values[b.bit_length() - 1] = d
                    hit ^= b
            self._fixed_set |= new_fixed

        # No-skipping (Eq. 3): every chip below the largest forced lower
        # bound must still be coverable by some node.
        acc = 0
        max_lo = 0
        for d in range(c - 1):
            acc |= avail[d]
            if full & ~acc:
                max_lo = d + 1
        self._max_lo = max_lo
        for d in range(max_lo):
            if avail[d] == 0:
                raise _Conflict

    def _add_chip_edge(self, a: int, b: int) -> None:
        if b < a:
            # Bounds propagation makes this unreachable, but guard anyway.
            raise _Conflict
        self._edge_count[a, b] += 1
        if self._edge_count[a, b] == 1:
            self._adj_mask |= 1 << (a * self.n_chips + b)
            self._new_edges = True
            self._tables_dirty = True

    def _resolve_conflict(self, node: int, tried_mask: int) -> int:
        """Back-track: exclude ``tried_mask`` from ``node`` and pop as needed."""
        while True:
            excl = self._domain_mask(node) & ~tried_mask
            if excl:
                snap = self._snapshot()
                try:
                    self._apply(node, excl)
                except _Conflict:
                    self._restore(snap)
                else:
                    # The exclusion is folded into the surviving level's
                    # state; popping that level's snapshot rewinds past it.
                    return len(self._decisions)
            if not self._decisions:
                raise Unsatisfiable(
                    "no valid partition under the accumulated exclusions"
                )
            node, tried_mask, snap = self._decisions.pop()
            self._restore(snap)
