"""Propagation-based constraint solver with the paper's driver interface.

The solver maintains a *domain* (set of still-valid chip IDs, stored as a
bitmask) for every node and exposes exactly the interface of the paper's
Algorithms 1 and 2:

* ``get_domain(u)`` — query the current valid domain of node ``u``.
* ``set_domain(u, values)`` — restrict ``u``'s domain, run constraint
  propagation, and return the new decision count; on a dead end the solver
  back-tracks (undoing decisions and excluding the offending values) and
  returns a *smaller* count, telling the driver to resume from that node.

Propagation covers the three static constraints:

* **Acyclic dataflow** (Eq. 2) is a conjunction of ``f(u) <= f(v)``
  constraints, for which bounds propagation over the DAG is exact: the
  lower bound of a node flows to its successors and the upper bound to its
  predecessors.
* **No skipping chips** (Eq. 3) is tracked through per-chip coverage counts
  (how many nodes could still land on chip ``d``); a chip below the largest
  forced lower bound with zero coverage is a dead end, and on a complete
  assignment the check is exact.
* **Triangle dependency** (Eq. 4) is tracked through an incrementally
  maintained chip-dependency edge multiset; since edges are only added as
  nodes become fixed, any longest-path violation among current edges is
  permanent and triggers an immediate back-track.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import numpy as np

from repro.graphs.graph import CompGraph
from repro.solver.chipgraph import longest_paths


class Unsatisfiable(RuntimeError):
    """Raised when no valid partition exists under the accumulated exclusions."""


class _Conflict(Exception):
    """Internal signal: the current restriction emptied a domain or broke Eq. 3/4."""


class ConstraintSolver:
    """Interactive constraint solver over chip-assignment domains.

    Parameters
    ----------
    graph:
        The computation graph being partitioned.
    n_chips:
        Number of chiplets (at most 63 so a domain fits in one bitmask).
    """

    def __init__(self, graph: CompGraph, n_chips: int):
        if n_chips < 1 or n_chips > 63:
            raise ValueError("n_chips must be in [1, 63]")
        self.graph = graph
        self.n_chips = n_chips
        n = graph.n_nodes

        replicable = graph.is_replicable()
        # Constraint-relevant adjacency: edges out of replicable constants
        # are exempt from all placement constraints.
        self._succs: list[list[int]] = [[] for _ in range(n)]
        self._preds: list[list[int]] = [[] for _ in range(n)]
        for s, d in zip(graph.src.tolist(), graph.dst.tolist()):
            if replicable[s]:
                continue
            self._succs[s].append(d)
            self._preds[d].append(s)

        self.reset()

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Discard all decisions and exclusions; restore full domains."""
        full = (1 << self.n_chips) - 1
        self._masks: list[int] = [full] * self.graph.n_nodes
        self._cover = [self.graph.n_nodes] * self.n_chips
        self._max_lo = 0
        self._edge_count = np.zeros((self.n_chips, self.n_chips), dtype=np.int64)
        self._decisions: list[tuple[int, int, list]] = []  # (node, chosen_mask, trail)
        self._root_trail: list = []
        self._queue: deque = deque()
        self._new_edges = False
        # Triangle tables memoised by packed adjacency: back-tracking
        # revisits the same chip graphs constantly, so keying the cache by
        # the adjacency itself (not a version counter) gives high hit rates.
        if not hasattr(self, "_tables_memo"):
            self._tables_memo: dict[bytes, dict] = {}
        self._tables_entry: "dict | None" = None
        self._tables_dirty = True

    @property
    def n_decisions(self) -> int:
        """Number of committed decisions (the paper's loop index ``i``)."""
        return len(self._decisions)

    def is_fixed(self, node: int) -> bool:
        """True when the node's domain is a single chip."""
        return self._masks[node].bit_count() == 1

    def get_domain(self, node: int) -> np.ndarray:
        """Valid chip IDs currently available for ``node`` (ascending).

        On top of the propagated domain this applies *triangle look-ahead*:
        values whose implied chip-dependency edge (with an already-fixed
        neighbour) would immediately violate Equation 4 are filtered out.
        The look-ahead is sound within the current search branch — chip
        edges only accumulate, so a value invalid now stays invalid — and
        it is what lets the solver handle production-size graphs without
        CP-SAT-style clause learning.
        """
        mask = self._masks[node]
        values = np.array(
            [d for d in range(self.n_chips) if mask >> d & 1], dtype=np.int64
        )
        if values.size <= 1:
            return values
        pruned = self._triangle_prune(node, values)
        # Never return an empty domain from look-ahead alone; let
        # set_domain discover the conflict and back-track properly.
        return pruned if pruned.size else values

    def _triangle_prune(self, node: int, values: np.ndarray) -> np.ndarray:
        """Filter ``values`` against chip edges implied by fixed neighbours."""
        keep = np.ones(values.size, dtype=bool)
        checked_any = False
        for w in self._preds[node]:
            m = self._masks[w]
            if m.bit_count() == 1:
                a = m.bit_length() - 1
                allowed = self._edge_allowed_from(a)
                keep &= (values == a) | allowed[values]
                checked_any = True
        for w in self._succs[node]:
            m = self._masks[w]
            if m.bit_count() == 1:
                b = m.bit_length() - 1
                allowed = self._edge_allowed_to(b)
                keep &= (values == b) | allowed[values]
                checked_any = True
        if not checked_any:
            return values
        return values[keep]

    def _tables(self) -> dict:
        """Triangle tables for the current chip adjacency (memoised).

        Each entry holds the longest-path matrix, the addable-edge matrix,
        whether the adjacency itself violates Eq. 4, and lazily filled
        per-chip domain bitmasks.
        """
        if not self._tables_dirty and self._tables_entry is not None:
            return self._tables_entry
        adj = self._edge_count > 0
        key = np.packbits(adj).tobytes()
        entry = self._tables_memo.get(key)
        if entry is None:
            dist = longest_paths(adj)
            reach = dist >= 0
            # A new direct edge (x, y) is addable iff no existing path
            # x -> y of length >= 2, and no existing direct edge (a, b)
            # such that a reaches x and y reaches b (which would stretch
            # a-b's longest path past 1).
            bad = (
                reach.T.astype(np.int64)
                @ adj.astype(np.int64)
                @ reach.T.astype(np.int64)
            ) > 0
            allowed = ~bad & (dist < 2)
            allowed |= adj  # existing edges remain usable
            entry = {
                "allowed": allowed,
                "violated": bool(np.any(adj & (dist > 1))),
                "from_mask": {},
                "to_mask": {},
            }
            if len(self._tables_memo) >= 4096:
                self._tables_memo.clear()
            self._tables_memo[key] = entry
        self._tables_entry = entry
        self._tables_dirty = False
        return entry

    def _edge_allowed_from(self, a: int) -> np.ndarray:
        """Boolean row: which destination chips accept a new edge from ``a``."""
        return self._tables()["allowed"][a]

    def _edge_allowed_to(self, b: int) -> np.ndarray:
        """Boolean column: which source chips accept a new edge into ``b``."""
        return self._tables()["allowed"][:, b]

    def _successor_mask(self, c: int) -> int:
        """Bitmask of values a successor of a node fixed at ``c`` may take."""
        entry = self._tables()
        cached = entry["from_mask"].get(c)
        if cached is None:
            cached = 1 << c
            for d in np.flatnonzero(entry["allowed"][c]):
                cached |= 1 << int(d)
            entry["from_mask"][c] = cached
        return cached

    def _predecessor_mask(self, c: int) -> int:
        """Bitmask of values a predecessor of a node fixed at ``c`` may take."""
        entry = self._tables()
        cached = entry["to_mask"].get(c)
        if cached is None:
            cached = 1 << c
            for d in np.flatnonzero(entry["allowed"][:, c]):
                cached |= 1 << int(d)
            entry["to_mask"][c] = cached
        return cached

    def assignment(self) -> np.ndarray:
        """The complete assignment; raises if any node is still unfixed."""
        out = np.empty(self.graph.n_nodes, dtype=np.int64)
        for u, mask in enumerate(self._masks):
            if mask.bit_count() != 1:
                raise RuntimeError(f"node {u} is not fixed; solve to completion first")
            out[u] = mask.bit_length() - 1
        return out

    # ------------------------------------------------------------------
    # The paper's driver interface
    # ------------------------------------------------------------------
    def set_domain(self, node: int, values: "int | Iterable[int]") -> int:
        """Restrict ``node`` to ``values``, propagate, and return decision count.

        On success the restriction is committed as a new decision and
        ``n_decisions`` (== previous + 1) is returned.  On conflict the
        solver back-tracks — undoing the attempt, excluding the offending
        values at the surviving level, and popping decisions as needed —
        and returns the new (smaller) decision count.
        """
        mask_req = self._to_mask(values)
        new_mask = mask_req & self._masks[node]
        trail: list = []
        try:
            self._restrict(node, new_mask, trail)
            self._propagate(trail)
        except _Conflict:
            self._undo(trail)
            return self._resolve_conflict(node, mask_req)
        self._decisions.append((node, new_mask, trail))
        return len(self._decisions)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _to_mask(self, values: "int | Iterable[int]") -> int:
        if isinstance(values, (int, np.integer)):
            values = [int(values)]
        mask = 0
        for v in values:
            if not (0 <= v < self.n_chips):
                raise ValueError(f"chip id {v} out of range [0, {self.n_chips})")
            mask |= 1 << int(v)
        if mask == 0:
            raise ValueError("values must be non-empty")
        return mask

    def _restrict(self, node: int, new_mask: int, trail: list) -> None:
        """Apply a mask change, update bookkeeping, enqueue propagation."""
        old = self._masks[node]
        new_mask &= old
        if new_mask == old:
            return
        if new_mask == 0:
            raise _Conflict
        trail.append(("mask", node, old))
        self._masks[node] = new_mask

        removed = old & ~new_mask
        while removed:
            bit = removed & -removed
            d = bit.bit_length() - 1
            self._cover[d] -= 1
            trail.append(("cover", d))
            removed ^= bit

        new_lo = (new_mask & -new_mask).bit_length() - 1
        if new_lo > self._max_lo:
            trail.append(("maxlo", self._max_lo))
            self._max_lo = new_lo

        if new_mask.bit_count() == 1 and old.bit_count() > 1:
            self._on_fixed(node, new_lo, trail)

        self._queue.append(node)

    def _on_fixed(self, node: int, value: int, trail: list) -> None:
        """Record chip-dependency edges once both endpoints are fixed."""
        for succ in self._succs[node]:
            m = self._masks[succ]
            if m.bit_count() == 1:
                other = m.bit_length() - 1
                if other != value:
                    self._add_chip_edge(value, other, trail)
        for pred in self._preds[node]:
            m = self._masks[pred]
            if m.bit_count() == 1:
                other = m.bit_length() - 1
                if other != value:
                    self._add_chip_edge(other, value, trail)

    def _add_chip_edge(self, a: int, b: int, trail: list) -> None:
        if b < a:
            # Bounds propagation makes this unreachable, but guard anyway.
            raise _Conflict
        self._edge_count[a, b] += 1
        trail.append(("edge", a, b))
        if self._edge_count[a, b] == 1:
            self._new_edges = True
            self._tables_dirty = True

    def _propagate(self, trail: list) -> None:
        """Run bounds propagation to fixpoint, then the global checks."""
        queue = self._queue
        while queue:
            u = queue.popleft()
            mask = self._masks[u]
            lo = (mask & -mask).bit_length() - 1
            hi = mask.bit_length() - 1
            fixed_at = lo if mask.bit_count() == 1 else -1
            if lo > 0 or fixed_at >= 0:
                keep_high = ~((1 << lo) - 1)
                if fixed_at >= 0:
                    # Triangle propagation: a successor must share the chip
                    # or sit on one reachable through an addable edge.
                    keep_high &= self._successor_mask(fixed_at)
                for w in self._succs[u]:
                    self._restrict(w, self._masks[w] & keep_high, trail)
            if hi < self.n_chips - 1 or fixed_at >= 0:
                keep_low = (1 << (hi + 1)) - 1
                if fixed_at >= 0:
                    keep_low &= self._predecessor_mask(fixed_at)
                for w in self._preds[u]:
                    self._restrict(w, self._masks[w] & keep_low, trail)

        # No-skipping: every chip below the largest forced lower bound must
        # still be coverable by some node.
        for d in range(self._max_lo):
            if self._cover[d] == 0:
                raise _Conflict

        # Triangle dependency among currently fixed cross-chip edges.
        if self._new_edges:
            self._new_edges = False
            if self._tables()["violated"]:
                raise _Conflict

    def _undo(self, trail: list) -> None:
        """Reverse a trail of bookkeeping entries (most recent first)."""
        self._queue = deque()
        self._new_edges = False
        for entry in reversed(trail):
            kind = entry[0]
            if kind == "mask":
                _, node, old = entry
                self._masks[node] = old
            elif kind == "cover":
                self._cover[entry[1]] += 1
            elif kind == "maxlo":
                self._max_lo = entry[1]
            else:  # edge
                _, a, b = entry
                self._edge_count[a, b] -= 1
                if self._edge_count[a, b] == 0:
                    self._tables_dirty = True
        trail.clear()

    def _resolve_conflict(self, node: int, tried_mask: int) -> int:
        """Back-track: exclude ``tried_mask`` from ``node`` and pop as needed."""
        while True:
            excl = self._masks[node] & ~tried_mask
            if excl:
                trail: list = []
                try:
                    self._restrict(node, excl, trail)
                    self._propagate(trail)
                except _Conflict:
                    self._undo(trail)
                else:
                    parent = self._decisions[-1][2] if self._decisions else self._root_trail
                    parent.extend(trail)
                    return len(self._decisions)
            if not self._decisions:
                raise Unsatisfiable(
                    "no valid partition under the accumulated exclusions"
                )
            node, tried_mask, trail = self._decisions.pop()
            self._undo(trail)
