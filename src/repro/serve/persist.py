"""Disk-backed :class:`PartitionCache`: append-only journal, crash-safe.

The persistence model is a write-ahead journal of cache *events*:

* ``put`` records carry the full serialized entry (assignment, node order,
  measured cost, provenance);
* ``touch`` records mark a hit, so LRU *recency* — not just membership —
  survives a restart.

Each journal line is ``<sha256-prefix> <json-payload>``; on load, lines
whose checksum or JSON fail to verify (torn final line after ``kill -9``,
bit flips, truncation anywhere) are **skipped and counted**, never fatal —
a corrupt entry costs one recompute, not an outage.  Replaying the journal
in order reconstructs the exact LRU state: puts insert, touches refresh,
capacity evicts, so a warmed restart behaves as if the process had never
died (pinned by ``tests/serve/test_persist.py``).

The journal is compacted (rewritten as one ``put`` per live entry, in
recency order, via temp-file + ``os.replace``) when it grows past
``compact_every`` records, so disk stays proportional to the cache, not to
its history.

Failure policy: persistence is a *cache of the cache* — any journal IO
error (including injected ``cache``-site faults from a
:class:`repro.reliability.FaultPlan`) disables further journalling for the
affected operation and counts ``persist_errors``; in-memory serving
continues untouched.  Durability degrades before availability does.

Thread safety: one re-entrant lock serialises every mutation *and* the
compaction rewrite.  Without it, a ``put`` racing ``compact()`` could hit
the window where the journal handle is closed for the atomic rename (write
to a closed file) or mutate the LRU while compaction iterates it — the
threaded HTTP server and the sharded router both drive one cache from many
threads (pinned by ``test_persist.py``'s compaction-race test).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading

import numpy as np

from repro.obs.metrics import Counter, Gauge
from repro.serve.cache import CachedPartition, PartitionCache

_JOURNAL_NAME = "journal.jsonl"
_CHECKSUM_LEN = 16


def _entry_to_record(key: str, entry: CachedPartition) -> dict:
    return {
        "op": "put",
        "fp": key,
        "assignment": entry.assignment.tolist(),
        "node_order": (
            None if entry.node_order is None else entry.node_order.tolist()
        ),
        "improvement": entry.improvement,
        "objective": entry.objective,
        "throughput": entry.throughput,
        "latency_us": entry.latency_us,
        "metadata": entry.metadata,
    }


def _record_to_entry(record: dict) -> CachedPartition:
    return CachedPartition(
        fingerprint=record["fp"],
        assignment=np.asarray(record["assignment"], dtype=np.int64),
        improvement=float(record["improvement"]),
        node_order=(
            None
            if record.get("node_order") is None
            else np.asarray(record["node_order"], dtype=np.int64)
        ),
        objective=str(record.get("objective", "throughput")),
        throughput=float(record.get("throughput", 0.0)),
        latency_us=float(record.get("latency_us", 0.0)),
        metadata=dict(record.get("metadata", {})),
    )


def _frame(record: dict) -> str:
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return f"{digest[:_CHECKSUM_LEN]} {payload}\n"


def _unframe(line: str) -> "dict | None":
    """Parse one journal line; ``None`` for anything that fails to verify."""
    line = line.rstrip("\n")
    if len(line) < _CHECKSUM_LEN + 2 or line[_CHECKSUM_LEN] != " ":
        return None
    digest, payload = line[:_CHECKSUM_LEN], line[_CHECKSUM_LEN + 1:]
    if hashlib.sha256(payload.encode("utf-8")).hexdigest()[:_CHECKSUM_LEN] != digest:
        return None
    try:
        record = json.loads(payload)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


class PersistentPartitionCache(PartitionCache):
    """A :class:`PartitionCache` whose state survives process death.

    Parameters
    ----------
    capacity:
        LRU bound, enforced identically in memory and on replay.
    directory:
        Journal directory (created if missing).  One cache per directory.
    journal_touches:
        Persist ``get``-hit recency (default).  Disabling trades exact
        restart recency for zero disk writes on the hit path.
    compact_every:
        Compact once the journal holds this many records (puts + touches).
    fault_plan:
        Optional :class:`repro.reliability.FaultPlan`; ``io_error`` faults
        at site ``"cache"`` fire on ``append`` / ``compact`` operations.
    """

    def __init__(
        self,
        capacity: int = 256,
        directory: str = ".",
        journal_touches: bool = True,
        compact_every: int = 4096,
        fault_plan=None,
    ):
        super().__init__(capacity)
        self.directory = os.path.abspath(str(directory))
        self.journal_touches = bool(journal_touches)
        self.compact_every = int(compact_every)
        self.fault_plan = fault_plan
        self.journal_path = os.path.join(self.directory, _JOURNAL_NAME)
        # Typed persistence counters (the unified-registry primitives);
        # exposed through same-named read-only properties so stats()
        # and existing callers see plain ints.
        self._corrupt_skipped = Counter("cache_corrupt_skipped_total")
        self._persist_errors = Counter("cache_persist_errors_total")
        self._warm_entries = Gauge("cache_warm_entries")
        self._records_since_compact = 0
        self._journal_fh = None
        # Re-entrant: put/get append under the lock, and an append can
        # itself trigger compact() at the threshold.
        self._journal_lock = threading.RLock()
        os.makedirs(self.directory, exist_ok=True)
        self._warm_start()
        self._open_journal()

    @property
    def corrupt_skipped(self) -> int:
        return self._corrupt_skipped.value

    @property
    def persist_errors(self) -> int:
        return self._persist_errors.value

    @property
    def warm_entries(self) -> int:
        return int(self._warm_entries.value)

    # ------------------------------------------------------------------
    # Restart / recovery
    # ------------------------------------------------------------------
    def _warm_start(self) -> None:
        """Replay the journal into the in-memory LRU (corruption skipped)."""
        if not os.path.exists(self.journal_path):
            return
        try:
            with open(self.journal_path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            self._persist_errors.inc()
            return
        hits, misses = self.hits, self.misses  # replay must not skew stats
        for line in lines:
            if not line.strip():
                continue
            record = _unframe(line)
            if record is None:
                self._corrupt_skipped.inc()
                continue
            op = record.get("op")
            if op == "put":
                try:
                    super().put(record["fp"], _record_to_entry(record))
                except (KeyError, TypeError, ValueError):
                    self._corrupt_skipped.inc()
            elif op == "touch":
                super().get(str(record.get("fp", "")))
            else:
                self._corrupt_skipped.inc()
        self.hits, self.misses = hits, misses
        self.evictions = 0
        self._warm_entries.set(len(self))

    def _open_journal(self) -> None:
        if self._journal_fh is not None:
            try:
                self._journal_fh.close()
            except OSError:
                pass
        try:
            self._journal_fh = open(self.journal_path, "a", encoding="utf-8")
        except OSError:
            self._journal_fh = None
            self._persist_errors.inc()

    # ------------------------------------------------------------------
    # Journalling
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        with self._journal_lock:
            self._append_locked(record)

    def _append_locked(self, record: dict) -> None:
        if self._journal_fh is None:
            return
        try:
            if self.fault_plan is not None:
                self.fault_plan.io_error("cache", "append")
            self._journal_fh.write(_frame(record))
            self._journal_fh.flush()
        except OSError:
            # Durability degrades, serving does not: stop journalling and
            # keep answering from memory.
            self._persist_errors.inc()
            try:
                self._journal_fh.close()
            except OSError:
                pass
            self._journal_fh = None
            return
        self._records_since_compact += 1
        if self._records_since_compact >= self.compact_every:
            self.compact()

    def compact(self) -> None:
        """Rewrite the journal as one ``put`` per live entry, LRU order.

        Atomic (temp file + ``os.replace``): a crash mid-compaction leaves
        the previous journal intact.  Holds the journal lock throughout,
        so concurrent puts/touches queue behind the rewrite and land in
        the *new* journal — never in the handle being retired.
        """
        with self._journal_lock:
            tmp_path = self.journal_path + ".tmp"
            try:
                if self.fault_plan is not None:
                    self.fault_plan.io_error("cache", "compact")
                with open(tmp_path, "w", encoding="utf-8") as fh:
                    for key in self.keys():  # least-recently-used first
                        entry = self._entries[key]
                        fh.write(_frame(_entry_to_record(key, entry)))
                if self._journal_fh is not None:
                    self._journal_fh.close()
                os.replace(tmp_path, self.journal_path)
            except OSError:
                self._persist_errors.inc()
                if os.path.exists(tmp_path):
                    try:
                        os.unlink(tmp_path)
                    except OSError:
                        pass
            finally:
                self._records_since_compact = 0
                self._open_journal()

    # ------------------------------------------------------------------
    # Cache interface (journalled)
    # ------------------------------------------------------------------
    def get(self, key: str) -> "CachedPartition | None":
        with self._journal_lock:
            entry = super().get(key)
            if entry is not None and self.journal_touches:
                self._append_locked({"op": "touch", "fp": key})
            return entry

    def put(self, key: str, entry: CachedPartition) -> "str | None":
        with self._journal_lock:
            evicted = super().put(key, entry)
            self._append_locked(_entry_to_record(key, entry))
            return evicted

    def clear(self) -> None:
        with self._journal_lock:
            super().clear()
            self.compact()

    def close(self) -> None:
        """Compact and release the journal handle (restart-ready state)."""
        with self._journal_lock:
            self.compact()
            if self._journal_fh is not None:
                try:
                    self._journal_fh.close()
                except OSError:
                    pass
                self._journal_fh = None

    def stats(self) -> dict:
        out = super().stats()
        out.update(
            {
                "persistent": True,
                "journal_path": self.journal_path,
                "warm_entries": self.warm_entries,
                "corrupt_skipped": self.corrupt_skipped,
                "persist_errors": self.persist_errors,
            }
        )
        return out
