"""Replicated sharded serving: consistent-hash router over shard processes.

One :class:`PartitionService` process is a single point of failure and a
single-core ceiling.  This module runs *N* of them (``repro serve``
subprocesses, or any addresses you attach) behind one front door:

* **Consistent-hash routing** (:class:`HashRing`) — each request's routing
  fingerprint lands on a *replica set* of ``replication`` distinct shards,
  so every fingerprint has R independent homes and the cache-key → shard
  mapping moves minimally when shards join or leave.  Because every cache
  miss is seeded purely from ``(service seed, request fingerprint)``
  (the PR-4 serving invariant), *which* replica answers cannot change the
  result — replicas are interchangeable bit-for-bit.
* **Health-checked failover** — a monitor thread probes each shard's
  ``/healthz`` (readiness, not liveness) and feeds a per-shard
  :class:`CircuitBreaker`; requests fail over to the next replica on
  breaker-open, connection loss, timeout, 429, or 5xx.
* **Hedged requests** — when the primary replica has not answered within a
  p95-derived delay, the same request is fired at the second replica and
  the first answer wins (the loser's reply is discarded — with stdlib
  ``urllib`` there is no true cancel, and shard work is idempotent and
  cache-warming anyway).
* **Last-resort degradation** — only when *every* replica is down does the
  router itself answer, from the greedy heuristic
  (:func:`repro.serve.service.greedy_fallback`), marked
  ``degraded_reason="all_replicas_down"`` and never cached.

Client errors (4xx other than 429) are *answers*, not failures: they are
forwarded verbatim from the first replica that produced one, never failed
over (every replica would say the same thing), and never trip a breaker.

Chaos hooks (:class:`repro.reliability.FaultPlan` sites): ``shard_kill``
SIGKILLs a spawned shard right before a forward, ``shard_stall`` sleeps a
forward (a wedged shard, as seen by hedging), ``network_partition`` makes
the transport to one shard fail without sending (process stays alive).

CLI: ``repro route --shards 2 --replication 2`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

import bisect
import hashlib
import http.client
import json
import os
import queue
import select
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.obs.metrics import MetricsRegistry, prometheus_from_snapshot
from repro.obs.trace import NULL_SPAN, TRACE_HEADER, Tracer
from repro.serve.fingerprint import PlatformDescriptor, canonical_form, request_fingerprint
from repro.serve.server import request_from_payload
from repro.serve.service import (
    PartitionRequest,
    ServiceError,
    greedy_fallback,
)

#: Upper bound on a routed request body (matches the shard server's bound).
_MAX_BODY_BYTES = 64 * 2**20

#: Successful-request latencies retained for the hedge-delay percentile.
_HEDGE_WINDOW = 256

#: Minimum latency samples before the p95 is trusted over ``hedge_min_s``.
_HEDGE_MIN_SAMPLES = 8


def _hash64(token: str) -> int:
    """Stable 64-bit point on the ring (sha256 prefix — never ``hash()``,
    which is salted per process and would re-route every restart)."""
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent hashing with virtual nodes.

    Each shard contributes ``vnodes`` points on a 64-bit ring; a key's
    replica set is the first ``r`` *distinct* shards clockwise from the
    key's own point.  Adding or removing one shard therefore moves only the
    keyspace slices adjacent to its points (~1/N of keys), never reshuffles
    everything — the property that keeps shard-local result caches warm
    across membership changes.
    """

    def __init__(self, shard_ids=(), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._shards: "set[str]" = set()
        self._hashes: "list[int]" = []
        self._points: "list[tuple[int, str]]" = []
        for shard_id in shard_ids:
            self.add(shard_id)

    def __len__(self) -> int:
        return len(self._shards)

    def shard_ids(self) -> "list[str]":
        return sorted(self._shards)

    def add(self, shard_id: str) -> None:
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id!r} already on the ring")
        self._shards.add(shard_id)
        for v in range(self.vnodes):
            self._points.append((_hash64(f"{shard_id}#{v}"), shard_id))
        self._points.sort()
        self._hashes = [h for h, _ in self._points]

    def remove(self, shard_id: str) -> None:
        if shard_id not in self._shards:
            raise KeyError(shard_id)
        self._shards.discard(shard_id)
        self._points = [(h, s) for h, s in self._points if s != shard_id]
        self._hashes = [h for h, _ in self._points]

    def replicas(self, key: str, r: int) -> "list[str]":
        """The first ``r`` distinct shards clockwise from ``key``'s point.

        Deterministic for a given membership; returns fewer than ``r`` when
        the ring holds fewer shards.
        """
        if not self._points or r < 1:
            return []
        start = bisect.bisect_right(self._hashes, _hash64(key))
        out: "list[str]" = []
        seen: "set[str]" = set()
        n = len(self._points)
        for step in range(n):
            shard_id = self._points[(start + step) % n][1]
            if shard_id in seen:
                continue
            seen.add(shard_id)
            out.append(shard_id)
            if len(out) == r:
                break
        return out


class CircuitBreaker:
    """Closed → open on consecutive failures → half-open probe → closed.

    * **closed** — requests flow; ``failure_threshold`` *consecutive*
      failures open it.
    * **open** — requests skip the shard; after ``reset_timeout_s`` the
      next :meth:`admit` converts to half-open and admits one trial.
    * **half-open** — exactly one in-flight trial; success closes, failure
      re-opens.  The health monitor's probes also feed
      :meth:`record_success` / :meth:`record_failure`, so a recovered
      shard is usually closed again by the next probe without spending a
      client request on the trial.

    Thread-safe; ``clock`` is injectable so the state machine is testable
    without sleeping.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 5.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self._clock = clock
        self._state = "closed"
        self._opened_at = 0.0
        self._trial_in_flight = False
        self.consecutive_failures = 0
        self.opened_total = 0
        self.transitions: "dict[str, int]" = {}
        self._lock = threading.Lock()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _move(self, new_state: str) -> None:
        key = f"{self._state}->{new_state}"
        self.transitions[key] = self.transitions.get(key, 0) + 1
        self._state = new_state
        if new_state == "open":
            self.opened_total += 1
            self._opened_at = self._clock()

    def admit(self) -> bool:
        """May a request be sent to this shard right now?

        Open breakers admit nothing until ``reset_timeout_s`` has elapsed,
        then exactly one trial (the half-open probe); further requests are
        refused until that trial resolves.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at < self.reset_timeout_s:
                    return False
                self._move("half_open")
                self._trial_in_flight = True
                return True
            if self._trial_in_flight:
                return False
            self._trial_in_flight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self.consecutive_failures = 0
            self._trial_in_flight = False
            if self._state != "closed":
                self._move("closed")

    def record_failure(self) -> None:
        with self._lock:
            self.consecutive_failures += 1
            if self._state == "half_open":
                self._trial_in_flight = False
                self._move("open")
            elif (
                self._state == "closed"
                and self.consecutive_failures >= self.failure_threshold
            ):
                self._move("open")

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self.consecutive_failures,
                "opened_total": self.opened_total,
                "transitions": dict(self.transitions),
            }


@dataclass
class ShardEndpoint:
    """One shard's address, optionally with the process the router spawned.

    ``process=None`` is attach mode: the shard belongs to someone else and
    the router never signals it (``shard_kill`` faults are then no-ops).
    """

    shard_id: str
    host: str
    port: int
    process: "subprocess.Popen | None" = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def alive(self) -> bool:
        return self.process is None or self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL — the impolite death the chaos tests inject."""
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=30)

    def terminate(self, timeout: float = 10.0) -> None:
        """Polite shutdown (SIGTERM, then SIGKILL after ``timeout``)."""
        if self.process is None or self.process.poll() is not None:
            return
        self.process.terminate()
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=30)


def _read_line(proc: subprocess.Popen, timeout_s: float) -> str:
    """First stdout line of a child, with a deadline (never block forever
    on a shard that wedges before printing its address)."""
    fd = proc.stdout.fileno()
    deadline = time.monotonic() + timeout_s
    buf = b""
    while b"\n" not in buf:
        left = deadline - time.monotonic()
        if left <= 0:
            raise TimeoutError(
                f"shard did not announce its address within {timeout_s:g}s"
            )
        ready, _, _ = select.select([fd], [], [], min(left, 0.25))
        if not ready:
            if proc.poll() is not None:
                raise RuntimeError(
                    f"shard exited with code {proc.returncode} before "
                    "announcing its address"
                )
            continue
        chunk = os.read(fd, 4096)
        if not chunk:
            raise RuntimeError(
                "shard closed stdout before announcing its address"
            )
        buf += chunk
    return buf.split(b"\n", 1)[0].decode("utf-8", "replace")


def spawn_shard(
    shard_id: str,
    samples: int = 16,
    seed: int = 0,
    cache_capacity: int = 256,
    registry: "str | None" = None,
    cache_dir: "str | None" = None,
    max_in_flight: int = 0,
    precision: str = "float64",
    batch_window_ms: float = 0.0,
    batch_max_size: int = 8,
    trace_dir: "str | None" = None,
    trace_sample: float = 1.0,
    trace_slow_ms: float = 0.0,
    extra_args: tuple = (),
    startup_timeout_s: float = 60.0,
) -> ShardEndpoint:
    """Spawn one ``repro serve`` process on an ephemeral port.

    All shards of a deployment must share ``seed``, ``samples``, and
    ``precision``: the replica-independence guarantee (any replica answers
    bit-identically) holds because a miss is seeded purely from ``(service
    seed, request fingerprint)`` and evaluated on one numeric backend — a
    seed or precision mismatch between replicas would break it.
    ``batch_window_ms``/``batch_max_size`` enable admission coalescing on
    the shard (composition-invariant, so safe to vary per shard — but a
    uniform window keeps tail latencies comparable across the ring).
    """
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0",
        "--samples", str(int(samples)),
        "--seed", str(int(seed)),
        "--cache-capacity", str(int(cache_capacity)),
        "--shard-id", shard_id,
    ]
    if precision != "float64":
        cmd += ["--precision", precision]
    if batch_window_ms > 0:
        cmd += [
            "--batch-window-ms", repr(float(batch_window_ms)),
            "--batch-max-size", str(int(batch_max_size)),
        ]
    if registry is not None:
        cmd += ["--registry", str(registry)]
    if cache_dir is not None:
        cmd += ["--cache-dir", str(cache_dir)]
    if max_in_flight:
        cmd += ["--max-in-flight", str(int(max_in_flight))]
    if trace_dir is not None:
        cmd += ["--trace-dir", str(trace_dir)]
        if trace_sample != 1.0:
            cmd += ["--trace-sample", repr(float(trace_sample))]
        if trace_slow_ms > 0:
            cmd += ["--trace-slow-ms", repr(float(trace_slow_ms))]
    cmd += list(extra_args)
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_root + (os.pathsep + existing if existing else "")
    )
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
    )
    try:
        line = _read_line(proc, startup_timeout_s)
        # `repro serve`'s machine-readable first line: "serving on host:port".
        if not line.startswith("serving on "):
            raise RuntimeError(f"unexpected shard start-up line {line!r}")
        host, _, port = line[len("serving on "):].rpartition(":")
        return ShardEndpoint(
            shard_id=shard_id, host=host, port=int(port), process=proc
        )
    except Exception:
        proc.kill()
        proc.wait(timeout=30)
        raise


@dataclass(frozen=True)
class RouterConfig:
    """Knobs of one :class:`ShardRouter`.

    ``replication``
        Replica-set size R: how many independent homes each fingerprint
        has.  Failover and hedging both draw from this set.
    ``default_samples``
        Folded into the routing fingerprint when a request omits
        ``samples`` — must match the shards' ``--samples`` default for the
        routing key to equal the shard's cache key.
    ``probe_interval_s``
        Health-monitor period (``0`` disables the background probes;
        breakers then learn only from request outcomes).
    ``shard_timeout_s``
        Per-attempt forward timeout; an expired attempt is a failure
        (failover material), not a client error.
    ``failure_threshold`` / ``breaker_reset_s``
        Circuit-breaker consecutive-failure trip point and open→half-open
        cool-down.
    ``hedge`` / ``hedge_p95_factor`` / ``hedge_min_s`` / ``hedge_max_s``
        Tail-latency hedging: after ``clamp(p95 * factor, min, max)``
        seconds without an answer, fire the next replica.  The p95 is over
        recent successful forwards; until enough samples exist,
        ``hedge_min_s`` is the delay.  ``hedge=False`` disables (failover
        still applies).
    ``fault_plan``
        Chaos hooks (``shard_kill`` / ``shard_stall`` /
        ``network_partition`` sites), constructor-wired like every other
        layer's.
    ``trace_dir`` / ``trace_sample`` / ``trace_slow_ms``
        End-to-end tracing (see :mod:`repro.obs.trace`): the router opens
        a trace per request, records each forward/failover/hedge attempt
        as a child span, and — for *sampled* traces — forwards the trace
        id in ``X-Repro-Trace`` so the shard's spans land in its own JSONL
        under the same id.  :meth:`ShardRouter.spawn` passes these flags
        through to every spawned shard.  The keep/drop decision hashes the
        id deterministically, so router and shards always agree.
    """

    replication: int = 2
    vnodes: int = 64
    default_samples: int = 16
    probe_interval_s: float = 2.0
    probe_timeout_s: float = 1.0
    shard_timeout_s: float = 60.0
    failure_threshold: int = 3
    breaker_reset_s: float = 5.0
    hedge: bool = True
    hedge_p95_factor: float = 1.5
    hedge_min_s: float = 0.05
    hedge_max_s: float = 2.0
    fault_plan: "object | None" = None
    trace_dir: "str | None" = None
    trace_sample: float = 1.0
    trace_slow_ms: float = 0.0

    def __post_init__(self):
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if self.default_samples < 1:
            raise ValueError("default_samples must be >= 1")
        if self.shard_timeout_s <= 0 or self.probe_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.hedge_min_s < 0 or self.hedge_max_s < self.hedge_min_s:
            raise ValueError("need 0 <= hedge_min_s <= hedge_max_s")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ValueError("trace_sample must be in [0, 1]")
        if self.trace_slow_ms < 0:
            raise ValueError("trace_slow_ms must be >= 0 (0 disables slow-force)")


class _ShardState:
    """Router-side view of one shard: breaker, health, counters."""

    def __init__(self, endpoint: ShardEndpoint, config: RouterConfig):
        self.endpoint = endpoint
        self.breaker = CircuitBreaker(
            failure_threshold=config.failure_threshold,
            reset_timeout_s=config.breaker_reset_s,
        )
        self.healthy: "bool | None" = None  # None until first probe
        self.consecutive_probe_failures = 0
        self.probe_ewma_ms: "float | None" = None
        self.last_probe_unix: "float | None" = None
        self.last_health: dict = {}
        self.requests = 0
        self.failures = 0


def routing_key(request: PartitionRequest, default_samples: int = 16) -> str:
    """The fingerprint the ring hashes for one request.

    Identical to the shard's cache fingerprint except that the checkpoint
    spec stays *unresolved* (the router holds no registry, so
    ``version=None`` is hashed as "latest" rather than a concrete number).
    Uncheckpointed requests — and any request pinning an explicit version —
    therefore route exactly by their cache key; ``version=None`` requests
    for one checkpoint name all land on the same replica set, which is
    precisely the cache affinity sharding needs.
    """
    graph_fp, _ = canonical_form(request.graph)
    checkpoint = None
    if request.checkpoint is not None:
        checkpoint = (
            request.checkpoint,
            -1 if request.version is None else int(request.version),
        )
    samples = (
        default_samples if request.samples is None else int(request.samples)
    )
    return request_fingerprint(
        graph_fp,
        PlatformDescriptor.of(request.n_chips, request.topology),
        objective=request.objective,
        cost_model=request.cost_model,
        samples=samples,
        checkpoint=checkpoint,
    )


class ShardRouter:
    """Routes partition requests across replicated shard processes.

    Construct with shard endpoints (:func:`spawn_shard` /
    :meth:`ShardRouter.spawn`, or attach to addresses you already run),
    then call :meth:`handle_partition` per request — or put
    :class:`RouterServer` in front for the HTTP form.
    """

    def __init__(
        self,
        shards: "list[ShardEndpoint]",
        config: "RouterConfig | None" = None,
        graph_resolver=None,
    ):
        if not shards:
            raise ValueError("a router needs at least one shard")
        ids = [s.shard_id for s in shards]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids: {sorted(ids)}")
        self.config = config or RouterConfig()
        self.graph_resolver = graph_resolver
        self.ring = HashRing(ids, vnodes=self.config.vnodes)
        self._shards: "dict[str, _ShardState]" = {
            s.shard_id: _ShardState(s, self.config) for s in shards
        }
        self._spawned: "list[ShardEndpoint]" = []
        self._metrics_lock = threading.Lock()
        # Routing counters live in the typed registry (one source of truth
        # for the JSON and Prometheus views); the attribute names below are
        # kept as read-only properties.
        self.metrics_registry = MetricsRegistry()
        reg = self.metrics_registry
        self._requests_total = reg.counter("router_requests_total")
        self._failovers = reg.counter("router_failovers_total")
        self._hedges_fired = reg.counter("router_hedges_fired_total")
        self._hedge_wins = reg.counter("router_hedge_wins_total")
        self._degraded_serves = reg.counter("router_degraded_serves_total")
        self._all_replicas_down = reg.counter("router_all_replicas_down_total")
        self._client_errors = reg.counter("router_client_errors_total")
        self._latency_ms_hist = reg.histogram("router_request_latency_ms")
        # The hedge-delay *control signal* stays a bounded window of raw
        # latencies: hedging tracks the recent p95, not the lifetime one —
        # a histogram over all history would stop adapting.  This deque is
        # control state, not observability (the histogram above is).
        self._latency_s: "deque[float]" = deque(maxlen=_HEDGE_WINDOW)
        self.tracer = Tracer(
            trace_dir=self.config.trace_dir,
            sample=self.config.trace_sample,
            slow_ms=self.config.trace_slow_ms,
            service="router",
        )
        self._stop = threading.Event()
        self._monitor: "threading.Thread | None" = None
        if self.config.probe_interval_s > 0:
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="repro-router-health",
                daemon=True,
            )
            self._monitor.start()

    # Read-only counter views (the names the pre-registry attributes had).
    @property
    def requests_total(self) -> int:
        return self._requests_total.value

    @property
    def failovers(self) -> int:
        return self._failovers.value

    @property
    def hedges_fired(self) -> int:
        return self._hedges_fired.value

    @property
    def hedge_wins(self) -> int:
        return self._hedge_wins.value

    @property
    def degraded_serves(self) -> int:
        return self._degraded_serves.value

    @property
    def all_replicas_down(self) -> int:
        return self._all_replicas_down.value

    @property
    def client_errors(self) -> int:
        return self._client_errors.value

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def spawn(
        cls,
        n_shards: int,
        config: "RouterConfig | None" = None,
        graph_resolver=None,
        seed: int = 0,
        registry: "str | None" = None,
        cache_capacity: int = 256,
        max_in_flight: int = 0,
        precision: str = "float64",
        batch_window_ms: float = 0.0,
        batch_max_size: int = 8,
    ) -> "ShardRouter":
        """Spawn ``n_shards`` ``repro serve`` processes and route over them.

        The spawned processes are owned: :meth:`close` terminates them.
        Every shard gets the same seed, sample budget, precision, and
        coalescing window (replica interchangeability — see
        :func:`spawn_shard`).
        """
        config = config or RouterConfig()
        shards: "list[ShardEndpoint]" = []
        try:
            for i in range(int(n_shards)):
                shards.append(
                    spawn_shard(
                        f"s{i}",
                        samples=config.default_samples,
                        seed=seed,
                        cache_capacity=cache_capacity,
                        registry=registry,
                        max_in_flight=max_in_flight,
                        precision=precision,
                        batch_window_ms=batch_window_ms,
                        batch_max_size=batch_max_size,
                        trace_dir=config.trace_dir,
                        trace_sample=config.trace_sample,
                        trace_slow_ms=config.trace_slow_ms,
                    )
                )
        except Exception:
            for shard in shards:
                shard.terminate()
            raise
        router = cls(shards, config=config, graph_resolver=graph_resolver)
        router._spawned = list(shards)
        return router

    def close(self) -> None:
        """Stop the health monitor and terminate owned shard processes."""
        self.tracer.close()
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        for shard in self._spawned:
            shard.terminate()
        self._spawned = []

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Health monitoring
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.config.probe_interval_s):
            self.probe_all()

    def probe_all(self) -> None:
        """One synchronous health sweep (the monitor's body; callable from
        tests to avoid timing-dependent waits)."""
        for state in list(self._shards.values()):
            self._probe(state)

    def _probe(self, state: _ShardState) -> None:
        url = f"http://{state.endpoint.address}/healthz"
        t0 = time.perf_counter()
        try:
            with urllib.request.urlopen(
                url, timeout=self.config.probe_timeout_s
            ) as resp:
                payload = json.loads(resp.read())
            ok = True
        except urllib.error.HTTPError as exc:
            # A 503 readiness reply is a *diagnosed* unready shard: keep
            # its payload for the metrics view, count it as a failure.
            try:
                payload = json.loads(exc.read())
            except (ValueError, OSError):
                payload = {"error": str(exc.reason)}
            ok = False
        except (
            urllib.error.URLError,
            http.client.HTTPException,
            ConnectionError,
            TimeoutError,
            socket.timeout,
            OSError,
            ValueError,
        ) as exc:
            payload = {"error": str(exc)}
            ok = False
        latency_ms = (time.perf_counter() - t0) * 1e3
        state.last_probe_unix = time.time()
        state.last_health = payload
        ewma = state.probe_ewma_ms
        state.probe_ewma_ms = (
            latency_ms if ewma is None else 0.8 * ewma + 0.2 * latency_ms
        )
        state.healthy = ok
        if ok:
            state.consecutive_probe_failures = 0
            state.breaker.record_success()
        else:
            state.consecutive_probe_failures += 1
            state.breaker.record_failure()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def parse_request(self, payload: dict) -> PartitionRequest:
        return request_from_payload(payload, graph_resolver=self.graph_resolver)

    def routing_key(self, payload: dict) -> str:
        return routing_key(
            self.parse_request(payload), self.config.default_samples
        )

    def _hedge_delay_s(self) -> float:
        with self._metrics_lock:
            samples = list(self._latency_s)
        if len(samples) < _HEDGE_MIN_SAMPLES:
            return self.config.hedge_min_s
        p95 = float(np.percentile(np.asarray(samples), 95))
        return min(
            max(p95 * self.config.hedge_p95_factor, self.config.hedge_min_s),
            self.config.hedge_max_s,
        )

    def _attempt(
        self,
        state: _ShardState,
        body: bytes,
        out: queue.Queue,
        span=NULL_SPAN,
        trace_id: "str | None" = None,
    ) -> None:
        """One forward to one shard; classified outcome onto ``out``.

        Outcome kinds: ``ok`` (200), ``client_error`` (4xx except 429 —
        an answer, not a shard failure), ``failure`` (429/5xx, connection
        loss, timeout, injected partition).  ``span`` (a child span of the
        request's trace, created by the launcher) is ended here with the
        outcome; ``trace_id`` is forwarded in ``X-Repro-Trace`` so the
        shard's trace correlates with the router's.
        """
        plan = self.config.fault_plan
        shard_id = state.endpoint.shard_id
        t0 = time.perf_counter()
        if plan is not None:
            if plan.fire("shard_kill", "kill", (shard_id,)) is not None:
                # The chaos hook: the process dies *now*, and this very
                # attempt discovers it the way production would — a
                # connection error, then failover.
                state.endpoint.kill()
            stall = plan.fire("shard_stall", "stall", (shard_id,))
            if stall is not None:
                time.sleep(stall.delay_s)
            if plan.fire("network_partition", "partition", (shard_id,)) is not None:
                span.end(outcome="failure", error="network_partition")
                out.put((shard_id, "failure", 0,
                         {"error": "network partition (injected)"},
                         time.perf_counter() - t0))
                return
        url = f"http://{state.endpoint.address}/partition"
        headers = {"Content-Type": "application/json"}
        if trace_id is not None:
            headers[TRACE_HEADER] = trace_id
        req = urllib.request.Request(url, data=body, headers=headers)
        try:
            with urllib.request.urlopen(
                req, timeout=self.config.shard_timeout_s
            ) as resp:
                payload = json.loads(resp.read())
            span.end(outcome="ok", status=200)
            out.put((shard_id, "ok", 200, payload, time.perf_counter() - t0))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read())
            except (ValueError, OSError):
                payload = {"error": str(exc.reason)}
            kind = (
                "client_error"
                if 400 <= exc.code < 500 and exc.code != 429
                else "failure"
            )
            span.end(outcome=kind, status=exc.code)
            out.put((shard_id, kind, exc.code, payload,
                     time.perf_counter() - t0))
        except (
            urllib.error.URLError,
            http.client.HTTPException,
            ConnectionError,
            TimeoutError,
            socket.timeout,
            OSError,
            ValueError,
        ) as exc:
            span.end(outcome="failure", error=type(exc).__name__)
            out.put((shard_id, "failure", 0, {"error": str(exc)},
                     time.perf_counter() - t0))

    def handle_partition(
        self, payload: dict, trace=None
    ) -> "tuple[int, dict]":
        """Serve one request: ``(HTTP status, JSON-safe reply)``.

        Routing: hash the request fingerprint onto its replica set; launch
        the primary; hedge onto the next replica after the p95-derived
        delay; fail over to further replicas on any shard failure; first
        ``ok`` (or first client error) wins.  Only when every replica has
        failed or is breaker-open does the router answer degraded itself.

        ``trace`` (from :class:`RouterServer`'s handler, or any caller
        holding one) gets a ``router.routing`` span plus one
        ``router.attempt`` child span per forward; sampled traces forward
        their id to the shard.  Attempt threads receive their span
        explicitly — context vars do not cross thread starts.
        """
        self._requests_total.inc()
        t_request = time.perf_counter()
        routing_span = (
            trace.start_span("router.routing") if trace is not None else NULL_SPAN
        )
        try:
            request = self.parse_request(payload)
            key = routing_key(request, self.config.default_samples)
        except ServiceError as exc:
            self._client_errors.inc()
            routing_span.end(error="ServiceError")
            return 422, {"error": str(exc)}
        replicas = self.ring.replicas(key, self.config.replication)
        routing_span.end(replicas=list(replicas))
        # Forward the trace id only for sampled traces: an unsampled
        # router trace must not force shard-side writes (the deterministic
        # id hash means a shard seeing the id would agree anyway, but
        # forced=True on arrival would override that).
        trace_id = (
            trace.trace_id if trace is not None and trace.sampled else None
        )
        body = json.dumps(payload).encode("utf-8")
        results: "queue.Queue" = queue.Queue()
        reasons: "dict[str, str]" = {}
        next_idx = 0
        active = 0

        def launch(reason: str) -> "str | None":
            """Start the next breaker-admitted replica; None when spent."""
            nonlocal next_idx, active
            while next_idx < len(replicas):
                shard_id = replicas[next_idx]
                next_idx += 1
                state = self._shards[shard_id]
                if not state.breaker.admit():
                    continue
                reasons[shard_id] = reason
                with self._metrics_lock:
                    state.requests += 1
                active += 1
                attempt_span = (
                    trace.start_span(
                        "router.attempt", shard=shard_id, reason=reason
                    )
                    if trace is not None
                    else NULL_SPAN
                )
                threading.Thread(
                    target=self._attempt,
                    args=(state, body, results, attempt_span, trace_id),
                    name=f"repro-route-{shard_id}",
                    daemon=True,
                ).start()
                return shard_id
            return None

        launch("primary")
        hedge_spent = not self.config.hedge
        failures: "list[str]" = []
        while active:
            timeout = None
            if not hedge_spent and next_idx < len(replicas):
                timeout = self._hedge_delay_s()
            try:
                shard_id, kind, status, reply, latency_s = results.get(
                    timeout=timeout
                )
            except queue.Empty:
                # Primary slow past the hedge delay: fire the next replica.
                hedge_spent = True
                if launch("hedge") is not None:
                    self._hedges_fired.inc()
                continue
            active -= 1
            state = self._shards[shard_id]
            if kind == "ok":
                state.breaker.record_success()
                with self._metrics_lock:
                    self._latency_s.append(latency_s)
                if reasons.get(shard_id) == "hedge":
                    self._hedge_wins.inc()
                self._latency_ms_hist.observe(
                    (time.perf_counter() - t_request) * 1e3
                )
                return 200, reply
            if kind == "client_error":
                # A real answer: the request is wrong, not the shard.
                state.breaker.record_success()
                self._client_errors.inc()
                return status, reply
            state.breaker.record_failure()
            with self._metrics_lock:
                state.failures += 1
            failures.append(
                f"{shard_id}: {reply.get('error', f'status {status}')}"
            )
            # ``failovers`` counts failed attempts whose request continued
            # on another replica — whether that replica is launched right
            # now or was already in flight as a hedge.
            if launch("failover") is not None or active:
                self._failovers.inc()
        return self._serve_degraded(request, key, failures, trace=trace)

    def _serve_degraded(
        self,
        request: PartitionRequest,
        key: str,
        failures: "list[str]",
        trace=None,
    ) -> "tuple[int, dict]":
        """Every replica down: the router's own greedy heuristic answer.

        Mirrors the shard-side degraded contract — marked, honest about
        cost, and **never cached** anywhere (the router has no cache, and
        shards never saw the request).
        """
        t0 = time.perf_counter()
        self._all_replicas_down.inc()
        degraded_span = (
            trace.start_span("router.degraded_fallback")
            if trace is not None
            else NULL_SPAN
        )
        try:
            assignment, sample = greedy_fallback(request)
        except ServiceError as exc:
            degraded_span.end(error="ServiceError")
            return 503, {
                "error": (
                    f"all replicas down ({'; '.join(failures) or 'breakers open'}) "
                    f"and degraded fallback failed: {exc}"
                ),
                "retry_after_s": self.config.breaker_reset_s,
            }
        degraded_span.end()
        self._degraded_serves.inc()
        checkpoint = None
        if request.checkpoint is not None:
            checkpoint = {
                "name": request.checkpoint,
                "version": request.version,
            }
        return 200, {
            "fingerprint": key,
            "assignment": assignment.tolist(),
            "improvement": float(sample.improvement),
            "objective": request.objective,
            "cached": False,
            "source": "degraded",
            "latency_ms": (time.perf_counter() - t0) * 1e3,
            "samples": 0,
            "chips": int(request.n_chips),
            "checkpoint": checkpoint,
            "throughput": float(sample.result.throughput),
            "latency_us": float(sample.result.latency_us),
            "degraded": True,
            "degraded_reason": "all_replicas_down",
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> "tuple[bool, dict]":
        """Router readiness: 200 while at least one shard's breaker would
        admit work (degraded-only routing still answers, but a 503 here
        lets an orchestrator see the difference)."""
        states = {
            shard_id: state.breaker.snapshot()["state"]
            for shard_id, state in self._shards.items()
        }
        any_up = any(s != "open" for s in states.values())
        return any_up, {
            "ok": any_up,
            "router": True,
            "shards": states,
            "degraded_only": not any_up,
        }

    def metrics(self) -> dict:
        """JSON-safe router metrics: routing counters, per-shard breaker
        state and health, hedge configuration, armed fault plan."""
        snap = {
            "router": True,
            "replication": self.config.replication,
            "requests_total": self.requests_total,
            "failovers": self.failovers,
            "hedges_fired": self.hedges_fired,
            "hedge_wins": self.hedge_wins,
            "degraded_serves": self.degraded_serves,
            "all_replicas_down": self.all_replicas_down,
            "client_errors": self.client_errors,
        }
        hist = self._latency_ms_hist
        snap["latency_ms"] = (
            {"count": 0, "p50_ms": None, "p95_ms": None}
            if hist.count == 0
            else {
                "count": hist.count,
                "p50_ms": hist.percentile(50),
                "p95_ms": hist.percentile(95),
                "p99_ms": hist.percentile(99),
            }
        )
        snap["hedge"] = {
            "enabled": self.config.hedge,
            "delay_s": self._hedge_delay_s(),
            "p95_factor": self.config.hedge_p95_factor,
            "min_s": self.config.hedge_min_s,
            "max_s": self.config.hedge_max_s,
        }
        shards = {}
        for shard_id, state in self._shards.items():
            shards[shard_id] = {
                "address": state.endpoint.address,
                "process_alive": state.endpoint.alive,
                "requests": state.requests,
                "failures": state.failures,
                "breaker": state.breaker.snapshot(),
                "health": {
                    "healthy": state.healthy,
                    "consecutive_probe_failures": state.consecutive_probe_failures,
                    "probe_ewma_ms": state.probe_ewma_ms,
                    "last_probe_unix": state.last_probe_unix,
                    "shard": state.last_health,
                },
            }
        snap["shards"] = shards
        plan = self.config.fault_plan
        if plan is not None:
            snap["faults"] = plan.counts()
            describe = getattr(plan, "describe", None)
            if describe is not None:
                snap["fault_plan"] = describe()
        return snap

    def prometheus(self) -> str:
        """``GET /metrics?format=prometheus`` for the router tier."""
        snap = self.metrics()
        extra = {
            key: snap[key] for key in ("hedge", "shards") if key in snap
        }
        return self.metrics_registry.render() + prometheus_from_snapshot(extra)


class _RouterHandler(BaseHTTPRequestHandler):
    """The router's HTTP face — wire-compatible with a shard's, so the
    existing client helpers (``repro request``, :func:`request_partition`)
    work unchanged against a router."""

    server_version = "repro-route/1"

    def _reply(
        self, code: int, payload: dict, headers: "dict | None" = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if code == 503 and "retry_after_s" in payload:
            self.send_header(
                "Retry-After", f"{max(payload['retry_after_s'], 0):g}"
            )
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, code: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args):  # pragma: no cover - quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    def do_GET(self) -> None:
        split = urllib.parse.urlsplit(self.path)
        if split.path == "/metrics":
            fmt = urllib.parse.parse_qs(split.query).get("format", [""])[0]
            if fmt == "prometheus":
                self._reply_text(200, self.server.router.prometheus())
            else:
                self._reply(200, self.server.router.metrics())
        elif split.path == "/healthz":
            ready, payload = self.server.router.health()
            self._reply(200 if ready else 503, payload)
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:
        if urllib.parse.urlsplit(self.path).path != "/partition":
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        router = self.server.router
        trace = (
            router.tracer.start(trace_id=self.headers.get(TRACE_HEADER))
            if router.tracer.enabled
            else None
        )
        echo = {} if trace is None else {TRACE_HEADER: trace.trace_id}
        status = 200
        try:
            try:
                length = int(self.headers.get("Content-Length", 0))
                if length < 0:
                    status = 400
                    self._reply(400, {"error": "bad Content-Length"}, headers=echo)
                    return
                if length > _MAX_BODY_BYTES:
                    status = 413
                    self._reply(
                        413,
                        {"error": f"request body over {_MAX_BODY_BYTES} bytes"},
                        headers=echo,
                    )
                    return
                payload = json.loads(self.rfile.read(length) or b"{}")
                status, reply = router.handle_partition(payload, trace=trace)
            except (json.JSONDecodeError, ValueError, TypeError) as exc:
                status = 400
                self._reply(400, {"error": f"bad request: {exc}"}, headers=echo)
                return
            except Exception as exc:  # noqa: BLE001 - surface, don't drop
                status = 500
                self._reply(500, {"error": f"internal error: {exc!r}"}, headers=echo)
                return
            self._reply(status, reply, headers=echo)
        finally:
            if trace is not None:
                router.tracer.finish(trace, status=status)


class RouterServer:
    """HTTP front for a :class:`ShardRouter` (mirrors
    :class:`repro.serve.server.PartitionServer`'s lifecycle API)."""

    def __init__(
        self,
        router: ShardRouter,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ):
        self.router = router
        self._httpd = ThreadingHTTPServer((host, port), _RouterHandler)
        self._httpd.router = router
        self._httpd.verbose = verbose
        self._thread: "threading.Thread | None" = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    def start(self) -> "RouterServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-route-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "RouterServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
