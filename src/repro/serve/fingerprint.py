"""Canonical content fingerprints for serving-cache keys.

A partition is a pure function of (graph content, platform, objective,
search recipe), so a serving layer can key its result cache on a
deterministic content hash instead of object identity.  Two requirements
shape the scheme:

* **Roundtrip stability** — the fingerprint must survive
  ``save_graph``/``load_graph`` and JSON transport: it hashes the exact
  ``float64`` payloads (``ndarray.tobytes``), which both ``.npz`` and
  Python's shortest-roundtrip JSON floats preserve bit-for-bit.
* **Insertion-order invariance** — two builders adding the same nodes and
  edges in different orders describe the same workload.  Node ids are
  therefore never hashed; instead each node gets a Weisfeiler-Lehman style
  digest (its own payload refined over its neighbourhood for a few rounds),
  and the graph hash combines the *sorted multisets* of node and edge
  digests.

The graph-level ``name`` is metadata, not content: a renamed but otherwise
identical graph hits the same cache entry.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import CompGraph

#: Weisfeiler-Lehman refinement rounds.  Node names are usually unique, so
#: one round already separates everything in practice; three rounds cover a
#: 3-hop neighbourhood for graphs with generated/duplicated names.
_WL_ROUNDS = 3

#: Bump when the canonical form changes — old cache/bench entries must not
#: alias new ones.
_FINGERPRINT_VERSION = 1


def _sha(*chunks: bytes) -> bytes:
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(chunk)
    return h.digest()


def _node_payloads(graph: CompGraph) -> list[bytes]:
    """Per-node content digests (no neighbourhood, no node ids)."""
    op_types = np.asarray(graph.op_types, dtype=np.int64)
    compute = np.asarray(graph.compute_us, dtype=np.float64)
    out_bytes = np.asarray(graph.output_bytes, dtype=np.float64)
    params = np.asarray(graph.param_bytes, dtype=np.float64)
    return [
        _sha(
            graph.names[i].encode("utf-8"),
            op_types[i : i + 1].tobytes(),
            compute[i : i + 1].tobytes(),
            out_bytes[i : i + 1].tobytes(),
            params[i : i + 1].tobytes(),
        )
        for i in range(graph.n_nodes)
    ]


def canonical_form(graph: CompGraph) -> "tuple[str, np.ndarray]":
    """``(fingerprint, canonical node order)`` of a computation graph.

    The fingerprint is a deterministic content hash (hex string): stable
    across ``save_graph``/``load_graph`` roundtrips, JSON transport, and
    node-insertion order; sensitive to any node attribute, any edge, and
    the op vocabulary.  The graph's display ``name`` is excluded.

    The canonical order lists node ids sorted by their WL digest — the
    alignment the serving cache uses to transfer a stored assignment onto
    any same-content graph regardless of its node numbering.  When two
    nodes are *indistinguishable* (same name, attributes, and R-hop WL
    neighbourhood) the hash deliberately degrades to order-*sensitive* for
    that graph (node ids are mixed into the tied digests): a permuted copy
    then simply misses the cache instead of risking an ambiguous
    remapping.  All zoo/builder graphs have unique node names, so in
    practice order-invariance always holds.
    """
    digests = _node_payloads(graph)
    src = graph.src.tolist()
    dst = graph.dst.tolist()
    preds: list[list[int]] = [[] for _ in range(graph.n_nodes)]
    succs: list[list[int]] = [[] for _ in range(graph.n_nodes)]
    for a, b in zip(src, dst):
        succs[a].append(b)
        preds[b].append(a)
    for _ in range(_WL_ROUNDS):
        digests = [
            _sha(
                digests[u],
                b"<",
                *sorted(digests[p] for p in preds[u]),
                b">",
                *sorted(digests[s] for s in succs[u]),
            )
            for u in range(graph.n_nodes)
        ]
    if len(set(digests)) != len(digests):
        # Ties: disambiguate by node id (order-sensitive fallback).
        digests = [
            _sha(u.to_bytes(8, "big"), d) for u, d in enumerate(digests)
        ]
    order = np.array(
        sorted(range(graph.n_nodes), key=lambda u: digests[u]), dtype=np.int64
    )
    edge_digests = sorted(_sha(digests[a], digests[b]) for a, b in zip(src, dst))
    header = (
        f"repro-graph-v{_FINGERPRINT_VERSION}:"
        f"{graph.n_nodes}:{graph.n_edges}:"
    ).encode("ascii")
    fp = _sha(header, *sorted(digests), b"|", *edge_digests).hex()
    return fp, order


def graph_fingerprint(graph: CompGraph) -> str:
    """Deterministic content hash of a graph — see :func:`canonical_form`."""
    return canonical_form(graph)[0]


@dataclass(frozen=True)
class PlatformDescriptor:
    """The platform identity half of a serving-cache key.

    ``key`` follows :attr:`repro.hardware.topology.Topology.key` — e.g.
    ``("uniring", 4)`` or ``("mesh2d", 2, 3)`` — so two topology objects
    describing the same interconnect compare equal.  The legacy
    ``topology=None`` path and an explicit ``UniRing`` are the *same
    platform* (identical constraint semantics and costs) and share a
    descriptor.
    """

    n_chips: int
    key: tuple

    @classmethod
    def of(cls, n_chips: int, topology=None) -> "PlatformDescriptor":
        """Descriptor for ``n_chips`` chiplets on ``topology`` (None = uni-ring)."""
        if topology is None:
            return cls(n_chips=int(n_chips), key=("uniring", int(n_chips)))
        if topology.n_chips != n_chips:
            raise ValueError(
                f"topology is for {topology.n_chips} chips, descriptor got "
                f"{n_chips}"
            )
        return cls(n_chips=int(n_chips), key=tuple(topology.key))

    def token(self) -> str:
        """Canonical string form folded into request fingerprints."""
        return "platform[" + ",".join(str(k) for k in self.key) + "]"


def request_fingerprint(
    graph: "CompGraph | str",
    platform: PlatformDescriptor,
    objective: str = "throughput",
    cost_model: str = "analytical",
    samples: int = 16,
    checkpoint: "tuple | None" = None,
) -> str:
    """Cache key for one serving request (hex string).

    ``graph`` may be a :class:`CompGraph` or a precomputed
    :func:`graph_fingerprint`.  Everything that can change the returned
    partition is folded in: the platform descriptor, the objective, the
    cost-model kind, the sample budget, and the (checkpoint name, version)
    pair the policy weights come from (``None`` = untrained policy).
    """
    graph_fp = graph if isinstance(graph, str) else graph_fingerprint(graph)
    ckpt = "none" if checkpoint is None else f"{checkpoint[0]}@{int(checkpoint[1])}"
    token = "|".join(
        [
            f"repro-request-v{_FINGERPRINT_VERSION}",
            graph_fp,
            platform.token(),
            f"objective={objective}",
            f"cost_model={cost_model}",
            f"samples={int(samples)}",
            f"checkpoint={ckpt}",
        ]
    )
    return hashlib.sha256(token.encode("utf-8")).hexdigest()
