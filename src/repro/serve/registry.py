"""Named, versioned policy checkpoints on disk + a warm partitioner pool.

The registry is the serving layer's model store: pretraining publishes a
policy ``state_dict`` under a name, serving resolves ``(name, version)`` to
weights.  Layout (one directory per name, monotone integer versions)::

    <root>/
      <name>/
        v0001.npz    # the weights (repro.nn.serialization.save_state_dict)
        v0001.json   # metadata: chip count, network config, provenance

Metadata records everything needed to *rebuild* a compatible
:class:`~repro.core.partitioner.RLPartitioner` (the policy head's width is
the chip count and the feature width depends on topology conditioning, so a
checkpoint is only loadable into a matching network).

:class:`WarmPartitionerPool` sits on top: a small LRU of live partitioners
keyed by (checkpoint, platform semantics), so a request stream against the
same model pays the network build and the weight load **once**, not per
request (see :meth:`RLPartitioner.install_checkpoint`).

Crash safety: ``publish`` is atomic.  Both files are written to
dot-prefixed temporaries and moved into place with ``os.replace``, the
metadata (which records a SHA-256 of the weights file) strictly *before*
the weights; since ``versions()`` keys on the ``.npz`` name, a version
becomes visible only at the final atomic rename — a crash mid-publish can
never leave a torn version visible to ``names()``/``resolve``.  ``load``
verifies the checksum and reports corruption as :class:`RegistryError`,
never a crashed caller.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from collections import OrderedDict

from repro.core.partitioner import (
    RLPartitioner,
    RLPartitionerConfig,
    _topology_semantics,
)
from repro.nn.backend import resolve_backend
from repro.nn.serialization import load_state_dict_file, save_state_dict
from repro.rl.ppo import PPOConfig

_VERSION_RE = re.compile(r"^v(\d{4,})\.npz$")


class RegistryError(KeyError):
    """Unknown checkpoint name/version, or incompatible metadata.

    ``degradable`` marks failures where the checkpoint *should* exist but
    its bytes can't be used (IO error, corruption): the serving layer may
    answer such requests with a degraded heuristic result.  Client errors
    (unknown name, incompatible chip count) stay non-degradable.
    """

    degradable = False

    def __str__(self) -> str:
        # KeyError.__str__ repr-quotes its argument (useful for dict keys,
        # noise in HTTP error bodies); report the plain message instead.
        return str(self.args[0]) if self.args else ""


#: Sentinel distinguishing "resolve for me" from "already resolved to None".
_UNRESOLVED = object()


def _network_meta(config: RLPartitionerConfig, topology_conditioned: bool) -> dict:
    return {
        "hidden": config.hidden,
        "n_sage_layers": config.n_sage_layers,
        "n_policy_layers": config.n_policy_layers,
        "refine_iters": config.refine_iters,
        "topology_conditioned": bool(topology_conditioned),
    }


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class CheckpointRegistry:
    """Filesystem-backed store of named, versioned policy checkpoints.

    ``fault_plan`` (a :class:`repro.reliability.FaultPlan`) injects
    ``io_error`` faults at the publish/load disk touch points — before any
    rename, so an injected publish failure is indistinguishable from a real
    mid-publish crash (no torn version becomes visible).
    """

    def __init__(self, root: str, fault_plan=None):
        self.root = os.path.abspath(str(root))
        self.fault_plan = fault_plan
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths / listing
    # ------------------------------------------------------------------
    def _dir(self, name: str) -> str:
        if not name or "/" in name or name.startswith("."):
            raise RegistryError(f"invalid checkpoint name {name!r}")
        return os.path.join(self.root, name)

    def names(self) -> list[str]:
        """Registered checkpoint names, sorted.

        Entries no ``publish`` could have created (dot-directories, files)
        are skipped, not rejected — tool droppings in the registry root
        must not break listing.
        """
        return sorted(
            d
            for d in os.listdir(self.root)
            if not d.startswith(".")
            and os.path.isdir(os.path.join(self.root, d))
            and self.versions(d)
        )

    def versions(self, name: str) -> list[int]:
        """Published versions of ``name``, ascending (empty if unknown)."""
        path = self._dir(name)
        if not os.path.isdir(path):
            return []
        out = []
        for fname in os.listdir(path):
            m = _VERSION_RE.match(fname)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def latest(self, name: str) -> int:
        """Highest published version of ``name``."""
        versions = self.versions(name)
        if not versions:
            raise RegistryError(f"no checkpoint named {name!r} in {self.root}")
        return versions[-1]

    def resolve(self, name: str, version: "int | None" = None) -> tuple:
        """``(name, version)`` with ``None`` resolved to the latest."""
        if version is None:
            return (name, self.latest(name))
        if version not in self.versions(name):
            raise RegistryError(
                f"checkpoint {name!r} has no version {version} "
                f"(published: {self.versions(name)})"
            )
        return (name, int(version))

    # ------------------------------------------------------------------
    # Publish / load
    # ------------------------------------------------------------------
    def publish(
        self,
        name: str,
        state: dict,
        n_chips: int,
        network: "dict | None" = None,
        metadata: "dict | None" = None,
    ) -> int:
        """Store ``state`` as the next version of ``name``; returns it.

        ``network`` describes the policy architecture (see
        :func:`_network_meta`); ``metadata`` is free-form provenance.

        Publish order (crash safety): weights to a dot-prefixed temp file,
        checksum it, metadata (with the checksum) atomically into place,
        then the weights atomically into place.  ``versions()`` keys on the
        final ``.npz`` name, so the version is invisible until the last
        rename — at which point both files are complete and fsync-clean
        enough for a same-directory rename.  Temp files are dot-prefixed,
        which ``names()`` already skips.
        """
        directory = self._dir(name)
        os.makedirs(directory, exist_ok=True)
        versions = self.versions(name)
        version = (versions[-1] + 1) if versions else 1
        npz_path = os.path.join(directory, f"v{version:04d}.npz")
        json_path = os.path.join(directory, f"v{version:04d}.json")
        npz_tmp = os.path.join(directory, f".tmp-v{version:04d}.npz")
        json_tmp = os.path.join(directory, f".tmp-v{version:04d}.json")
        try:
            if self.fault_plan is not None:
                self.fault_plan.io_error("registry", "publish")
            save_state_dict(state, npz_tmp)
            meta = {
                "name": name,
                "version": version,
                "n_chips": int(n_chips),
                "network": network or {},
                "metadata": metadata or {},
                "created_unix": time.time(),
                "weights_sha256": _sha256_file(npz_tmp),
            }
            with open(json_tmp, "w") as fh:
                json.dump(meta, fh, indent=2, sort_keys=True)
            os.replace(json_tmp, json_path)
            os.replace(npz_tmp, npz_path)
        except BaseException:
            # Leave nothing visible: drop temporaries and an orphaned
            # metadata file (the npz rename is the commit point).
            for stray in (npz_tmp, json_tmp):
                if os.path.exists(stray):
                    os.unlink(stray)
            if os.path.exists(json_path) and not os.path.exists(npz_path):
                os.unlink(json_path)
            raise
        return version

    def publish_partitioner(
        self,
        name: str,
        partitioner: RLPartitioner,
        metadata: "dict | None" = None,
    ) -> int:
        """Publish a live partitioner's weights, capturing its architecture."""
        return self.publish(
            name,
            partitioner.state_dict(),
            n_chips=partitioner.n_chips,
            network=_network_meta(
                partitioner.config, partitioner.topology is not None
            ),
            metadata=metadata,
        )

    def load(self, name: str, version: "int | None" = None) -> tuple:
        """``(state_dict, meta)`` for a checkpoint (``None`` = latest).

        Verifies the weights checksum recorded at publish time: a
        bit-flipped or truncated ``.npz`` is reported as a
        :class:`RegistryError` (the serving layer degrades on it), never a
        crash or silently wrong weights.
        """
        name, version = self.resolve(name, version)
        directory = self._dir(name)
        npz_path = os.path.join(directory, f"v{version:04d}.npz")
        meta_path = os.path.join(directory, f"v{version:04d}.json")
        if self.fault_plan is not None:
            self.fault_plan.io_error("registry", "load")
        meta: dict = {}
        if os.path.exists(meta_path):
            with open(meta_path) as fh:
                meta = json.load(fh)
        expected = meta.get("weights_sha256")
        if expected is not None and _sha256_file(npz_path) != expected:
            err = RegistryError(
                f"checkpoint {name}@{version} is corrupt: weights checksum "
                "mismatch (re-publish it)"
            )
            err.degradable = True
            raise err
        try:
            state = load_state_dict_file(npz_path)
        except (OSError, ValueError) as exc:
            err = RegistryError(
                f"checkpoint {name}@{version} failed to load: {exc}"
            )
            err.degradable = True
            raise err from None
        return state, meta


def default_serving_config(precision: str = "float64") -> RLPartitionerConfig:
    """Network/search configuration for untrained serving partitioners.

    Matches the CLI's interactive sizing (64x4: fast to build and evaluate)
    rather than the paper's full 128x8 training network; checkpointed
    policies carry their own architecture in registry metadata.
    ``precision`` selects the policy's numeric backend — a per-deployment
    invariant (like the service seed), deliberately *not* recorded in
    checkpoint metadata: weights are precision-portable and restore into
    whatever backend the serving partitioner runs.
    """
    return RLPartitionerConfig(
        hidden=64,
        n_sage_layers=4,
        precision=precision,
        ppo=PPOConfig(n_rollouts=10, n_minibatches=2, n_epochs=4),
    )


class WarmPartitionerPool:
    """LRU of live :class:`RLPartitioner` instances for the serving path.

    Keyed by ``(checkpoint name, version, n_chips, constraint semantics)``:
    everything that changes the network architecture or the solver/feature
    mode.  ``get`` returns ``(partitioner, cold)`` where ``cold`` marks a
    fresh build (+ weight load) — the serving metrics' cold/warm split.

    Weight-load discipline: a pool hit calls
    :meth:`RLPartitioner.install_checkpoint` with the resolved tag, which
    is a no-op while the weights are untouched — so a request stream
    against one checkpoint loads weights exactly once (``weight_loads``
    counts the actual loads, pinned by tests).
    """

    def __init__(
        self,
        registry: "CheckpointRegistry | None" = None,
        capacity: int = 4,
        seed: int = 0,
        config: "RLPartitionerConfig | None" = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.registry = registry
        self.capacity = int(capacity)
        self.seed = int(seed)
        self.config = config or default_serving_config()
        self._pool: "OrderedDict[tuple, RLPartitioner]" = OrderedDict()
        # Resolved checkpoint states kept alive with their partitioner so a
        # warm hit can re-install without touching the registry directory.
        self._states: "dict[tuple, tuple]" = {}
        self.builds = 0
        self.weight_loads = 0

    def __len__(self) -> int:
        return len(self._pool)

    def resolve_checkpoint(
        self, checkpoint: "str | None", version: "int | None" = None
    ) -> "tuple | None":
        """Normalise a request's checkpoint spec to ``(name, version)``."""
        if checkpoint is None:
            return None
        if self.registry is None:
            raise RegistryError(
                "service has no checkpoint registry configured; "
                "pass registry_path / a CheckpointRegistry"
            )
        return self.registry.resolve(checkpoint, version)

    def _build(self, key: tuple, n_chips: int, topology) -> RLPartitioner:
        ckpt = key[0]
        rl_topology = (
            None if topology is None or topology.is_total_order else topology
        )
        if ckpt is None:
            partitioner = RLPartitioner(
                n_chips, config=self.config, rng=self.seed, topology=rl_topology
            )
        else:
            if self.registry is None:
                raise RegistryError(
                    "service has no checkpoint registry configured; "
                    "pass registry_path / a CheckpointRegistry"
                )
            state, meta = self.registry.load(*ckpt)
            net = meta.get("network", {})
            meta_chips = meta.get("n_chips")
            if meta_chips is not None and int(meta_chips) != n_chips:
                raise RegistryError(
                    f"checkpoint {ckpt[0]}@{ckpt[1]} was trained for "
                    f"{meta_chips} chips; request targets {n_chips} "
                    "(policy head width is chip-count specific)"
                )
            conditioned = bool(net.get("topology_conditioned", False))
            if conditioned and rl_topology is None:
                # A topology-conditioned network can serve any platform,
                # including the uni-ring — give it the explicit topology so
                # the feature width matches the weights.
                from repro.hardware.topology import UniRing

                rl_topology = topology if topology is not None else UniRing(n_chips)
            elif not conditioned and rl_topology is not None:
                raise RegistryError(
                    f"checkpoint {ckpt[0]}@{ckpt[1]} is a legacy uni-ring "
                    f"policy; it cannot serve topology {topology.name!r}"
                )
            config = (
                RLPartitionerConfig(
                    hidden=int(net["hidden"]),
                    n_sage_layers=int(net["n_sage_layers"]),
                    n_policy_layers=int(net["n_policy_layers"]),
                    refine_iters=int(net["refine_iters"]),
                    # Architecture comes from the checkpoint; the numeric
                    # backend is the pool's deployment-wide setting (the
                    # saved weights cast into it on load).
                    precision=self.config.precision,
                    ppo=self.config.ppo,
                )
                if net
                else self.config
            )
            partitioner = RLPartitioner(
                n_chips, config=config, rng=self.seed, topology=rl_topology
            )
            partitioner.install_checkpoint(state, tag=ckpt)
            self.weight_loads += 1
            self._states[key] = (state, ckpt)
        self.builds += 1
        return partitioner

    def get(
        self,
        n_chips: int,
        topology=None,
        checkpoint: "str | None" = None,
        version: "int | None" = None,
        resolved=_UNRESOLVED,
    ) -> tuple:
        """``(partitioner, cold)`` serving the given platform + checkpoint.

        ``resolved`` short-circuits checkpoint resolution with an already
        resolved ``(name, version)`` tuple (or ``None`` for no checkpoint):
        the serving path resolves once per request and threads the result
        here, both to skip a redundant registry directory scan and so a
        concurrent publish cannot retarget the request between its cache
        key and its weights.
        """
        ckpt = (
            resolved
            if resolved is not _UNRESOLVED
            else self.resolve_checkpoint(checkpoint, version)
        )
        key = (ckpt, int(n_chips), _topology_semantics(topology, int(n_chips)))
        partitioner = self._pool.get(key)
        if partitioner is not None:
            self._pool.move_to_end(key)
            if key in self._states:
                state, tag = self._states[key]
                if partitioner.install_checkpoint(state, tag=tag):
                    self.weight_loads += 1
            return partitioner, False
        partitioner = self._build(key, int(n_chips), topology)
        self._pool[key] = partitioner
        while len(self._pool) > self.capacity:
            evicted, _ = self._pool.popitem(last=False)
            self._states.pop(evicted, None)
        return partitioner, True

    def quantization_stats(self) -> "dict | None":
        """Per-pool-entry int8 quantization error stats for /metrics.

        ``None`` unless the pool's precision is quantized; otherwise a
        mapping from a printable pool-key label (``checkpoint@version`` or
        ``untrained``, plus chip count) to the partitioner's per-layer
        stats — worst-case dequantization error per SAGE hop, refreshed at
        every checkpoint install.
        """
        if not resolve_backend(self.config.precision).quantized:
            return None
        out = {}
        for key, partitioner in self._pool.items():
            ckpt, n_chips = key[0], key[1]
            label = (
                f"untrained/chips={n_chips}"
                if ckpt is None
                else f"{ckpt[0]}@{ckpt[1]}/chips={n_chips}"
            )
            stats = partitioner.quantization_stats()
            if stats is not None:
                out[label] = stats
        return out
