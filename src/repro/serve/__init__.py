"""Partition-as-a-service: a long-lived serving layer over the partitioner.

The paper's transferability claim — a pretrained policy produces good
partitions for unseen graphs in seconds — pays off operationally only when
the system runs as a service: weights loaded once, repeated requests
answered from a cache, metrics observable.  This package provides exactly
that, with four pieces:

* :mod:`repro.serve.fingerprint` — canonical content hashes for graphs and
  requests (insertion-order and serialisation-roundtrip invariant);
* :mod:`repro.serve.cache` — a bounded LRU mapping request fingerprints to
  bit-identical stored partitions;
* :mod:`repro.serve.registry` — named, versioned policy checkpoints on disk
  plus a warm pool of live partitioners;
* :mod:`repro.serve.service` / :mod:`repro.serve.server` — the in-process
  :class:`PartitionService` front end and its stdlib-HTTP JSON endpoint
  (CLI: ``repro serve`` / ``repro request``);
* :mod:`repro.serve.persist` — the crash-safe journal-backed variant of
  the result cache (``--cache-dir``), surviving restarts;
* :mod:`repro.serve.router` — the replicated sharded tier: a
  consistent-hash router over N shard processes with health-checked
  failover, per-shard circuit breakers, and hedged requests (CLI:
  ``repro route``).

See the "Serving invariants" and "Reliability invariants" sections of
ROADMAP.md for what may be cached, what keys it, what invalidates it, and
how the service degrades under faults.
"""

from repro.serve.cache import CachedPartition, PartitionCache
from repro.serve.persist import PersistentPartitionCache
from repro.serve.fingerprint import (
    PlatformDescriptor,
    canonical_form,
    graph_fingerprint,
    request_fingerprint,
)
from repro.serve.registry import (
    CheckpointRegistry,
    RegistryError,
    WarmPartitionerPool,
)
from repro.serve.router import (
    CircuitBreaker,
    HashRing,
    RouterConfig,
    RouterServer,
    ShardEndpoint,
    ShardRouter,
    routing_key,
    spawn_shard,
)
from repro.serve.server import (
    PartitionServer,
    fetch_metrics,
    request_from_payload,
    request_partition,
    response_to_payload,
)
from repro.serve.service import (
    PartitionRequest,
    PartitionResponse,
    PartitionService,
    ServiceConfig,
    ServiceError,
    ServiceOverloadError,
)

__all__ = [
    "CachedPartition",
    "CheckpointRegistry",
    "CircuitBreaker",
    "HashRing",
    "PartitionCache",
    "PartitionRequest",
    "PartitionResponse",
    "PartitionServer",
    "PartitionService",
    "PersistentPartitionCache",
    "PlatformDescriptor",
    "RegistryError",
    "RouterConfig",
    "RouterServer",
    "ServiceConfig",
    "ServiceError",
    "ServiceOverloadError",
    "ShardEndpoint",
    "ShardRouter",
    "WarmPartitionerPool",
    "canonical_form",
    "fetch_metrics",
    "graph_fingerprint",
    "request_from_payload",
    "request_partition",
    "request_fingerprint",
    "response_to_payload",
    "routing_key",
    "spawn_shard",
]
