"""Partition-as-a-service: the in-process request/response front end.

:class:`PartitionService` wraps the whole stack — fingerprinting, the
result cache, the checkpoint registry's warm partitioner pool, environment
construction, and the parallel pool's batched zero-shot replay — behind one
call::

    service = PartitionService()
    response = service.submit(PartitionRequest(graph=my_graph, n_chips=4))

Request lifecycle (see the "Serving invariants" section of ROADMAP.md):

1. the request is canonicalised to a content fingerprint (graph hash +
   platform descriptor + objective + cost model + sample budget + resolved
   checkpoint version);
2. a cache hit returns the bit-identical stored partition without touching
   the policy or the solver;
3. misses are grouped by (checkpoint, platform semantics), each group gets
   a warm partitioner from the pool (weights load once per checkpoint, not
   per request), and the group's searches fan over the parallel executor as
   one replay batch — each request seeded purely by its own fingerprint, so
   results are independent of batch composition and worker count;
4. results are stored in the cache and latency is recorded per source
   (``cached`` / ``warm`` / ``cold`` / ``degraded``) for the ``/metrics``
   view.

The service is thread-safe: one lock serialises submission (searches are
CPU-bound; concurrency comes from the worker pool underneath, not from
overlapping submits).

Resilience (see the "Reliability invariants" section of ROADMAP.md):

* **Admission gate** — ``max_in_flight > 0`` bounds concurrent
  submissions; excess load fails fast with
  :class:`ServiceOverloadError` (HTTP 429 + ``Retry-After`` at the
  server) instead of queueing unboundedly behind the submission lock.
* **Deadlines** — ``request_deadline`` caps a batch's wall time; a group
  whose budget is exhausted (or whose search times out) is answered by
  the degraded path rather than erroring.
* **Graceful degradation** — when policy weights cannot be loaded
  (registry IO error, corrupt checkpoint) or the search misses its
  deadline, the service falls back to the greedy heuristic baseline:
  the response carries ``source="degraded"``/``degraded=True`` and is
  **never cached**, so a later healthy request recomputes the real
  answer.
* **Crash-safe cache** — ``cache_dir`` swaps the in-memory result cache
  for :class:`repro.serve.persist.PersistentPartitionCache`, whose
  journal survives restarts.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.baselines import greedy_partition
from repro.core.environment import PartitionEnvironment
from repro.obs.metrics import Histogram, MetricsRegistry, prometheus_from_snapshot
from repro.obs.trace import Tracer, span
from repro.core.partitioner import RLPartitionerConfig, _topology_semantics
from repro.nn.backend import SERVE_PRECISIONS
from repro.graphs.graph import CompGraph
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.package import MCMPackage
from repro.hardware.simulator import PipelineSimulator
from repro.parallel.search import ParallelConfig, replay_batch
from repro.rl.features import featurize
from repro.serve.cache import CachedPartition, PartitionCache
from repro.serve.fingerprint import (
    PlatformDescriptor,
    canonical_form,
    request_fingerprint,
)
from repro.serve.persist import PersistentPartitionCache
from repro.serve.registry import (
    CheckpointRegistry,
    RegistryError,
    WarmPartitionerPool,
    default_serving_config,
)

#: Seed-key tag namespacing serving replays (0/1 are the training pool's).
SERVE_SEED_TAG = 2

#: How many recent per-source latencies the metrics retain for percentiles.
_LATENCY_WINDOW = 4096


class ServiceError(RuntimeError):
    """A request the service cannot fulfil (bad spec, no valid partition)."""


class ServiceOverloadError(ServiceError):
    """Admission gate rejection: too many requests already in flight.

    Carries ``retry_after`` (seconds) so transports can emit a structured
    backpressure signal (HTTP 429 + ``Retry-After``) instead of letting
    callers pile up behind the submission lock.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


@dataclass
class PartitionRequest:
    """One partitioning request.

    Attributes
    ----------
    graph:
        The workload to partition.
    n_chips:
        Package size.
    topology:
        Interconnect (:mod:`repro.hardware.topology`); ``None`` is the
        paper's uni-ring.
    objective:
        ``"throughput"`` (default) or ``"latency"``.
    cost_model:
        ``"analytical"`` (default) or ``"simulator"``.
    samples:
        Zero-shot draw budget for a cache miss (``None`` uses the service
        default).
    checkpoint / version:
        Registry checkpoint supplying policy weights (``None`` serves the
        untrained policy; ``version=None`` resolves to the latest).
    """

    graph: CompGraph
    n_chips: int = 4
    topology: object = None
    objective: str = "throughput"
    cost_model: str = "analytical"
    samples: "int | None" = None
    checkpoint: "str | None" = None
    version: "int | None" = None


@dataclass(frozen=True)
class PartitionResponse:
    """The service's reply for one request.

    ``source`` records how the result was produced: ``"cached"`` (hit),
    ``"warm"`` (searched on an already-live partitioner), ``"cold"``
    (the partitioner had to be built and its weights loaded first), or
    ``"degraded"`` (heuristic fallback; see ``degraded``).

    ``degraded=True`` marks a best-effort answer from the greedy
    heuristic baseline, produced because the real search could not run
    (checkpoint load failure, deadline exhausted, worker pool gave up);
    ``degraded_reason`` says why.  Degraded results are never cached.
    """

    fingerprint: str
    assignment: np.ndarray
    improvement: float
    objective: str
    cached: bool
    source: str
    latency_ms: float
    samples: int
    n_chips: int
    checkpoint: "tuple | None" = None
    throughput: float = 0.0
    latency_us: float = 0.0
    degraded: bool = False
    degraded_reason: str = ""


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of one :class:`PartitionService` instance.

    Reliability knobs (all off by default, preserving prior behaviour):

    ``max_in_flight``
        ``> 0`` bounds concurrent submissions; excess raises
        :class:`ServiceOverloadError` (transports map it to HTTP 429).
    ``request_deadline``
        Wall-clock budget in seconds for one ``submit`` /
        ``submit_many`` call; an exhausted budget serves the degraded
        heuristic answer instead of blocking.
    ``retry_after_s``
        The hint carried by overload rejections.
    ``cache_dir``
        When set, results persist to a crash-safe journal there
        (:class:`repro.serve.persist.PersistentPartitionCache`).
    ``task_deadline`` / ``max_respawns``
        Forwarded to the worker pool's supervisor: stuck-worker
        detection and the respawn budget.
    ``fault_plan``
        Optional :class:`repro.reliability.FaultPlan` threaded into the
        registry, cache, and worker pool (tests/chaos only).
    ``shard_id``
        Identity of this process in a replicated deployment (set by the
        router's shard spawner); echoed in ``/metrics`` and ``/healthz``
        so probes and dashboards can tell shards apart.
    ``precision``
        Numeric backend of the warm pool's policy networks (``"float64"``
        / ``"float32"`` / ``"int8"``, see :mod:`repro.nn.backend`).  Like
        ``seed`` this is a per-deployment invariant, not part of the
        request fingerprint: all replicas (and any persisted
        cache/journal) of one deployment must agree on it, since the
        float32 fast path is tolerance-equivalent, not bit-identical, to
        float64 (and int8 is argmax-equivalent).  ``"int8"`` is
        inference-only — this serving config is its sole entry point.
        Ignored when an explicit ``partitioner_config`` is passed (that
        config's own ``precision`` wins).

    Admission batching (``batch_window_ms > 0`` enables coalescing):

    ``batch_window_ms``
        How long :meth:`PartitionService.submit` may hold a cache miss
        open for other concurrent submissions to join, so misses landing
        together run as **one** ``replay_batch`` fan-out instead of one
        per connection.  Fingerprint seeding makes results independent of
        batch composition, so coalescing is purely a throughput win.
        ``0`` (default) keeps the unbatched path byte-for-byte.
    ``batch_max_size``
        Immediate-flush cap: a window holding this many requests flushes
        without waiting out the remainder of the window.

    Per-source rate limiting (``rate_limit_rps > 0`` enables it):

    ``rate_limit_rps`` / ``rate_limit_burst``
        Token-bucket admission per client source id (the transport's
        ``X-Repro-Source`` header, falling back to the peer address).
        Over-limit submissions raise :class:`ServiceOverloadError`
        (HTTP 429 + ``Retry-After``), counted as ``rate_limited`` in
        ``/metrics`` — separate from the ``throttled`` in-flight gate.

    Request tracing (``trace_dir`` enables it; see ROADMAP "Observability
    invariants"):

    ``trace_dir``
        Directory receiving per-process ``trace-<pid>.jsonl`` files, one
        line per completed sampled trace.  ``None`` (default) disables
        tracing entirely — the hot path then sees only a context-var read.
    ``trace_sample``
        Probability a fresh trace is written, decided by a deterministic
        hash of the trace id (never an RNG).  Requests carrying an
        ``X-Repro-Trace`` header are always sampled.
    ``trace_slow_ms``
        Traces slower than this are written even when the sampler dropped
        them (``0`` disables the slow-force).
    """

    cache_capacity: int = 256
    registry_path: "str | None" = None
    pool_capacity: int = 4
    n_workers: int = 1
    default_samples: int = 16
    seed: int = 0
    timeout: float = 600.0
    max_in_flight: int = 0
    request_deadline: "float | None" = None
    retry_after_s: float = 1.0
    cache_dir: "str | None" = None
    task_deadline: "float | None" = None
    max_respawns: int = 3
    fault_plan: "object | None" = None
    shard_id: "str | None" = None
    precision: str = "float64"
    batch_window_ms: float = 0.0
    batch_max_size: int = 8
    rate_limit_rps: float = 0.0
    rate_limit_burst: int = 0
    trace_dir: "str | None" = None
    trace_sample: float = 1.0
    trace_slow_ms: float = 0.0

    def __post_init__(self):
        if self.precision not in SERVE_PRECISIONS:
            raise ValueError(
                f"precision must be one of {SERVE_PRECISIONS}"
            )
        if self.default_samples < 1:
            raise ValueError("default_samples must be >= 1")
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.max_in_flight < 0:
            raise ValueError("max_in_flight must be >= 0 (0 disables the gate)")
        if self.request_deadline is not None and self.request_deadline <= 0:
            raise ValueError("request_deadline must be positive when set")
        if self.retry_after_s < 0:
            raise ValueError("retry_after_s must be >= 0")
        if self.batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0 (0 disables coalescing)")
        if self.batch_max_size < 1:
            raise ValueError("batch_max_size must be >= 1")
        if self.rate_limit_rps < 0:
            raise ValueError("rate_limit_rps must be >= 0 (0 disables the limiter)")
        if self.rate_limit_burst < 0:
            raise ValueError("rate_limit_burst must be >= 0")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ValueError("trace_sample must be in [0, 1]")
        if self.trace_slow_ms < 0:
            raise ValueError("trace_slow_ms must be >= 0 (0 disables slow-force)")


#: The response-source classes ``/metrics`` breaks requests down by.
_SOURCES = ("cached", "warm", "cold", "degraded")


class ServiceMetrics:
    """The ``/metrics`` view, backed by the typed registry primitives.

    Counters and histograms live in a :class:`repro.obs.MetricsRegistry`
    (so ``?format=prometheus`` renders the *same* objects the JSON view
    reads); latency percentiles come from bounded-memory log-bucketed
    histograms instead of raw reservoirs.  The JSON ``snapshot()`` shape is
    byte-compatible with the pre-registry implementation (pinned by the
    serve tests), except that non-empty percentile blocks additionally
    carry ``p99_ms``.

    Never guarded by the service's submission lock: a monitoring scrape
    must not block behind an in-flight search.
    """

    def __init__(self, registry: "MetricsRegistry | None" = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self.started = time.perf_counter()
        self.started_unix = time.time()
        self._requests_total = reg.counter("requests_total")
        self._errors = reg.counter("errors_total")
        self._throttled = reg.counter("throttled_total")
        self._rate_limited = reg.counter("rate_limited_total")
        self._by_source = {
            source: reg.counter(f"requests_by_source_{source}")
            for source in _SOURCES
        }
        self._latency_ms = {
            source: reg.histogram(f"request_latency_ms_{source}")
            for source in _SOURCES
        }
        self._degraded_at = deque(maxlen=_LATENCY_WINDOW)
        # Admission-batching observability: flushed-batch sizes (kept as an
        # exact small-integer histogram — batch sizes are bounded by
        # ``batch_max_size``, log-bucketing them would only blur the view),
        # per-member window waits, and how many requests actually shared a
        # flush with at least one other (``coalesced_requests``).
        self._batches_flushed = reg.counter("batches_flushed_total")
        self._coalesced_requests = reg.counter("coalesced_requests_total")
        self._batch_sizes: dict = {}
        self._batch_wait_ms = reg.histogram("batch_wait_ms")
        self._lock = threading.Lock()

    # Read-only views kept for callers that used the plain attributes.
    @property
    def requests_total(self) -> int:
        return self._requests_total.value

    @property
    def errors(self) -> int:
        return self._errors.value

    @property
    def throttled(self) -> int:
        return self._throttled.value

    @property
    def rate_limited(self) -> int:
        return self._rate_limited.value

    @property
    def by_source(self) -> dict:
        return {source: c.value for source, c in self._by_source.items()}

    def record(self, source: str, latency_ms: float) -> None:
        self._requests_total.inc()
        self._by_source[source].inc()
        self._latency_ms[source].observe(float(latency_ms))
        if source == "degraded":
            with self._lock:
                self._degraded_at.append(time.monotonic())

    def degraded_recent(self, window_s: float = 60.0) -> int:
        """Degraded serves within the last ``window_s`` seconds — the
        readiness probe's "currently limping" signal, as opposed to the
        lifetime ``by_source`` counter."""
        cutoff = time.monotonic() - window_s
        with self._lock:
            return sum(1 for t in self._degraded_at if t >= cutoff)

    def record_error(self) -> None:
        self._errors.inc()

    def record_throttled(self) -> None:
        self._throttled.inc()

    def record_rate_limited(self) -> None:
        self._rate_limited.inc()

    def record_batch(self, size: int, waits_ms) -> None:
        """One coalescing flush of ``size`` members with the given
        per-member window waits (milliseconds spent parked before the
        flush started)."""
        self._batches_flushed.inc()
        if size >= 2:
            self._coalesced_requests.inc(int(size))
        with self._lock:
            self._batch_sizes[int(size)] = self._batch_sizes.get(int(size), 0) + 1
        for wait in waits_ms:
            self._batch_wait_ms.observe(float(wait))

    @staticmethod
    def _percentiles(hist: Histogram) -> dict:
        if hist.count == 0:
            return {"count": 0, "p50_ms": None, "p95_ms": None}
        return {
            "count": hist.count,
            "p50_ms": hist.percentile(50),
            "p95_ms": hist.percentile(95),
            "p99_ms": hist.percentile(99),
        }

    def snapshot(self) -> dict:
        uptime = max(time.perf_counter() - self.started, 1e-9)
        requests_total = self._requests_total.value
        with self._lock:
            batch_sizes = dict(sorted(self._batch_sizes.items()))
        return {
            "requests_total": requests_total,
            "errors": self._errors.value,
            "throttled": self._throttled.value,
            "rate_limited": self._rate_limited.value,
            "uptime_s": uptime,
            "requests_per_sec": requests_total / uptime,
            "by_source": self.by_source,
            "latency_ms": {
                source: self._percentiles(hist)
                for source, hist in self._latency_ms.items()
            },
            "batching": {
                "batches_flushed": self._batches_flushed.value,
                "coalesced_requests": self._coalesced_requests.value,
                "batch_size_histogram": {
                    str(k): v for k, v in batch_sizes.items()
                },
                "batch_wait_ms": self._percentiles(self._batch_wait_ms),
            },
        }


class _TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capacity ``burst``.

    Not self-locking — the service's admission lock guards all access.
    """

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = now

    def try_acquire(self, now: float) -> float:
        """0.0 when a token was taken; else seconds until one accrues."""
        self.tokens = min(
            self.burst, self.tokens + (now - self.stamp) * self.rate
        )
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


#: Distinct client sources the rate limiter tracks before LRU-evicting the
#: stalest bucket (an eviction only ever *grants* a fresh burst).
_RATE_LIMIT_SOURCES = 1024


class _PendingBatch:
    """One open coalescing window: requests parked waiting for the flush.

    The leader (first submitter) owns the window timer and the flush; every
    member (leader included) reads its own slot of ``results`` once
    ``done`` is set.  ``closed`` flips under the service's coalescing lock
    — after that no submission may join.
    """

    __slots__ = ("requests", "joined_at", "results", "closed", "full", "done")

    def __init__(self):
        self.requests: list = []
        self.joined_at: list = []
        self.results: list = []
        self.closed = False
        self.full = threading.Event()
        self.done = threading.Event()


def build_environment(request: PartitionRequest) -> PartitionEnvironment:
    """The environment a request describes (package + cost model + graph).

    Module-level because two layers need it: the service's search and
    degraded paths here, and the router's last-resort degraded serve
    (:mod:`repro.serve.router`), which answers from the greedy heuristic
    when every shard replica is down and has no service instance at all.
    """
    package = MCMPackage(
        n_chips=int(request.n_chips), topology=request.topology
    )
    cost_model = (
        PipelineSimulator(package)
        if request.cost_model == "simulator"
        else AnalyticalCostModel(package)
    )
    try:
        return PartitionEnvironment(
            request.graph,
            cost_model,
            int(request.n_chips),
            objective=request.objective,
        )
    except ValueError as exc:
        raise ServiceError(str(exc)) from None


def greedy_fallback(request: PartitionRequest):
    """``(assignment, evaluated sample)`` of the degraded-path heuristic.

    Raises :class:`ServiceError` when even the heuristic cannot produce a
    valid partition for the platform (the caller reports *that* together
    with why the real search was unavailable).
    """
    env = build_environment(request)
    assignment = greedy_partition(env.graph, int(request.n_chips))
    sample = env.evaluate(assignment)
    if not sample.result.valid:
        raise ServiceError(
            f"degraded fallback for graph {request.graph.name!r} is "
            f"invalid ({sample.result.failure_reason})"
        )
    return np.asarray(assignment, dtype=np.int64), sample


class PartitionService:
    """Long-lived serving front end over the partitioning stack."""

    def __init__(
        self,
        config: "ServiceConfig | None" = None,
        registry: "CheckpointRegistry | None" = None,
        partitioner_config: "RLPartitionerConfig | None" = None,
    ):
        self.config = config or ServiceConfig()
        if registry is None and self.config.registry_path is not None:
            registry = CheckpointRegistry(
                self.config.registry_path, fault_plan=self.config.fault_plan
            )
        self.registry = registry
        if self.config.cache_dir is not None:
            self.cache: PartitionCache = PersistentPartitionCache(
                self.config.cache_capacity,
                directory=self.config.cache_dir,
                fault_plan=self.config.fault_plan,
            )
        else:
            self.cache = PartitionCache(self.config.cache_capacity)
        if partitioner_config is None and self.config.precision != "float64":
            partitioner_config = default_serving_config(
                precision=self.config.precision
            )
        self.pool = WarmPartitionerPool(
            registry=registry,
            capacity=self.config.pool_capacity,
            seed=self.config.seed,
            config=partitioner_config,
        )
        self.metrics_state = ServiceMetrics()
        self.tracer = Tracer(
            trace_dir=self.config.trace_dir,
            sample=self.config.trace_sample,
            slow_ms=self.config.trace_slow_ms,
            service=(
                f"shard:{self.config.shard_id}"
                if self.config.shard_id is not None
                else "service"
            ),
        )
        self._lock = threading.Lock()
        self._admit_lock = threading.Lock()
        self._in_flight = 0
        # Per-source token buckets (rate limiting), LRU-bounded.
        self._buckets: "OrderedDict[str, _TokenBucket]" = OrderedDict()
        # Coalescing state: the currently open window, if any.
        self._coalesce_lock = threading.Lock()
        self._open_batch: "_PendingBatch | None" = None

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Submissions currently admitted (includes any waiting on the
        submission lock)."""
        return self._in_flight

    def _admit(self, source: "str | None" = None) -> None:
        limit = self.config.max_in_flight
        rate = self.config.rate_limit_rps
        with self._admit_lock:
            if rate > 0:
                # The per-source bucket is checked before the in-flight
                # gate: a source over its budget must not consume capacity
                # other clients could use.  ``None`` sources (in-process
                # callers, transports that send no id) share one bucket.
                with span("admission.rate_limit", source=source or ""):
                    key = source if source is not None else ""
                    now = time.monotonic()
                    bucket = self._buckets.get(key)
                    if bucket is None:
                        burst = max(self.config.rate_limit_burst, 1)
                        bucket = _TokenBucket(rate, burst, now)
                        self._buckets[key] = bucket
                        while len(self._buckets) > _RATE_LIMIT_SOURCES:
                            self._buckets.popitem(last=False)
                    self._buckets.move_to_end(key)
                    wait = bucket.try_acquire(now)
                    if wait > 0.0:
                        self.metrics_state.record_rate_limited()
                        raise ServiceOverloadError(
                            f"source {source or 'anonymous'!r} over its rate "
                            f"limit ({rate:g} req/s); retry after {wait:.3g}s",
                            retry_after=wait,
                        )
            with span("admission.in_flight", in_flight=self._in_flight):
                if limit > 0 and self._in_flight >= limit:
                    self.metrics_state.record_throttled()
                    raise ServiceOverloadError(
                        f"service over capacity: {self._in_flight} requests "
                        f"in flight (max_in_flight={limit}); retry after "
                        f"{self.config.retry_after_s:g}s",
                        retry_after=self.config.retry_after_s,
                    )
                self._in_flight += 1

    def _release(self) -> None:
        with self._admit_lock:
            self._in_flight -= 1

    def close(self) -> None:
        """Flush persistent state (compacts the journal when one exists)."""
        close = getattr(self.cache, "close", None)
        if close is not None:
            close()
        self.tracer.close()

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    def _validate(self, request: PartitionRequest) -> None:
        if request.objective not in ("throughput", "latency"):
            raise ServiceError(
                f"objective must be 'throughput' or 'latency', "
                f"got {request.objective!r}"
            )
        if request.cost_model not in ("analytical", "simulator"):
            raise ServiceError(
                f"cost_model must be 'analytical' or 'simulator', "
                f"got {request.cost_model!r}"
            )
        if request.n_chips < 1:
            raise ServiceError("n_chips must be >= 1")
        samples = self._samples(request)
        if samples < 1:
            raise ServiceError("samples must be >= 1")
        if (
            request.topology is not None
            and request.topology.n_chips != request.n_chips
        ):
            raise ServiceError(
                f"topology is for {request.topology.n_chips} chips, request "
                f"targets {request.n_chips}"
            )

    def _samples(self, request: PartitionRequest) -> int:
        return int(
            self.config.default_samples
            if request.samples is None
            else request.samples
        )

    def fingerprint(self, request: PartitionRequest) -> str:
        """The request's cache key (checkpoint version resolved)."""
        return self._fingerprint_resolved(request)[0]

    def _fingerprint_resolved(self, request: PartitionRequest) -> tuple:
        """``(fingerprint, resolved checkpoint, canonical node order)`` —
        one registry resolve and one graph canonicalisation per request,
        threaded through the whole submission path.  The node order is
        what lets a cache hit be remapped onto a same-content graph with
        permuted node ids (:meth:`CachedPartition.aligned_assignment`)."""
        self._validate(request)
        try:
            ckpt = self.pool.resolve_checkpoint(request.checkpoint, request.version)
        except KeyError as exc:
            raise ServiceError(str(exc)) from None
        graph_fp, order = canonical_form(request.graph)
        fp = request_fingerprint(
            graph_fp,
            PlatformDescriptor.of(request.n_chips, request.topology),
            objective=request.objective,
            cost_model=request.cost_model,
            samples=self._samples(request),
            checkpoint=ckpt,
        )
        return fp, ckpt, order

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self, request: PartitionRequest, source: "str | None" = None
    ) -> PartitionResponse:
        """Serve one request (cache hit or zero-shot search).

        With ``batch_window_ms > 0``, concurrent submissions coalesce:
        this call may park for up to the window so cache misses arriving
        together run as one ``replay_batch`` fan-out.  Fingerprint seeding
        makes the answer identical either way — coalescing only changes
        wall-clock, never results.
        """
        if self.config.batch_window_ms <= 0:
            return self.submit_many([request], source=source)[0]
        return self._submit_coalesced(request, source)

    def submit_many(
        self,
        requests: "list[PartitionRequest]",
        source: "str | None" = None,
    ) -> "list[PartitionResponse]":
        """Serve a batch: hits answered inline, misses fanned over the pool.

        Misses sharing a (checkpoint, platform-semantics) group run as one
        :func:`repro.parallel.replay_batch`; each request's search is seeded
        by its own fingerprint, so the returned partition for a given
        request is identical whether it arrives alone or in any batch.
        Duplicate requests inside one batch are deduplicated: the search
        runs once and the copies are served from the fresh cache entry.

        An invalid or unsatisfiable request does not abort the rest: every
        other member still runs (and its result is cached) before a single
        :class:`ServiceError` summarising the failures is raised — so a
        retry without the failing requests is answered entirely from
        cache.  Members processed before such a raise are still counted in
        the metrics: their work really ran and their results are retained.

        With ``max_in_flight`` set, a submission arriving while that many
        are already admitted raises :class:`ServiceOverloadError`
        immediately (no queueing); with ``request_deadline`` set, the
        batch's wall clock starts here — groups that can't finish in
        budget are served degraded heuristic answers.
        """
        t_batch = time.perf_counter()
        self._admit(source)
        try:
            with self._lock:
                try:
                    return self._submit_locked(list(requests), t_batch)
                except ServiceError:
                    self.metrics_state.record_error()
                    raise
        finally:
            self._release()

    # ------------------------------------------------------------------
    # Cross-connection coalescing
    # ------------------------------------------------------------------
    def _submit_coalesced(
        self, request: PartitionRequest, source: "str | None"
    ) -> PartitionResponse:
        """Join (or open) the current coalescing window and await its flush.

        The first submission in a window is the *leader*: it waits out
        ``batch_window_ms`` (or until ``batch_max_size`` members joined),
        closes the window, and runs the whole batch as one locked
        submission.  Followers park on the batch's ``done`` event and read
        their own slot.  Admission (rate limit + in-flight gate) happens
        per member *before* joining, so an over-limit client is rejected
        without delaying the window.
        """
        t_join = time.perf_counter()
        self._admit(source)
        try:
            with self._coalesce_lock:
                batch = self._open_batch
                leader = batch is None or batch.closed
                if leader:
                    batch = _PendingBatch()
                    self._open_batch = batch
                index = len(batch.requests)
                batch.requests.append(request)
                batch.joined_at.append(t_join)
                if len(batch.requests) >= self.config.batch_max_size:
                    batch.closed = True
                    if self._open_batch is batch:
                        self._open_batch = None
                    batch.full.set()
            if leader:
                with span("admission.batch_wait", role="leader"):
                    batch.full.wait(timeout=self.config.batch_window_ms / 1e3)
                with self._coalesce_lock:
                    batch.closed = True
                    if self._open_batch is batch:
                        self._open_batch = None
                try:
                    self._flush_batch(batch)
                finally:
                    batch.done.set()
            else:
                with span("admission.batch_wait", role="follower"):
                    batch.done.wait()
            result = batch.results[index]
            if isinstance(result, BaseException):
                raise result
            return result
        finally:
            self._release()

    def _flush_batch(self, batch: _PendingBatch) -> None:
        """Run one closed window as a single locked submission.

        Per-member outcomes: successful members get their response,
        failed members get a :class:`ServiceError` carrying *their own*
        message — member isolation identical to sequential submission
        (a failure never contaminates siblings, PR-4/6 invariants).
        """
        t_flush = time.perf_counter()
        n = len(batch.requests)
        batch.results = [None] * n
        try:
            with self._lock:
                responses, failures = self._submit_locked_core(
                    list(batch.requests), t_flush
                )
            for i in range(n):
                batch.results[i] = responses[i]
            for indices, message in failures:
                error = ServiceError(message)
                for i in indices:
                    batch.results[i] = error
                    self.metrics_state.record_error()
            for i in range(n):
                if batch.results[i] is None:
                    batch.results[i] = ServiceError(
                        "internal: batch member produced no result"
                    )
        except BaseException as exc:
            for i in range(n):
                if batch.results[i] is None:
                    batch.results[i] = exc
        self.metrics_state.record_batch(
            n, [(t_flush - t) * 1e3 for t in batch.joined_at]
        )

    def _submit_locked(self, requests, t_batch: float) -> list:
        responses, failures = self._submit_locked_core(requests, t_batch)
        if failures:
            raise ServiceError("; ".join(message for _, message in failures))
        return responses

    def _submit_locked_core(self, requests, t_batch: float) -> tuple:
        """``(responses, failures)`` for one locked batch.

        ``failures`` is a list of ``(member indices, message)`` tuples so
        callers can either combine them into one raise
        (:meth:`submit_many`'s contract) or hand each member its own
        error (the coalesced path's member isolation)."""
        responses: list = [None] * len(requests)
        groups: dict = {}
        in_flight: set = set()
        duplicates: list = []
        failures: list = []
        failed_fps: dict = {}
        degraded_fps: dict = {}
        for i, request in enumerate(requests):
            t0 = time.perf_counter()
            try:
                with span("fingerprint", graph=request.graph.name):
                    fp, ckpt, order = self._fingerprint_resolved(request)
            except ServiceError as exc:
                # An invalid member must not abort its siblings (the
                # batch-isolation contract of submit_many).
                failures.append(([i], str(exc)))
                continue
            if fp in in_flight:
                # Same fingerprint already queued in this batch: search
                # once, serve this copy from the entry it will store.  No
                # cache probe here — the primary's miss is already counted.
                duplicates.append((i, request, fp, ckpt, order))
                continue
            with span("cache.lookup") as _sp:
                entry = self.cache.get(fp)
                _sp.set(hit=entry is not None)
            if entry is not None:
                latency_ms = (time.perf_counter() - t0) * 1e3
                self.metrics_state.record("cached", latency_ms)
                responses[i] = self._response_from_entry(
                    request, fp, ckpt, order, entry, latency_ms
                )
                continue
            in_flight.add(fp)
            group_key = (
                ckpt,
                int(request.n_chips),
                _topology_semantics(request.topology, int(request.n_chips)),
            )
            groups.setdefault(group_key, []).append((i, request, fp, ckpt, order))

        fresh: dict = {}
        for members in groups.values():
            group_failures = self._run_group(
                members, responses, fresh, t_batch, degraded_fps
            )
            failures.extend(group_failures)
            for indices, message in group_failures:
                for member in members:
                    if member[0] in indices:
                        failed_fps.setdefault(member[2], message)
        for i, request, fp, ckpt, order in duplicates:
            # Served from the entry the primary stored this batch (held in
            # ``fresh`` so a tiny cache whose LRU already evicted it can't
            # leave the duplicate unanswered).  The cache-serve step is
            # timed on its own: the duplicate's wait on the primary's
            # search is already accounted under the primary's cold/warm
            # record, and folding it into the "cached" class would corrupt
            # the sub-millisecond hit percentiles.
            t0 = time.perf_counter()
            entry = fresh.get(fp)
            if entry is None:
                if fp in degraded_fps:
                    # The primary was answered degraded (nothing cached to
                    # copy) — degrade this duplicate the same way.
                    failure = self._serve_degraded(
                        (i, request, fp, ckpt, order),
                        degraded_fps[fp],
                        responses,
                        t0,
                    )
                    if failure is not None:
                        failures.append(([i], failure))
                elif fp in failed_fps:
                    # The primary failed; this copy fails with the same
                    # message (per-member delivery on the coalesced path;
                    # submit_many folds it into the combined raise).
                    failures.append(([i], failed_fps[fp]))
                continue
            latency_ms = (time.perf_counter() - t0) * 1e3
            self.metrics_state.record("cached", latency_ms)
            responses[i] = self._response_from_entry(
                request, fp, ckpt, order, entry, latency_ms
            )
        return responses, failures

    def _deadline_left(self, t_batch: float) -> "float | None":
        """Seconds of ``request_deadline`` budget remaining (``None`` =
        no deadline configured; may be <= 0 when already exhausted)."""
        if self.config.request_deadline is None:
            return None
        return self.config.request_deadline - (time.perf_counter() - t_batch)

    def _run_group(
        self,
        members,
        responses,
        fresh: "dict | None" = None,
        t_batch: "float | None" = None,
        degraded_fps: "dict | None" = None,
    ) -> "list[tuple]":
        """Search one miss group; returns ``(indices, message)`` failure
        tuples (never raises past a member, so sibling requests always
        complete).  Stored entries are also recorded into ``fresh`` for
        in-batch duplicates.

        Latency accounting starts at *group* start, so a member's cold/
        warm record covers its own group's work — earlier groups in the
        same batch don't inflate it (members within a group share the
        batch's wall time, which is what each of them actually waited).

        Degradation: a group whose deadline budget is already spent,
        whose checkpoint bytes can't be loaded, or whose search times
        out/fails is answered by :meth:`_serve_degraded` for every
        member instead of erroring (client errors still fail)."""
        t_group = time.perf_counter()
        if t_batch is None:
            t_batch = t_group
        first, first_ckpt = members[0][1], members[0][3]
        left = self._deadline_left(t_batch)
        if left is not None and left <= 0:
            return self._degrade_group(
                members, "request deadline exhausted before search",
                responses, t_group, degraded_fps,
            )
        try:
            # Hand the pool the *already resolved* (name, version) pair,
            # not the raw request spec: a checkpoint published between
            # fingerprinting and here must not shift a version=None
            # request to different weights than its cache key claims (and
            # the pool then skips a redundant registry re-resolve).
            with span("checkpoint.install") as _sp:
                partitioner, cold = self.pool.get(
                    first.n_chips,
                    topology=first.topology,
                    resolved=first_ckpt,
                )
                _sp.set(cold=cold)
        except RegistryError as exc:
            if not exc.degradable:
                return [([m[0] for m in members], str(exc))]
            return self._degrade_group(
                members, f"checkpoint unusable ({exc})",
                responses, t_group, degraded_fps,
            )
        except OSError as exc:
            return self._degrade_group(
                members, f"checkpoint load failed ({exc})",
                responses, t_group, degraded_fps,
            )
        except KeyError as exc:
            return [([m[0] for m in members], str(exc))]
        source = "cold" if cold else "warm"
        failures: list = []
        runnable, envs, feats, seeds, budgets = [], [], [], [], []
        for member in members:
            request, fp = member[1], member[2]
            try:
                env = self._build_env(request)
            except ServiceError as exc:
                failures.append(([member[0]], str(exc)))
                continue
            runnable.append(member)
            envs.append(env)
            feats.append(featurize(env.graph, partitioner.effective_topology(env)))
            seeds.append((self.config.seed, SERVE_SEED_TAG, int(fp[:15], 16)))
            budgets.append(self._samples(request))
        members = runnable
        if not members:
            return failures
        timeout = self.config.timeout
        left = self._deadline_left(t_batch)
        if left is not None:
            # The search may use whatever deadline budget the batch still
            # has (earlier groups included); a late timeout degrades
            # rather than errors.
            timeout = min(timeout, max(left, 0.05))
        try:
            with span("search.replay_batch", n_requests=len(envs)):
                results = replay_batch(
                    partitioner,
                    envs,
                    budgets,
                    seeds,
                    config=ParallelConfig(
                        n_workers=self.config.n_workers,
                        seed=0,
                        timeout=timeout,
                        task_deadline=self.config.task_deadline,
                        max_respawns=self.config.max_respawns,
                        fault_plan=self.config.fault_plan,
                    ),
                    features=feats,
                )
        except TimeoutError:
            failures.extend(
                self._degrade_group(
                    members,
                    f"search exceeded its deadline ({timeout:.3g}s)",
                    responses, t_group, degraded_fps,
                )
            )
            return failures
        except RuntimeError as exc:
            failures.extend(
                self._degrade_group(
                    members, f"search worker pool failed ({exc})",
                    responses, t_group, degraded_fps,
                )
            )
            return failures
        for (i, request, fp, ckpt, order), env, result in zip(members, envs, results):
            if result.best_assignment is None:
                failures.append((
                    [i],
                    f"no valid partition found for graph "
                    f"{request.graph.name!r} within {self._samples(request)} "
                    "samples (raise the budget or relax the platform)",
                ))
                continue
            check = env.evaluate(result.best_assignment)
            entry = CachedPartition(
                fingerprint=fp,
                assignment=result.best_assignment,
                improvement=float(result.best_improvement),
                node_order=order,
                objective=request.objective,
                throughput=float(check.result.throughput),
                latency_us=float(check.result.latency_us),
                metadata={
                    "samples": self._samples(request),
                    "source": source,
                    "graph": request.graph.name,
                },
            )
            self.cache.put(fp, entry)
            if fresh is not None:
                fresh[fp] = entry
            latency_ms = (time.perf_counter() - t_group) * 1e3
            self.metrics_state.record(source, latency_ms)
            responses[i] = self._response_from_entry(
                request, fp, ckpt, order, entry, latency_ms,
                cached=False, source=source,
            )
        return failures

    def _degrade_group(
        self, members, reason, responses, t_start, degraded_fps
    ) -> "list[tuple]":
        """Answer every group member with the heuristic fallback."""
        failures = []
        for member in members:
            if degraded_fps is not None:
                degraded_fps[member[2]] = reason
            failure = self._serve_degraded(member, reason, responses, t_start)
            if failure is not None:
                failures.append(([member[0]], failure))
        return failures

    def _serve_degraded(
        self, member, reason: str, responses, t_start: float
    ) -> "str | None":
        """Serve one member from the greedy heuristic baseline.

        This is the graceful-degradation path: no policy weights, no
        solver — just the fastest always-available heuristic, evaluated
        once for honest cost numbers.  The response is marked
        ``degraded`` and is **never cached**: a cache must only ever
        hold the answers the service actually promises, and a later
        request (once the fault clears) must get the real search.
        Returns a failure message instead when even the heuristic can't
        produce a valid partition."""
        i, request, fp, ckpt, order = member
        try:
            assignment, sample = greedy_fallback(request)
        except ServiceError as exc:
            return f"{exc}; real search unavailable: {reason}"
        latency_ms = (time.perf_counter() - t_start) * 1e3
        self.metrics_state.record("degraded", latency_ms)
        responses[i] = PartitionResponse(
            fingerprint=fp,
            assignment=assignment,
            improvement=float(sample.improvement),
            objective=request.objective,
            cached=False,
            source="degraded",
            latency_ms=latency_ms,
            samples=0,
            n_chips=int(request.n_chips),
            checkpoint=ckpt,
            throughput=float(sample.result.throughput),
            latency_us=float(sample.result.latency_us),
            degraded=True,
            degraded_reason=reason,
        )
        return None

    def _response_from_entry(
        self,
        request: PartitionRequest,
        fp: str,
        ckpt: "tuple | None",
        order: "np.ndarray | None",
        entry: CachedPartition,
        latency_ms: float,
        cached: bool = True,
        source: str = "cached",
    ) -> PartitionResponse:
        with span("assignment.remap"):
            assignment = entry.aligned_assignment(order)
        return PartitionResponse(
            fingerprint=fp,
            assignment=assignment,
            improvement=entry.improvement,
            objective=entry.objective,
            cached=cached,
            source=source,
            latency_ms=latency_ms,
            samples=self._samples(request),
            n_chips=int(request.n_chips),
            checkpoint=ckpt,
            throughput=entry.throughput,
            latency_us=entry.latency_us,
        )

    def _build_env(self, request: PartitionRequest) -> PartitionEnvironment:
        return build_environment(request)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> "tuple[bool, dict]":
        """Readiness probe: ``(ready, JSON payload)`` for ``GET /healthz``.

        Liveness is implied by answering at all; *readiness* is what the
        payload decides, and the transport maps ``ready=False`` to a 503 so
        a router/orchestrator can stop sending work without killing the
        process.  Not ready when:

        * **saturated** — the admission gate is full (``in_flight`` has
          reached ``max_in_flight``); new work would only earn 429s; or
        * **registry unreachable** — a *configured* checkpoint registry's
          root directory has gone missing (every checkpointed request would
          degrade).  A service deliberately running without a registry is
          ready: serving the untrained policy is its normal job.

        ``degraded_recent`` (last 60 s) rides along so probes can tell a
        healthy shard from one that is alive but limping on fallbacks, and
        ``shard_id`` / ``registry_versions`` / ``uptime_s`` make one probe
        log line attributable without a second ``/metrics`` scrape.
        """
        limit = self.config.max_in_flight
        in_flight = self._in_flight
        saturated = limit > 0 and in_flight >= limit
        registry_ok = self.registry is None or os.path.isdir(self.registry.root)
        ready = not saturated and registry_ok
        registry_versions = None
        if self.registry is not None and registry_ok:
            try:
                registry_versions = sum(
                    len(self.registry.versions(name))
                    for name in self.registry.names()
                )
            except OSError:
                registry_versions = None
        payload = {
            "ok": ready,
            "shard_id": self.config.shard_id,
            "uptime_s": time.perf_counter() - self.metrics_state.started,
            "in_flight": in_flight,
            "max_in_flight": limit,
            "saturated": saturated,
            "registry_configured": self.registry is not None,
            "registry_ok": registry_ok,
            "registry_versions": registry_versions,
            "degraded_recent": self.metrics_state.degraded_recent(60.0),
        }
        return ready, payload

    def metrics(self) -> dict:
        """JSON-safe snapshot: request counters, hit rate, latency percentiles.

        Deliberately does **not** take the submission lock (a scrape must
        not block behind an in-flight search); counters are guarded by the
        metrics' own lock, and the cache/pool gauges are simple reads whose
        worst case is being one request stale.
        """
        snap = self.metrics_state.snapshot()
        snap["cache"] = self.cache.stats()
        snap["pool"] = {
            "size": len(self.pool),
            "capacity": self.pool.capacity,
            "builds": self.pool.builds,
            "weight_loads": self.pool.weight_loads,
        }
        snap["batching"]["window_ms"] = self.config.batch_window_ms
        snap["batching"]["max_size"] = self.config.batch_max_size
        snap["reliability"] = {
            "in_flight": self._in_flight,
            "max_in_flight": self.config.max_in_flight,
            "request_deadline_s": self.config.request_deadline,
            "degraded_serves": snap["by_source"]["degraded"],
            "throttled": snap["throttled"],
            "rate_limited": snap["rate_limited"],
            "rate_limit_rps": self.config.rate_limit_rps,
        }
        quant = self.pool.quantization_stats()
        if quant is not None:
            snap["int8_quantization"] = quant
        if self.config.shard_id is not None:
            snap["shard"] = {"id": self.config.shard_id}
        if self.config.fault_plan is not None:
            counts = self.config.fault_plan.counts()
            snap["reliability"]["faults_armed"] = counts["armed"]
            snap["reliability"]["faults_fired"] = counts["fired_total"]
            snap["reliability"]["faults_by_site"] = counts["fired_by_site"]
            describe = getattr(self.config.fault_plan, "describe", None)
            if describe is not None:
                snap["reliability"]["fault_plan"] = describe()
        return snap

    def prometheus(self) -> str:
        """``GET /metrics?format=prometheus``: the registry as text exposition.

        The typed metrics (counters + log-bucketed latency histograms with
        real ``le=`` buckets) render from the same registry the JSON view
        reads; the derived subsystem gauges (cache, pool, reliability) are
        flattened from the same snapshot, so the two formats can never
        drift apart.
        """
        snap = self.metrics()
        extra = {
            key: snap[key]
            for key in ("cache", "pool", "reliability")
            if key in snap
        }
        return self.metrics_state.registry.render() + prometheus_from_snapshot(
            extra
        )
