"""Partition-as-a-service: the in-process request/response front end.

:class:`PartitionService` wraps the whole stack — fingerprinting, the
result cache, the checkpoint registry's warm partitioner pool, environment
construction, and the parallel pool's batched zero-shot replay — behind one
call::

    service = PartitionService()
    response = service.submit(PartitionRequest(graph=my_graph, n_chips=4))

Request lifecycle (see the "Serving invariants" section of ROADMAP.md):

1. the request is canonicalised to a content fingerprint (graph hash +
   platform descriptor + objective + cost model + sample budget + resolved
   checkpoint version);
2. a cache hit returns the bit-identical stored partition without touching
   the policy or the solver;
3. misses are grouped by (checkpoint, platform semantics), each group gets
   a warm partitioner from the pool (weights load once per checkpoint, not
   per request), and the group's searches fan over the parallel executor as
   one replay batch — each request seeded purely by its own fingerprint, so
   results are independent of batch composition and worker count;
4. results are stored in the cache and latency is recorded per source
   (``cached`` / ``warm`` / ``cold``) for the ``/metrics`` view.

The service is thread-safe: one lock serialises submission (searches are
CPU-bound; concurrency comes from the worker pool underneath, not from
overlapping submits).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitionerConfig, _topology_semantics
from repro.graphs.graph import CompGraph
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.package import MCMPackage
from repro.hardware.simulator import PipelineSimulator
from repro.parallel.search import ParallelConfig, replay_batch
from repro.rl.features import featurize
from repro.serve.cache import CachedPartition, PartitionCache
from repro.serve.fingerprint import (
    PlatformDescriptor,
    canonical_form,
    request_fingerprint,
)
from repro.serve.registry import CheckpointRegistry, WarmPartitionerPool

#: Seed-key tag namespacing serving replays (0/1 are the training pool's).
SERVE_SEED_TAG = 2

#: How many recent per-source latencies the metrics retain for percentiles.
_LATENCY_WINDOW = 4096


class ServiceError(RuntimeError):
    """A request the service cannot fulfil (bad spec, no valid partition)."""


@dataclass
class PartitionRequest:
    """One partitioning request.

    Attributes
    ----------
    graph:
        The workload to partition.
    n_chips:
        Package size.
    topology:
        Interconnect (:mod:`repro.hardware.topology`); ``None`` is the
        paper's uni-ring.
    objective:
        ``"throughput"`` (default) or ``"latency"``.
    cost_model:
        ``"analytical"`` (default) or ``"simulator"``.
    samples:
        Zero-shot draw budget for a cache miss (``None`` uses the service
        default).
    checkpoint / version:
        Registry checkpoint supplying policy weights (``None`` serves the
        untrained policy; ``version=None`` resolves to the latest).
    """

    graph: CompGraph
    n_chips: int = 4
    topology: object = None
    objective: str = "throughput"
    cost_model: str = "analytical"
    samples: "int | None" = None
    checkpoint: "str | None" = None
    version: "int | None" = None


@dataclass(frozen=True)
class PartitionResponse:
    """The service's reply for one request.

    ``source`` records how the result was produced: ``"cached"`` (hit),
    ``"warm"`` (searched on an already-live partitioner), or ``"cold"``
    (the partitioner had to be built and its weights loaded first).
    """

    fingerprint: str
    assignment: np.ndarray
    improvement: float
    objective: str
    cached: bool
    source: str
    latency_ms: float
    samples: int
    n_chips: int
    checkpoint: "tuple | None" = None
    throughput: float = 0.0
    latency_us: float = 0.0


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of one :class:`PartitionService` instance."""

    cache_capacity: int = 256
    registry_path: "str | None" = None
    pool_capacity: int = 4
    n_workers: int = 1
    default_samples: int = 16
    seed: int = 0
    timeout: float = 600.0

    def __post_init__(self):
        if self.default_samples < 1:
            raise ValueError("default_samples must be >= 1")
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")


class ServiceMetrics:
    """Counters + bounded latency reservoirs behind the ``/metrics`` view.

    Guarded by its own small lock, *not* the service's submission lock: a
    monitoring scrape must never block behind an in-flight search.
    """

    def __init__(self):
        self.started = time.perf_counter()
        self.started_unix = time.time()
        self.requests_total = 0
        self.errors = 0
        self.by_source = {"cached": 0, "warm": 0, "cold": 0}
        self._latency_ms = {
            source: deque(maxlen=_LATENCY_WINDOW) for source in self.by_source
        }
        self._lock = threading.Lock()

    def record(self, source: str, latency_ms: float) -> None:
        with self._lock:
            self.requests_total += 1
            self.by_source[source] += 1
            self._latency_ms[source].append(float(latency_ms))

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    @staticmethod
    def _percentiles(values: deque) -> dict:
        if not values:
            return {"count": 0, "p50_ms": None, "p95_ms": None}
        arr = np.fromiter(values, dtype=np.float64)
        return {
            "count": int(arr.size),
            "p50_ms": float(np.percentile(arr, 50)),
            "p95_ms": float(np.percentile(arr, 95)),
        }

    def snapshot(self) -> dict:
        uptime = max(time.perf_counter() - self.started, 1e-9)
        with self._lock:
            return {
                "requests_total": self.requests_total,
                "errors": self.errors,
                "uptime_s": uptime,
                "requests_per_sec": self.requests_total / uptime,
                "by_source": dict(self.by_source),
                "latency_ms": {
                    source: self._percentiles(values)
                    for source, values in self._latency_ms.items()
                },
            }


class PartitionService:
    """Long-lived serving front end over the partitioning stack."""

    def __init__(
        self,
        config: "ServiceConfig | None" = None,
        registry: "CheckpointRegistry | None" = None,
        partitioner_config: "RLPartitionerConfig | None" = None,
    ):
        self.config = config or ServiceConfig()
        if registry is None and self.config.registry_path is not None:
            registry = CheckpointRegistry(self.config.registry_path)
        self.registry = registry
        self.cache = PartitionCache(self.config.cache_capacity)
        self.pool = WarmPartitionerPool(
            registry=registry,
            capacity=self.config.pool_capacity,
            seed=self.config.seed,
            config=partitioner_config,
        )
        self.metrics_state = ServiceMetrics()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    def _validate(self, request: PartitionRequest) -> None:
        if request.objective not in ("throughput", "latency"):
            raise ServiceError(
                f"objective must be 'throughput' or 'latency', "
                f"got {request.objective!r}"
            )
        if request.cost_model not in ("analytical", "simulator"):
            raise ServiceError(
                f"cost_model must be 'analytical' or 'simulator', "
                f"got {request.cost_model!r}"
            )
        if request.n_chips < 1:
            raise ServiceError("n_chips must be >= 1")
        samples = self._samples(request)
        if samples < 1:
            raise ServiceError("samples must be >= 1")
        if (
            request.topology is not None
            and request.topology.n_chips != request.n_chips
        ):
            raise ServiceError(
                f"topology is for {request.topology.n_chips} chips, request "
                f"targets {request.n_chips}"
            )

    def _samples(self, request: PartitionRequest) -> int:
        return int(
            self.config.default_samples
            if request.samples is None
            else request.samples
        )

    def fingerprint(self, request: PartitionRequest) -> str:
        """The request's cache key (checkpoint version resolved)."""
        return self._fingerprint_resolved(request)[0]

    def _fingerprint_resolved(self, request: PartitionRequest) -> tuple:
        """``(fingerprint, resolved checkpoint, canonical node order)`` —
        one registry resolve and one graph canonicalisation per request,
        threaded through the whole submission path.  The node order is
        what lets a cache hit be remapped onto a same-content graph with
        permuted node ids (:meth:`CachedPartition.aligned_assignment`)."""
        self._validate(request)
        try:
            ckpt = self.pool.resolve_checkpoint(request.checkpoint, request.version)
        except KeyError as exc:
            raise ServiceError(str(exc)) from None
        graph_fp, order = canonical_form(request.graph)
        fp = request_fingerprint(
            graph_fp,
            PlatformDescriptor.of(request.n_chips, request.topology),
            objective=request.objective,
            cost_model=request.cost_model,
            samples=self._samples(request),
            checkpoint=ckpt,
        )
        return fp, ckpt, order

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: PartitionRequest) -> PartitionResponse:
        """Serve one request (cache hit or zero-shot search)."""
        return self.submit_many([request])[0]

    def submit_many(
        self, requests: "list[PartitionRequest]"
    ) -> "list[PartitionResponse]":
        """Serve a batch: hits answered inline, misses fanned over the pool.

        Misses sharing a (checkpoint, platform-semantics) group run as one
        :func:`repro.parallel.replay_batch`; each request's search is seeded
        by its own fingerprint, so the returned partition for a given
        request is identical whether it arrives alone or in any batch.
        Duplicate requests inside one batch are deduplicated: the search
        runs once and the copies are served from the fresh cache entry.

        An invalid or unsatisfiable request does not abort the rest: every
        other member still runs (and its result is cached) before a single
        :class:`ServiceError` summarising the failures is raised — so a
        retry without the failing requests is answered entirely from
        cache.  Members processed before such a raise are still counted in
        the metrics: their work really ran and their results are retained.
        """
        with self._lock:
            try:
                return self._submit_locked(list(requests))
            except ServiceError:
                self.metrics_state.record_error()
                raise

    def _submit_locked(self, requests) -> list:
        responses: list = [None] * len(requests)
        groups: dict = {}
        in_flight: set = set()
        duplicates: list = []
        failures: list = []
        for i, request in enumerate(requests):
            t0 = time.perf_counter()
            try:
                fp, ckpt, order = self._fingerprint_resolved(request)
            except ServiceError as exc:
                # An invalid member must not abort its siblings (the
                # batch-isolation contract of submit_many).
                failures.append(str(exc))
                continue
            if fp in in_flight:
                # Same fingerprint already queued in this batch: search
                # once, serve this copy from the entry it will store.  No
                # cache probe here — the primary's miss is already counted.
                duplicates.append((i, request, fp, ckpt, order))
                continue
            entry = self.cache.get(fp)
            if entry is not None:
                latency_ms = (time.perf_counter() - t0) * 1e3
                self.metrics_state.record("cached", latency_ms)
                responses[i] = self._response_from_entry(
                    request, fp, ckpt, order, entry, latency_ms
                )
                continue
            in_flight.add(fp)
            group_key = (
                ckpt,
                int(request.n_chips),
                _topology_semantics(request.topology, int(request.n_chips)),
            )
            groups.setdefault(group_key, []).append((i, request, fp, ckpt, order))

        fresh: dict = {}
        for members in groups.values():
            failures.extend(self._run_group(members, responses, fresh))
        for i, request, fp, ckpt, order in duplicates:
            # Served from the entry the primary stored this batch (held in
            # ``fresh`` so a tiny cache whose LRU already evicted it can't
            # leave the duplicate unanswered).  The cache-serve step is
            # timed on its own: the duplicate's wait on the primary's
            # search is already accounted under the primary's cold/warm
            # record, and folding it into the "cached" class would corrupt
            # the sub-millisecond hit percentiles.
            t0 = time.perf_counter()
            entry = fresh.get(fp)
            if entry is None:  # the primary copy failed (failure recorded)
                continue
            latency_ms = (time.perf_counter() - t0) * 1e3
            self.metrics_state.record("cached", latency_ms)
            responses[i] = self._response_from_entry(
                request, fp, ckpt, order, entry, latency_ms
            )
        if failures:
            raise ServiceError("; ".join(failures))
        return responses

    def _run_group(self, members, responses, fresh: "dict | None" = None) -> "list[str]":
        """Search one miss group; returns failure messages (never raises
        past a member, so sibling requests always complete).  Stored
        entries are also recorded into ``fresh`` for in-batch duplicates.

        Latency accounting starts at *group* start, so a member's cold/
        warm record covers its own group's work — earlier groups in the
        same batch don't inflate it (members within a group share the
        batch's wall time, which is what each of them actually waited)."""
        t_group = time.perf_counter()
        first, first_ckpt = members[0][1], members[0][3]
        try:
            # Hand the pool the *already resolved* (name, version) pair,
            # not the raw request spec: a checkpoint published between
            # fingerprinting and here must not shift a version=None
            # request to different weights than its cache key claims (and
            # the pool then skips a redundant registry re-resolve).
            partitioner, cold = self.pool.get(
                first.n_chips,
                topology=first.topology,
                resolved=first_ckpt,
            )
        except KeyError as exc:
            return [str(exc)]
        source = "cold" if cold else "warm"
        failures: list = []
        runnable, envs, feats, seeds, budgets = [], [], [], [], []
        for member in members:
            request, fp = member[1], member[2]
            try:
                env = self._build_env(request)
            except ServiceError as exc:
                failures.append(str(exc))
                continue
            runnable.append(member)
            envs.append(env)
            feats.append(featurize(env.graph, partitioner.effective_topology(env)))
            seeds.append((self.config.seed, SERVE_SEED_TAG, int(fp[:15], 16)))
            budgets.append(self._samples(request))
        members = runnable
        if not members:
            return failures
        results = replay_batch(
            partitioner,
            envs,
            budgets,
            seeds,
            config=ParallelConfig(
                n_workers=self.config.n_workers,
                seed=0,
                timeout=self.config.timeout,
            ),
            features=feats,
        )
        for (i, request, fp, ckpt, order), env, result in zip(members, envs, results):
            if result.best_assignment is None:
                failures.append(
                    f"no valid partition found for graph "
                    f"{request.graph.name!r} within {self._samples(request)} "
                    "samples (raise the budget or relax the platform)"
                )
                continue
            check = env.evaluate(result.best_assignment)
            entry = CachedPartition(
                fingerprint=fp,
                assignment=result.best_assignment,
                improvement=float(result.best_improvement),
                node_order=order,
                objective=request.objective,
                throughput=float(check.result.throughput),
                latency_us=float(check.result.latency_us),
                metadata={
                    "samples": self._samples(request),
                    "source": source,
                    "graph": request.graph.name,
                },
            )
            self.cache.put(fp, entry)
            if fresh is not None:
                fresh[fp] = entry
            latency_ms = (time.perf_counter() - t_group) * 1e3
            self.metrics_state.record(source, latency_ms)
            responses[i] = self._response_from_entry(
                request, fp, ckpt, order, entry, latency_ms,
                cached=False, source=source,
            )
        return failures

    def _response_from_entry(
        self,
        request: PartitionRequest,
        fp: str,
        ckpt: "tuple | None",
        order: "np.ndarray | None",
        entry: CachedPartition,
        latency_ms: float,
        cached: bool = True,
        source: str = "cached",
    ) -> PartitionResponse:
        return PartitionResponse(
            fingerprint=fp,
            assignment=entry.aligned_assignment(order),
            improvement=entry.improvement,
            objective=entry.objective,
            cached=cached,
            source=source,
            latency_ms=latency_ms,
            samples=self._samples(request),
            n_chips=int(request.n_chips),
            checkpoint=ckpt,
            throughput=entry.throughput,
            latency_us=entry.latency_us,
        )

    def _build_env(self, request: PartitionRequest) -> PartitionEnvironment:
        package = MCMPackage(
            n_chips=int(request.n_chips), topology=request.topology
        )
        cost_model = (
            PipelineSimulator(package)
            if request.cost_model == "simulator"
            else AnalyticalCostModel(package)
        )
        try:
            return PartitionEnvironment(
                request.graph,
                cost_model,
                int(request.n_chips),
                objective=request.objective,
            )
        except ValueError as exc:
            raise ServiceError(str(exc)) from None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """JSON-safe snapshot: request counters, hit rate, latency percentiles.

        Deliberately does **not** take the submission lock (a scrape must
        not block behind an in-flight search); counters are guarded by the
        metrics' own lock, and the cache/pool gauges are simple reads whose
        worst case is being one request stale.
        """
        snap = self.metrics_state.snapshot()
        snap["cache"] = self.cache.stats()
        snap["pool"] = {
            "size": len(self.pool),
            "capacity": self.pool.capacity,
            "builds": self.pool.builds,
            "weight_loads": self.pool.weight_loads,
        }
        return snap
