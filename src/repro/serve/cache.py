"""Fingerprint-keyed partition result cache.

A bounded LRU mapping request fingerprints to stored partitions.  Hits
return the *bit-identical* stored partition without touching the policy or
the solver — the stored assignment is frozen read-only at insertion, so a
hit can hand out the same array object safely.

Eviction is deterministic: strictly least-recently-used, where "use" is a
``get`` hit or a ``put`` (re-``put`` of an existing key refreshes both the
entry and its recency).  Two requests only share an entry when their full
request fingerprints match, and the platform descriptor is part of the
fingerprint (see :mod:`repro.serve.fingerprint`), so partitions computed
for different platforms can never collide.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class CachedPartition:
    """One stored serving result.

    Attributes
    ----------
    fingerprint:
        The request fingerprint the entry is keyed by.
    assignment:
        ``(N,)`` int64 partition in the *producing* graph's node order,
        frozen read-only.
    node_order:
        The producing graph's canonical node order
        (:func:`repro.serve.fingerprint.canonical_form`); lets a hit be
        remapped onto a same-content graph with permuted node ids (see
        :meth:`aligned_assignment`).  ``None`` restricts hits to the
        producer's exact node order.
    improvement:
        Improvement over the environment baseline (objective-dependent).
    objective:
        ``"throughput"`` or ``"latency"``.
    throughput / latency_us:
        Raw cost-model outcome of the stored partition.
    metadata:
        Free-form provenance (checkpoint, samples, source).
    """

    fingerprint: str
    assignment: np.ndarray
    improvement: float
    node_order: "np.ndarray | None" = None
    objective: str = "throughput"
    throughput: float = 0.0
    latency_us: float = 0.0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        frozen = np.array(self.assignment, dtype=np.int64)
        frozen.setflags(write=False)
        object.__setattr__(self, "assignment", frozen)
        if self.node_order is not None:
            order = np.array(self.node_order, dtype=np.int64)
            order.setflags(write=False)
            object.__setattr__(self, "node_order", order)

    def aligned_assignment(self, node_order: "np.ndarray | None") -> np.ndarray:
        """The stored partition expressed in a requester's node order.

        ``node_order`` is the requesting graph's canonical order.  When it
        matches the producer's (the common case: the identical graph), the
        stored array is returned as-is — bit-identical, no copy.  A
        same-content graph with permuted node ids gets the partition
        remapped through the canonical alignment: canonical slot ``k`` was
        produced by node ``node_order[k]`` on both sides.
        """
        if (
            node_order is None
            or self.node_order is None
            or np.array_equal(node_order, self.node_order)
        ):
            return self.assignment
        remapped = np.empty_like(self.assignment)
        remapped[node_order] = self.assignment[self.node_order]
        remapped.setflags(write=False)
        return remapped


class PartitionCache:
    """Bounded LRU of :class:`CachedPartition` keyed by fingerprint."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, CachedPartition]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Membership probe; does not touch recency or counters."""
        return key in self._entries

    def keys(self) -> list[str]:
        """Fingerprints in eviction order (least recently used first)."""
        return list(self._entries)

    def get(self, key: str) -> "CachedPartition | None":
        """Look up a fingerprint; a hit refreshes its recency."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, entry: CachedPartition) -> "str | None":
        """Store an entry; returns the evicted fingerprint, if any."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self.evictions += 1
            return evicted
        return None

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._entries.clear()

    def stats(self) -> dict:
        """Counters snapshot for the metrics endpoint."""
        lookups = self.hits + self.misses
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }
