"""Stdlib HTTP/JSON endpoint over :class:`PartitionService`.

Endpoints
---------
``POST /partition``
    Body: a JSON request (see :func:`request_from_payload`).  The graph is
    either a zoo name (string, resolved server-side) or an inline
    :func:`repro.graphs.serialization.graph_to_dict` dict.  Reply: the
    partition, its improvement, and cache provenance.
``GET /metrics``
    The service metrics snapshot (hit rate, per-source p50/p95/p99
    latency, requests served).  ``?format=prometheus`` renders the same
    registry as Prometheus text exposition.
``GET /healthz``
    Readiness probe: shard id, uptime, registry version count, in-flight
    load, registry reachability, recent degraded-serve count; 503 when
    saturated or the configured registry root is unreachable (alive but
    unable to take work).

Tracing: when the service was built with ``trace_dir``, every ``POST
/partition`` opens a trace (adopting the client's ``X-Repro-Trace`` id
when the header is present — such requests are always sampled) and echoes
the trace id back in the same header for correlation with the JSONL sink.

The server is a ``ThreadingHTTPServer``; the service underneath serialises
submissions with its own lock, so concurrent clients are safe.  Client-side
helpers (:func:`request_partition`, :func:`fetch_metrics`) wrap ``urllib``
so the CLI's ``repro request`` needs no third-party HTTP stack.

Backpressure & retries: the service's admission gate surfaces here as HTTP
429 with a ``Retry-After`` header (503 is reserved for the server's own
shutdown window).  The client helpers take a ``retries`` budget and back
off exponentially with jitter on 429/503/connection failures, honouring
``Retry-After`` — so a burst against a bounded server drains instead of
failing, without a thundering-herd retry spike.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, HTTPServer, ThreadingHTTPServer

from repro.graphs.serialization import graph_from_dict
from repro.obs.trace import TRACE_HEADER, activate, deactivate
from repro.hardware.topology import make_topology
from repro.serve.service import (
    PartitionRequest,
    PartitionService,
    ServiceError,
    ServiceOverloadError,
)

#: Client-helper defaults: fail fast (a minute, not ten) and retry twice.
DEFAULT_TIMEOUT_S = 60.0
DEFAULT_RETRIES = 2
_BACKOFF_BASE_S = 0.25
_BACKOFF_CAP_S = 4.0

#: Upper bound on an inline-graph request body (a graph_to_dict of a
#: 100k-node graph is ~20 MB; anything bigger is a framing error or abuse).
_MAX_BODY_BYTES = 64 * 2**20


def request_from_payload(
    payload: dict, graph_resolver=None
) -> PartitionRequest:
    """Build a :class:`PartitionRequest` from a JSON payload.

    Payload keys: ``graph`` (zoo name string or inline graph dict),
    ``chips``, ``topology`` (+ ``mesh_dims``), ``objective``, ``platform``
    (``analytical``/``simulator``), ``samples``, ``checkpoint``,
    ``checkpoint_version``.  ``graph_resolver`` maps name strings to
    :class:`CompGraph` (the CLI passes the zoo table; inline dicts always
    work).
    """
    spec = payload.get("graph")
    if isinstance(spec, str):
        if graph_resolver is None:
            raise ServiceError(
                "this server only accepts inline graphs; send a "
                "graph_to_dict payload instead of a name"
            )
        try:
            graph = graph_resolver(spec)
        except (KeyError, SystemExit, OSError, ValueError):
            # Whatever the resolver rejects — unknown name, or a
            # path-shaped probe it refuses to read — is the client's
            # problem, reported as a 422, never a dropped connection.
            raise ServiceError(f"unknown graph {spec!r}") from None
    elif isinstance(spec, dict):
        try:
            graph = graph_from_dict(spec)
        except (KeyError, ValueError, TypeError) as exc:
            raise ServiceError(f"bad inline graph: {exc}") from None
    else:
        raise ServiceError("payload must carry 'graph' (name or inline dict)")

    try:
        n_chips = int(payload.get("chips", 4))
    except (TypeError, ValueError):
        raise ServiceError(f"bad chips value {payload.get('chips')!r}") from None
    topology = None
    topo_name = payload.get("topology")
    if payload.get("mesh_dims") is not None and topo_name != "mesh":
        # Same contract as the CLI (`--mesh-dims applies to --topology
        # mesh only`): silently ignoring the dims would hand back a
        # partition for a platform the client didn't ask for.
        raise ServiceError("mesh_dims applies to topology 'mesh' only")
    if topo_name is not None and topo_name != "uniring":
        try:
            topology = make_topology(
                topo_name, n_chips, payload.get("mesh_dims")
            )
        except (ValueError, TypeError, KeyError, IndexError) as exc:
            # Whatever shape of junk arrived in topology/mesh_dims: a 422,
            # never a crashed handler.
            raise ServiceError(
                f"bad topology spec: {exc or type(exc).__name__}"
            ) from None
    samples = payload.get("samples")
    version = payload.get("checkpoint_version")
    return PartitionRequest(
        graph=graph,
        n_chips=n_chips,
        topology=topology,
        objective=str(payload.get("objective", "throughput")),
        cost_model=str(payload.get("platform", "analytical")),
        samples=None if samples is None else int(samples),
        checkpoint=payload.get("checkpoint"),
        version=None if version is None else int(version),
    )


def response_to_payload(response) -> dict:
    """JSON-safe dict form of a :class:`PartitionResponse`."""
    return {
        "fingerprint": response.fingerprint,
        "assignment": response.assignment.tolist(),
        "improvement": response.improvement,
        "objective": response.objective,
        "cached": response.cached,
        "source": response.source,
        "latency_ms": response.latency_ms,
        "samples": response.samples,
        "chips": response.n_chips,
        "checkpoint": (
            None
            if response.checkpoint is None
            else {
                "name": response.checkpoint[0],
                "version": response.checkpoint[1],
            }
        ),
        "throughput": response.throughput,
        "latency_us": response.latency_us,
        "degraded": response.degraded,
        "degraded_reason": response.degraded_reason,
    }


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the server's service; JSON in, JSON out."""

    server_version = "repro-serve/1"

    def _reply(
        self, code: int, payload: dict, headers: "dict | None" = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, code: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _drop_fault(self) -> bool:
        """Injected connection drop (chaos tests of the client's retry
        path): close the socket without a reply, like a crashed peer."""
        plan = getattr(self.server, "fault_plan", None)
        if plan is None or plan.fire("server", "drop", (self.path,)) is None:
            return False
        self.close_connection = True
        try:
            self.connection.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        return True

    def log_message(self, fmt, *args):  # pragma: no cover - quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    def do_GET(self) -> None:
        if self._drop_fault():
            return
        split = urllib.parse.urlsplit(self.path)
        if split.path == "/metrics":
            fmt = urllib.parse.parse_qs(split.query).get("format", [""])[0]
            if fmt == "prometheus":
                self._reply_text(200, self.server.service.prometheus())
            else:
                self._reply(200, self.server.service.metrics())
        elif split.path == "/healthz":
            # Readiness, not just liveness: 503 when the service is alive
            # but cannot usefully take work (admission gate full, or a
            # configured checkpoint registry has gone unreachable), so
            # routers/orchestrators can drain it instead of timing out.
            ready, payload = self.server.service.health()
            self._reply(200 if ready else 503, payload)
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:
        if self._drop_fault():
            return
        if urllib.parse.urlsplit(self.path).path != "/partition":
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        # One trace per POST when the service has tracing configured: a
        # client-supplied X-Repro-Trace id is adopted (and forces
        # sampling), otherwise a fresh id is minted; either way the id is
        # echoed back in the same header so the reply correlates with the
        # JSONL sink.
        tracer = self.server.service.tracer
        trace = (
            tracer.start(trace_id=self.headers.get(TRACE_HEADER))
            if tracer.enabled
            else None
        )
        echo = {} if trace is None else {TRACE_HEADER: trace.trace_id}
        # Only pay for span recording when the trace can actually be kept:
        # an unsampled trace with no slow-force threshold is write-never,
        # so the service path stays on the shared no-op span.
        record = trace is not None and (trace.sampled or tracer.slow_ms > 0)
        token = activate(trace) if record else None
        status = 200
        try:
            try:
                length = int(self.headers.get("Content-Length", 0))
                # Never trust the client's framing: a negative length would
                # turn read() into read-until-EOF (a thread wedged on a held
                # connection), an absurd one into unbounded buffering.
                if length < 0:
                    status = 400
                    self._reply(400, {"error": "bad Content-Length"}, headers=echo)
                    return
                if length > _MAX_BODY_BYTES:
                    status = 413
                    self._reply(
                        413,
                        {"error": f"request body over {_MAX_BODY_BYTES} bytes"},
                        headers=echo,
                    )
                    return
                payload = json.loads(self.rfile.read(length) or b"{}")
                request = request_from_payload(
                    payload, graph_resolver=self.server.graph_resolver
                )
                # Client source id for per-source rate limiting: an explicit
                # header wins (routers/proxies forward the original client);
                # otherwise the peer address identifies the source.
                source = self.headers.get("X-Repro-Source") or self.client_address[0]
                response = self.server.service.submit(request, source=source)
            except ServiceOverloadError as exc:
                # Structured backpressure, not a failure: the client helpers
                # sleep Retry-After (± backoff) and resubmit.
                status = 429
                self._reply(
                    429,
                    {"error": str(exc), "retry_after_s": exc.retry_after},
                    headers={
                        "Retry-After": f"{max(exc.retry_after, 0):g}", **echo
                    },
                )
                return
            except ServiceError as exc:
                status = 422
                self._reply(422, {"error": str(exc)}, headers=echo)
                return
            except (json.JSONDecodeError, ValueError, TypeError) as exc:
                status = 400
                self._reply(400, {"error": f"bad request: {exc}"}, headers=echo)
                return
            except Exception as exc:  # noqa: BLE001 - last-resort: a handler
                # crash must surface as an HTTP error, not a dropped connection.
                status = 500
                self._reply(500, {"error": f"internal error: {exc!r}"}, headers=echo)
                return
            self._reply(200, response_to_payload(response), headers=echo)
        finally:
            deactivate(token)
            if trace is not None:
                tracer.finish(trace, status=status)


class PartitionServer:
    """A :class:`ThreadingHTTPServer` bound to one service.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    construction.  ``start()`` serves in a daemon thread (tests, CLI
    foreground mode calls :meth:`serve_forever` directly).
    ``threaded=False`` switches to a single-threaded ``HTTPServer`` whose
    :meth:`handle_request` fully serves one request before returning — the
    right mode for bounded ``--max-requests`` smoke runs, where a threaded
    accept loop could exit before an in-flight handler thread replies.
    """

    def __init__(
        self,
        service: PartitionService,
        host: str = "127.0.0.1",
        port: int = 0,
        graph_resolver=None,
        verbose: bool = False,
        threaded: bool = True,
        fault_plan=None,
    ):
        self.service = service
        server_cls = ThreadingHTTPServer if threaded else HTTPServer
        self._httpd = server_cls((host, port), _Handler)
        self._httpd.service = service
        self._httpd.graph_resolver = graph_resolver
        self._httpd.verbose = verbose
        # The HTTP layer shares the service's plan unless given its own
        # (the ``server``-site drop faults are consulted per request).
        self._httpd.fault_plan = (
            fault_plan if fault_plan is not None else service.config.fault_plan
        )
        self._thread: "threading.Thread | None" = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    def start(self) -> "PartitionServer":
        """Serve in a background daemon thread; returns self."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._httpd.serve_forever()

    def handle_request(self) -> None:
        """Serve exactly one request (the CLI's ``--max-requests`` loop)."""
        self._httpd.handle_request()

    def shutdown(self) -> None:
        """Stop serving and release the socket; idempotent."""
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "PartitionServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
# Client helpers
# ----------------------------------------------------------------------
_RETRYABLE_CODES = (429, 503)


def _backoff_s(attempt: int, retry_after: "float | None") -> float:
    """Capped exponential backoff with full jitter (AWS-style).

    A server-supplied ``Retry-After`` is a *floor* — backing off less
    than the server asked for would just earn another 429."""
    delay = min(_BACKOFF_BASE_S * (2 ** attempt), _BACKOFF_CAP_S)
    delay *= 0.5 + random.random() * 0.5
    if retry_after is not None:
        delay = max(delay, retry_after)
    return delay


def _http_json(
    url: str,
    data: "bytes | None" = None,
    timeout: float = DEFAULT_TIMEOUT_S,
    retries: int = DEFAULT_RETRIES,
    source: "str | None" = None,
    trace_id: "str | None" = None,
) -> dict:
    """One JSON round trip with bounded retries.

    Retried: 429/503 replies (honouring ``Retry-After``) and transport
    failures where no reply arrived at all (connection refused/reset,
    socket timeout) — these are either explicit backpressure or ambiguous
    network loss, and every server endpoint is idempotent (a retried
    search is answered from cache or recomputed bit-identically).  Any
    other HTTP error is a real answer and raises immediately."""
    last_error: "Exception | None" = None
    for attempt in range(int(retries) + 1):
        headers = {"Content-Type": "application/json"} if data else {}
        if source is not None:
            headers["X-Repro-Source"] = str(source)
        if trace_id is not None:
            headers[TRACE_HEADER] = str(trace_id)
        req = urllib.request.Request(url, data=data, headers=headers)
        retry_after: "float | None" = None
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read()).get("error", "")
            except (ValueError, OSError):
                detail = ""
            error = ServiceError(
                f"server replied {exc.code}: {detail or exc.reason}"
            )
            if exc.code not in _RETRYABLE_CODES:
                raise error from None
            try:
                retry_after = float(exc.headers.get("Retry-After"))
            except (TypeError, ValueError):
                retry_after = None
            last_error = error
        except (
            urllib.error.URLError,
            http.client.HTTPException,
            ConnectionError,
            TimeoutError,
            socket.timeout,
            OSError,
        ) as exc:
            last_error = ServiceError(f"request to {url} failed: {exc}")
        if attempt < retries:
            time.sleep(_backoff_s(attempt, retry_after))
    raise last_error from None


def request_partition(
    payload: dict,
    host: str = "127.0.0.1",
    port: int = 8080,
    timeout: float = DEFAULT_TIMEOUT_S,
    retries: int = DEFAULT_RETRIES,
    source: "str | None" = None,
    trace_id: "str | None" = None,
) -> dict:
    """POST one request payload to a running server; returns the reply.

    Fails fast (``timeout`` seconds, default 60) and retries
    429/503/connection loss with jittered exponential backoff —
    resubmission is safe because serving is deterministic and cached.
    ``source`` sets the ``X-Repro-Source`` header, the client identity the
    server's per-source rate limiter keys on (defaults to peer address);
    ``trace_id`` sets ``X-Repro-Trace`` so a tracing-enabled server
    force-samples this request under the given id."""
    return _http_json(
        f"http://{host}:{port}/partition",
        data=json.dumps(payload).encode("utf-8"),
        timeout=timeout,
        retries=retries,
        source=source,
        trace_id=trace_id,
    )


def fetch_metrics(
    host: str = "127.0.0.1",
    port: int = 8080,
    timeout: float = 60.0,
    retries: int = DEFAULT_RETRIES,
) -> dict:
    """GET the server's metrics snapshot."""
    return _http_json(
        f"http://{host}:{port}/metrics", timeout=timeout, retries=retries
    )
