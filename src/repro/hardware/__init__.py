"""MCM hardware model: chip specs, package + topologies, cost models, simulator.

The paper evaluates on a 36-die multi-chip TPU package joined by a
uni-directional 1D ring (Dasari et al., 2021).  That hardware is proprietary,
so this package provides the closest synthetic equivalent exercising the same
code paths:

* :class:`AnalyticalCostModel` — the paper's pre-training cost model (max
  per-chip latency, Section 5.1).
* :class:`PipelineSimulator` — the "real hardware": pipelined execution with
  per-link contention, per-op efficiency perturbation, and a memory planner
  enforcing the dynamic SRAM constraint ``H(G, f)``.
* :mod:`repro.hardware.topology` — pluggable interconnects (:class:`UniRing`
  is the paper's platform and the default; :class:`BiRing`, :class:`Mesh2D`,
  and :class:`Crossbar` re-target the whole framework).
"""

from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.base import CostModel, EvaluationResult
from repro.hardware.chip import ChipSpec
from repro.hardware.memory import MemoryPlanner, MemoryReport
from repro.hardware.noise import PerturbationModel
from repro.hardware.package import MCMPackage
from repro.hardware.simulator import PipelineSimulator
from repro.hardware.topology import (
    BiRing,
    Crossbar,
    Mesh2D,
    Topology,
    UniRing,
    make_topology,
)

__all__ = [
    "ChipSpec",
    "MCMPackage",
    "Topology",
    "UniRing",
    "BiRing",
    "Mesh2D",
    "Crossbar",
    "make_topology",
    "CostModel",
    "EvaluationResult",
    "AnalyticalCostModel",
    "MemoryPlanner",
    "MemoryReport",
    "PerturbationModel",
    "PipelineSimulator",
]
