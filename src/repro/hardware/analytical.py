"""The paper's analytical cost model (Section 5.1).

    "This analytical cost model estimates the latency of running all nodes
    assigned to each chip, and returns the maximal latency of all chips."

Per-chip latency is the chip's compute time plus the time it spends sending
and receiving cross-chip tensors.  The model is closed-form, deterministic,
and deliberately blind to the dynamic effects the pipeline simulator adds
(schedule-dependent memory, link contention across hops, per-op efficiency),
which is exactly the analytical/hardware gap the paper studies in Figure 7.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import CompGraph
from repro.hardware.base import EvaluationResult, check_assignment, cross_chip_transfers
from repro.hardware.package import MCMPackage


class AnalyticalCostModel:
    """Closed-form throughput estimate: ``1 / max_d latency(d)``.

    Parameters
    ----------
    package:
        The MCM package being modelled (chip count, link bandwidth).
    """

    def __init__(self, package: MCMPackage):
        self.package = package

    def evaluate(self, graph: CompGraph, assignment) -> EvaluationResult:
        """Score a complete assignment.

        Transfers the interconnect cannot route (e.g. backward transfers on
        the uni-directional ring) yield an invalid result; no other validity
        checks are performed — the analytical model cannot see dynamic
        constraints.
        """
        assignment = check_assignment(graph, assignment, self.package.n_chips)
        n_chips = self.package.n_chips
        chip = self.package.chip
        topology = self.package.topology

        latency = np.zeros(n_chips)
        np.add.at(latency, assignment, graph.compute_us * chip.compute_scale)

        src_c, dst_c, nbytes = cross_chip_transfers(graph, assignment)
        if src_c.size and not np.all(topology.reachable[src_c, dst_c]):
            return EvaluationResult.invalid(topology.unreachable_reason, n_chips)
        if src_c.size:
            wire_us = nbytes / (chip.link_bandwidth_gbps * 1e9) * 1e6 + chip.link_latency_us
            # DMA engines hide io_overlap of each transfer behind compute;
            # the rest stalls the sender and the receiver.
            stall_us = wire_us * (1.0 - chip.io_overlap)
            np.add.at(latency, src_c, stall_us)
            np.add.at(latency, dst_c, stall_us)

        runtime = float(latency.max()) if latency.size else 0.0
        if runtime <= 0.0:
            return EvaluationResult.invalid("empty_graph", n_chips)
        # End-to-end latency of one inference: every stage's busy time in
        # sequence (a single item cannot overlap its own pipeline stages).
        e2e = float(latency.sum())
        return EvaluationResult(
            valid=True,
            runtime_us=runtime,
            throughput=1e6 / runtime,
            latency_us=e2e,
            chip_latency_us=latency,
        )
