"""Pluggable interconnect topologies for the MCM package.

The paper's platform is a fixed 36-chiplet uni-directional ring (Figure 2b),
and the original reproduction hard-coded that assumption into every layer:
``hops`` rejected backward transfers, both cost models special-cased
``backward_edge``, and the constraint solver assumed chip IDs are totally
ordered.  This module lifts the platform into a swappable component: a
:class:`Topology` precomputes hop counts, deterministic link routes, and the
chip-reachability matrix, and every consumer (package, cost models, solver,
features, CLI) works against those tables instead of the ring arithmetic.

Concrete topologies
-------------------
* :class:`UniRing` — the paper's platform, *exact* legacy semantics: data
  moves only from lower to higher chip IDs over a 1D chain of
  ``n_chips - 1`` links.  Reachability is the ID total order, which is what
  the solver's bounds-propagation engine and the triangle constraint
  (Equation 4) assume; uni-ring instances therefore run bit-for-bit the
  legacy code paths.
* :class:`BiRing` — a bi-directional ring (both rotation directions,
  including the wrap-around link); transfers take the shorter way round,
  ties broken clockwise.
* :class:`Mesh2D` — a ``rows x cols`` grid with bidirectional neighbour
  links and deterministic XY routing (column first, then row).
* :class:`Crossbar` — a dedicated link per ordered chip pair; every
  transfer is one hop and no two distinct transfers share a link.

Routing is static and deterministic (precomputed per ordered pair), so the
simulator's per-link contention accounting stays a pure function of the
assignment.
"""

from __future__ import annotations

from collections import deque

import numpy as np

#: Largest package any topology will precompute tables for.  The solver is
#: additionally capped at 63 chips (one domain bitmask word).
MAX_CHIPS = 1024


def _parse_links(n_chips: int, links: "list[tuple[int, int]]") -> np.ndarray:
    arr = np.asarray(links, dtype=np.int64).reshape(-1, 2)
    if arr.size and (arr.min() < 0 or arr.max() >= n_chips):
        raise ValueError("link endpoints must be chip ids in [0, n_chips)")
    if arr.size and np.any(arr[:, 0] == arr[:, 1]):
        raise ValueError("self-loop links are not allowed")
    return arr


class Topology:
    """Precomputed interconnect tables shared by every platform consumer.

    Parameters
    ----------
    n_chips:
        Number of chiplets.
    name:
        Short machine-readable name (used in failure reasons and bench rows).
    links:
        Directed links as ``(src_chip, dst_chip)`` pairs; the list index is
        the link ID used throughout (contention vectors, reports).
    key:
        Hashable identity tuple; two topologies compare equal iff their keys
        match (lets frozen dataclasses like :class:`MCMPackage` stay
        hashable and comparable).

    Attributes
    ----------
    hop_matrix:
        ``(C, C)`` int64 route lengths in links; ``-1`` where unreachable,
        ``0`` on the diagonal.
    reachable:
        ``(C, C)`` bool, ``reachable[a, b]`` iff data can move ``a -> b``
        (diagonal is True).
    """

    def __init__(
        self,
        n_chips: int,
        name: str,
        links: "list[tuple[int, int]]",
        key: tuple,
    ):
        if n_chips < 1:
            raise ValueError("n_chips must be >= 1")
        if n_chips > MAX_CHIPS:
            raise ValueError(f"n_chips must be <= {MAX_CHIPS}")
        self.n_chips = int(n_chips)
        self.name = str(name)
        self.key = tuple(key)
        self.links = _parse_links(n_chips, links)
        self.n_links = int(self.links.shape[0])
        self._build_tables()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _route_pair(self, src: int, dst: int) -> "list[int] | None":
        """Hook: explicit route (link-id list) for one pair, or ``None`` to
        use the BFS default (shortest path, link-ID tie-break)."""
        return None

    def _build_tables(self) -> None:
        c = self.n_chips
        # Adjacency in link-id order: BFS discovery order (and therefore
        # shortest-path tie-breaking) is deterministic in the link list.
        out: "list[list[tuple[int, int]]]" = [[] for _ in range(c)]
        for lid, (a, b) in enumerate(self.links.tolist()):
            out[a].append((b, lid))

        hop = np.full((c, c), -1, dtype=np.int64)
        np.fill_diagonal(hop, 0)
        indptr = np.zeros(c * c + 1, dtype=np.int64)
        flat: "list[int]" = []
        for src in range(c):
            # BFS with (parent chip, via link) pointers.
            prev = [(-1, -1)] * c
            seen = [False] * c
            seen[src] = True
            queue = deque([src])
            while queue:
                u = queue.popleft()
                for v, lid in out[u]:
                    if not seen[v]:
                        seen[v] = True
                        prev[v] = (u, lid)
                        hop[src, v] = hop[src, u] + 1
                        queue.append(v)
            for dst in range(c):
                path: "list[int] | None" = None
                if dst != src and seen[dst]:
                    path = self._route_pair(src, dst)
                    if path is None:
                        path = []
                        v = dst
                        while v != src:
                            u, lid = prev[v]
                            path.append(lid)
                            v = u
                        path.reverse()
                    hop[src, dst] = len(path)
                flat.extend(path or [])
                indptr[src * c + dst + 1] = len(flat)
        self.hop_matrix = hop
        self.hop_matrix.setflags(write=False)
        self.reachable = hop >= 0
        self.reachable.setflags(write=False)
        self._path_links = np.asarray(flat, dtype=np.int64)
        self._path_indptr = indptr
        #: Reachability is the chip-ID total order (``a`` reaches ``b`` iff
        #: ``a <= b``).  Total-order topologies keep the *exact* legacy
        #: uni-ring semantics everywhere: Eq. 2 as ``f(u) <= f(v)``, the
        #: triangle constraint (Eq. 4), and the solver's bounds-propagation
        #: engine.  Everything else runs the reachability-generalised paths.
        self.is_total_order = bool(
            np.array_equal(self.reachable, np.triu(np.ones((c, c), dtype=bool)))
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _check_chip(self, chip_id: int) -> None:
        if not (0 <= chip_id < self.n_chips):
            raise ValueError(f"chip id {chip_id} out of range [0, {self.n_chips})")

    def _unreachable_msg(self, src: int, dst: int) -> str:
        return f"no route {src} -> {dst} on topology {self.name!r}"

    @property
    def unreachable_reason(self) -> str:
        """Failure reason cost models attach to unreachable transfers."""
        return f"unreachable_edge:{self.name}"

    def hops(self, src_chip: int, dst_chip: int) -> int:
        """Route length in links from ``src_chip`` to ``dst_chip``.

        Raises ``ValueError`` for transfers the interconnect cannot perform.
        """
        self._check_chip(src_chip)
        self._check_chip(dst_chip)
        h = int(self.hop_matrix[src_chip, dst_chip])
        if h < 0:
            raise ValueError(self._unreachable_msg(src_chip, dst_chip))
        return h

    def link_path(self, src_chip: int, dst_chip: int) -> np.ndarray:
        """Link IDs traversed by a transfer, in route order."""
        self.hops(src_chip, dst_chip)
        pair = src_chip * self.n_chips + dst_chip
        return self._path_links[self._path_indptr[pair] : self._path_indptr[pair + 1]]

    def link_occupancy(
        self, src_c: np.ndarray, dst_c: np.ndarray, occupancy: np.ndarray
    ) -> np.ndarray:
        """Per-link total busy time of a batch of transfers (vectorised).

        Each transfer occupies every link on its route for its full
        ``occupancy`` value.  All pairs must be reachable (cost models check
        reachability before accounting contention).
        """
        link_time = np.zeros(max(self.n_links, 1))
        if src_c.size == 0:
            return link_time
        pair = src_c * np.int64(self.n_chips) + dst_c
        starts = self._path_indptr[pair]
        counts = self._path_indptr[pair + 1] - starts
        total = int(counts.sum())
        if total:
            # Gather every transfer's route from the flattened path table:
            # position j of the expansion belongs to transfer i and offset
            # j - first_position(i) within its route.
            offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
            links = self._path_links[np.repeat(starts, counts) + offsets]
            np.add.at(link_time, links, np.repeat(occupancy, counts))
        return link_time

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_chips={self.n_chips})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Topology) and self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)


class UniRing(Topology):
    """The paper's uni-directional ring (Figure 2b) — legacy semantics.

    Data can only move from a lower chip ID to a higher chip ID; a transfer
    from chip ``a`` to chip ``b > a`` occupies every link
    ``a -> a+1 -> ... -> b``.  ``n_links == n_chips - 1`` (the 1D chain the
    original ``MCMPackage`` modelled).
    """

    def __init__(self, n_chips: int):
        links = [(i, i + 1) for i in range(n_chips - 1)]
        super().__init__(n_chips, "uniring", links, ("uniring", n_chips))

    def _unreachable_msg(self, src: int, dst: int) -> str:
        return (
            f"backward transfer {src} -> {dst} impossible on a "
            "uni-directional ring"
        )

    @property
    def unreachable_reason(self) -> str:
        """Legacy alias kept so existing tests/logs keep matching."""
        return "backward_edge"

    def link_occupancy(
        self, src_c: np.ndarray, dst_c: np.ndarray, occupancy: np.ndarray
    ) -> np.ndarray:
        # Contiguous routes admit a range-add via a difference array: +w at
        # src, -w at dst, then prefix-sum — the exact legacy accumulation
        # order, so uni-ring simulator results stay bit-for-bit unchanged.
        link_time = np.zeros(max(self.n_links, 1))
        if src_c.size == 0:
            return link_time
        diff = np.zeros(link_time.size + 1)
        np.add.at(diff, src_c, occupancy)
        np.subtract.at(diff, dst_c, occupancy)
        return np.cumsum(diff)[:-1]


class BiRing(Topology):
    """Bi-directional ring: both rotation directions, wrap-around included.

    ``2 * n_chips`` directed links for ``n_chips >= 3`` (clockwise link IDs
    first, then counter-clockwise; a 2-ring has just one link each way).
    Transfers take the shorter direction; equidistant pairs break the tie
    clockwise.
    """

    def __init__(self, n_chips: int):
        links: "list[tuple[int, int]]" = []
        if n_chips == 2:
            # Both rotation directions coincide on a 2-ring: one physical
            # link each way, not duplicated pairs.
            links = [(0, 1), (1, 0)]
        elif n_chips > 2:
            links += [(i, (i + 1) % n_chips) for i in range(n_chips)]
            links += [(i, (i - 1) % n_chips) for i in range(n_chips)]
        super().__init__(n_chips, "biring", links, ("biring", n_chips))


class Mesh2D(Topology):
    """``rows x cols`` grid with bidirectional neighbour links, XY routing.

    Chip ``(r, c)`` has ID ``r * cols + c``.  Routes move along the row to
    the destination column first, then along the column — deterministic and
    minimal, the standard static mesh routing.
    """

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ValueError("mesh dims must be >= 1")
        self.rows = int(rows)
        self.cols = int(cols)
        links: "list[tuple[int, int]]" = []
        for r in range(rows):
            for c in range(cols):
                u = r * cols + c
                if c + 1 < cols:
                    links += [(u, u + 1), (u + 1, u)]
                if r + 1 < rows:
                    links += [(u, u + cols), (u + cols, u)]
        super().__init__(
            rows * cols, f"mesh2d-{rows}x{cols}", links, ("mesh2d", rows, cols)
        )

    def _route_pair(self, src: int, dst: int) -> "list[int]":
        if not hasattr(self, "_link_lut"):
            self._link_lut = {
                (int(a), int(b)): lid for lid, (a, b) in enumerate(self.links.tolist())
            }
        sr, sc = divmod(src, self.cols)
        dr, dc = divmod(dst, self.cols)
        path: "list[int]" = []
        r, c = sr, sc
        while c != dc:
            step = 1 if dc > c else -1
            path.append(self._link_lut[(r * self.cols + c, r * self.cols + c + step)])
            c += step
        while r != dr:
            step = 1 if dr > r else -1
            path.append(
                self._link_lut[(r * self.cols + c, (r + step) * self.cols + c)]
            )
            r += step
        return path


class Crossbar(Topology):
    """Full crossbar: a dedicated link per ordered chip pair.

    Every transfer is one hop on its own link, so distinct transfers never
    contend — the zero-contention reference platform.
    """

    def __init__(self, n_chips: int):
        links = [
            (a, b) for a in range(n_chips) for b in range(n_chips) if a != b
        ]
        super().__init__(n_chips, "crossbar", links, ("crossbar", n_chips))


#: CLI / factory names of the built-in topologies.
TOPOLOGY_NAMES = ("uniring", "biring", "mesh", "crossbar")


def parse_mesh_dims(spec: str) -> "tuple[int, int]":
    """Parse a ``RxC`` mesh-dimension spec (e.g. ``"2x3"``)."""
    parts = str(spec).lower().split("x")
    if len(parts) != 2:
        raise ValueError(f"mesh dims must look like 'RxC', got {spec!r}")
    try:
        rows, cols = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(f"mesh dims must look like 'RxC', got {spec!r}") from None
    if rows < 1 or cols < 1:
        raise ValueError("mesh dims must be >= 1")
    return rows, cols


def _default_mesh_dims(n_chips: int) -> "tuple[int, int]":
    """Most-square factorisation of ``n_chips`` (rows <= cols)."""
    rows = 1
    for d in range(1, int(np.sqrt(n_chips)) + 1):
        if n_chips % d == 0:
            rows = d
    return rows, n_chips // rows


def make_topology(
    name: str, n_chips: int, mesh_dims: "tuple[int, int] | str | None" = None
) -> Topology:
    """Build a topology by name (the CLI's ``--topology`` values).

    ``mesh`` accepts ``mesh_dims`` as a ``(rows, cols)`` tuple or ``"RxC"``
    string; omitted dims default to the most-square factorisation of
    ``n_chips``.
    """
    name = str(name).lower()
    if name == "uniring":
        return UniRing(n_chips)
    if name == "biring":
        return BiRing(n_chips)
    if name == "crossbar":
        return Crossbar(n_chips)
    if name == "mesh":
        if mesh_dims is None:
            rows, cols = _default_mesh_dims(n_chips)
        elif isinstance(mesh_dims, str):
            rows, cols = parse_mesh_dims(mesh_dims)
        else:
            rows, cols = int(mesh_dims[0]), int(mesh_dims[1])
        if rows * cols != n_chips:
            raise ValueError(
                f"mesh dims {rows}x{cols} give {rows * cols} chips, expected {n_chips}"
            )
        return Mesh2D(rows, cols)
    raise ValueError(f"unknown topology {name!r}: expected one of {TOPOLOGY_NAMES}")
