"""Memory planning: the dynamic constraint ``H(G, f)``.

The paper's key observation about dynamic constraints (Section 1) is that
"checking whether the peak memory usage for a particular placement is less
than the available chiplet memory requires knowledge of the order of
scheduling of operations that is only determined at a later compilation
pass."  This module is that later pass: it runs a deterministic topological
list schedule, performs buffer-lifetime analysis, and reports per-chip peak
memory (resident parameters + live activation buffers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import CompGraph
from repro.hardware.base import check_assignment


@dataclass(frozen=True)
class MemoryReport:
    """Peak-memory analysis of one partition.

    Attributes
    ----------
    peak_bytes:
        ``(C,)`` per-chip peak memory under the list schedule.
    capacity_bytes:
        SRAM capacity used for the fit check.
    fits:
        ``(C,)`` boolean mask of chips within capacity.
    """

    peak_bytes: np.ndarray
    capacity_bytes: float
    fits: np.ndarray

    @property
    def ok(self) -> bool:
        """True when every chip fits in SRAM."""
        return bool(self.fits.all())

    @property
    def worst_chip(self) -> int:
        """Chip with the highest peak memory."""
        return int(np.argmax(self.peak_bytes))


class MemoryPlanner:
    """List scheduler + buffer-lifetime analysis for a chip assignment.

    The schedule is the graph's (deterministic) topological order — the same
    order regardless of assignment, as a static compiler backend would fix it
    before placement-specific rescheduling.  A node's output buffer is live
    on its own chip from its execution until its last consumer executes, and
    live on each consuming chip over the same window (the transfer is pushed
    eagerly, so the receiver holds the tensor until its last local consumer
    has run).  Pure-constant (replicable) producers are folded into chip
    parameter storage instead.
    """

    def __init__(self, n_chips: int, capacity_bytes: float, schedule: str = "dfs"):
        if n_chips < 1:
            raise ValueError("n_chips must be >= 1")
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if schedule not in ("dfs", "bfs"):
            raise ValueError("schedule must be 'dfs' or 'bfs'")
        self.n_chips = n_chips
        self.capacity_bytes = float(capacity_bytes)
        self.schedule = schedule

    def _schedule_order(self, graph: CompGraph) -> np.ndarray:
        """The list schedule: a deterministic topological order.

        ``dfs`` (default) runs chains to completion before starting
        siblings — short buffer lifetimes on sequential graphs.  ``bfs``
        interleaves parallel branches — more live buffers at once.  The
        same partition can fit under one schedule and overflow under the
        other, which is precisely why the paper treats memory as a
        *dynamic* constraint "only determined at a later compilation pass".
        """
        if self.schedule == "dfs":
            return graph.topological_order()
        from collections import deque

        n = graph.n_nodes
        indeg = graph.in_degree().copy()
        queue = deque(int(u) for u in np.flatnonzero(indeg == 0))
        order = np.empty(n, dtype=np.int64)
        k = 0
        while queue:
            u = queue.popleft()
            order[k] = u
            k += 1
            for v in graph.successors(u):
                indeg[v] -= 1
                if indeg[v] == 0:
                    queue.append(int(v))
        if k != n:
            raise ValueError("graph contains a cycle")
        return order

    def plan(self, graph: CompGraph, assignment) -> MemoryReport:
        """Compute per-chip peak memory for ``assignment``."""
        assignment = check_assignment(graph, assignment, self.n_chips)
        n = graph.n_nodes
        order = self._schedule_order(graph)
        position = np.empty(n, dtype=np.int64)
        position[order] = np.arange(n)

        # Resident parameters never leave the chip.
        static_bytes = np.zeros(self.n_chips)
        np.add.at(static_bytes, assignment, graph.param_bytes)
        replicable = graph.is_replicable()
        if np.any(replicable):
            # Constants are materialised on every chip.
            static_bytes += graph.output_bytes[replicable].sum()

        # Buffer lifetime of node u: [position[u], last consumer position].
        last_use = position.copy()
        if graph.n_edges:
            np.maximum.at(last_use, graph.src, position[graph.dst])

        # Sweep events per chip: +bytes at start, -bytes after end.
        delta = np.zeros((self.n_chips, n + 1))
        live_mask = (~replicable) & (graph.output_bytes > 0)
        producers = np.flatnonzero(live_mask)
        if producers.size:
            np.add.at(delta, (assignment[producers], position[producers]),
                      graph.output_bytes[producers])
            np.add.at(delta, (assignment[producers], last_use[producers] + 1),
                      -graph.output_bytes[producers])
            # Cross-chip copies: the consuming chip holds the tensor from the
            # producer's execution until its last local consumer runs.
            if graph.n_edges:
                e_src, e_dst = graph.src, graph.dst
                cross = (assignment[e_src] != assignment[e_dst]) & live_mask[e_src]
                if np.any(cross):
                    cs, cd = e_src[cross], e_dst[cross]
                    chips = assignment[cd]
                    # Last consumer of cs on the destination chip: take max
                    # position among edges grouped by (producer, chip).
                    keys = cs * np.int64(self.n_chips) + chips
                    sort = np.argsort(keys, kind="stable")
                    keys_s = keys[sort]
                    pos_s = position[cd][sort]
                    group_start = np.flatnonzero(
                        np.concatenate(([True], keys_s[1:] != keys_s[:-1]))
                    )
                    group_end = np.concatenate((group_start[1:], [keys_s.size]))
                    for g0, g1 in zip(group_start, group_end):
                        producer = int(keys_s[g0] // self.n_chips)
                        chipid = int(keys_s[g0] % self.n_chips)
                        start = position[producer]
                        end = int(pos_s[g0:g1].max())
                        nbytes = graph.output_bytes[producer]
                        delta[chipid, start] += nbytes
                        delta[chipid, end + 1] -= nbytes

        live = np.cumsum(delta[:, :n], axis=1)
        peak = static_bytes + live.max(axis=1)
        fits = peak <= self.capacity_bytes
        return MemoryReport(
            peak_bytes=peak, capacity_bytes=self.capacity_bytes, fits=fits
        )

    def check(self, graph: CompGraph, assignment) -> bool:
        """The boolean dynamic constraint ``H(G, f)``."""
        return self.plan(graph, assignment).ok
