"""Common cost-model interface and evaluation result type.

Search algorithms only interact with the platform through
``CostModel.evaluate(graph, assignment) -> EvaluationResult``; the analytical
model and the pipeline simulator are interchangeable behind this interface,
which is what lets the paper pre-train on the analytical model and deploy on
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.graphs.graph import CompGraph


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of evaluating one complete partition.

    Attributes
    ----------
    valid:
        ``False`` when the platform rejects the partition (backward edge on
        the ring, or the dynamic memory constraint ``H(G, f)`` fails).
    runtime_us:
        Pipeline initiation interval in microseconds (``inf`` when invalid).
    throughput:
        Completed inferences per second (0 when invalid — the paper's
        platform "returns a zero throughput when it evaluates an invalid
        partition").
    latency_us:
        End-to-end latency of a single inference traversing the pipeline
        (the paper: "our framework can easily re-target a latency metric").
    failure_reason:
        Short machine-readable reason when invalid (e.g. ``"oom"``).
    chip_latency_us:
        Per-chip busy time for the evaluated partition.
    link_latency_us:
        Per-link busy time (empty for the analytical model).
    """

    valid: bool
    runtime_us: float
    throughput: float
    latency_us: float = float("inf")
    failure_reason: str = ""
    chip_latency_us: np.ndarray = field(default_factory=lambda: np.zeros(0))
    link_latency_us: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @staticmethod
    def invalid(reason: str, n_chips: int = 0) -> "EvaluationResult":
        """An invalid result with zero throughput and infinite latency."""
        return EvaluationResult(
            valid=False,
            runtime_us=float("inf"),
            throughput=0.0,
            latency_us=float("inf"),
            failure_reason=reason,
            chip_latency_us=np.zeros(n_chips),
        )


@runtime_checkable
class CostModel(Protocol):
    """Anything that can score a complete chip assignment."""

    def evaluate(self, graph: CompGraph, assignment: np.ndarray) -> EvaluationResult:
        """Score ``assignment`` (``(N,)`` array of chip ids) for ``graph``."""
        ...


def check_assignment(graph: CompGraph, assignment, n_chips: int) -> np.ndarray:
    """Validate shape/range of an assignment and return it as ``int64``."""
    arr = np.asarray(assignment, dtype=np.int64)
    if arr.shape != (graph.n_nodes,):
        raise ValueError(
            f"assignment must have shape ({graph.n_nodes},), got {arr.shape}"
        )
    if arr.size and (arr.min() < 0 or arr.max() >= n_chips):
        raise ValueError(f"assignment contains chip ids outside [0, {n_chips})")
    return arr


def cross_chip_transfers(
    graph: CompGraph, assignment: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deduplicated cross-chip transfers implied by an assignment.

    A producer's output is sent at most once to each consuming chip,
    mirroring how the compiler coalesces fan-out across the ring.  Edges
    whose producer is replicable (pure constants materialised on every chip)
    move no data.

    Returns ``(src_chip, dst_chip, nbytes)`` arrays, one entry per
    (producer, consuming chip) pair with ``src_chip != dst_chip``.
    """
    if graph.n_edges == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, np.zeros(0)
    src_chip = assignment[graph.src]
    dst_chip = assignment[graph.dst]
    replicable = graph.is_replicable()[graph.src]
    cross = (src_chip != dst_chip) & ~replicable
    if not np.any(cross):
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, np.zeros(0)
    producers = graph.src[cross]
    dst_c = dst_chip[cross]
    # Deduplicate (producer, destination chip) pairs.
    keys = producers * np.int64(max(dst_c.max() + 1, 1)) + dst_c
    _, unique_idx = np.unique(keys, return_index=True)
    producers = producers[unique_idx]
    dst_c = dst_c[unique_idx]
    return assignment[producers], dst_c, graph.output_bytes[producers]
