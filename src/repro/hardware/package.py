"""The MCM package: chiplets joined by a uni-directional 1D ring.

Data can only move from a lower chip ID to a higher chip ID (Figure 2b of the
paper); a transfer from chip ``a`` to chip ``b > a`` occupies every link
``a -> a+1 -> ... -> b``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.chip import ChipSpec


@dataclass(frozen=True)
class MCMPackage:
    """A package of ``n_chips`` identical chiplets on a uni-directional ring.

    The paper's platform has 36 chiplets; tests and scaled benchmarks use
    smaller packages with the same topology.
    """

    n_chips: int = 36
    chip: ChipSpec = field(default_factory=ChipSpec)

    def __post_init__(self):
        if self.n_chips < 1:
            raise ValueError("n_chips must be >= 1")

    @property
    def n_links(self) -> int:
        """Number of inter-chip links (``n_chips - 1`` for a 1D chain)."""
        return self.n_chips - 1

    def hops(self, src_chip: int, dst_chip: int) -> int:
        """Number of ring hops from ``src_chip`` to ``dst_chip``.

        Raises ``ValueError`` for backward transfers, which the
        uni-directional ring cannot perform.
        """
        self._check_chip(src_chip)
        self._check_chip(dst_chip)
        if dst_chip < src_chip:
            raise ValueError(
                f"backward transfer {src_chip} -> {dst_chip} impossible on a "
                "uni-directional ring"
            )
        return dst_chip - src_chip

    def links_crossed(self, src_chip: int, dst_chip: int) -> np.ndarray:
        """Link ids traversed by a transfer (link ``l`` joins ``l -> l+1``)."""
        self.hops(src_chip, dst_chip)
        return np.arange(src_chip, dst_chip, dtype=np.int64)

    def _check_chip(self, chip_id: int) -> None:
        if not (0 <= chip_id < self.n_chips):
            raise ValueError(f"chip id {chip_id} out of range [0, {self.n_chips})")
