"""The MCM package: chiplets joined by a pluggable interconnect topology.

The paper's platform joins 36 chiplets by a uni-directional 1D ring
(Figure 2b): data can only move from a lower chip ID to a higher chip ID,
and a transfer from chip ``a`` to chip ``b > a`` occupies every link
``a -> a+1 -> ... -> b``.  That platform is the default
(:class:`repro.hardware.topology.UniRing`, exact legacy semantics), but any
:class:`repro.hardware.topology.Topology` — bi-directional ring, 2D mesh,
crossbar — can be plugged in; hop counts, link routes, and reachability all
come from the topology's precomputed tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.chip import ChipSpec
from repro.hardware.topology import Topology, UniRing


@dataclass(frozen=True)
class MCMPackage:
    """A package of ``n_chips`` identical chiplets on an interconnect.

    The paper's platform has 36 chiplets on a uni-directional ring; tests
    and scaled benchmarks use smaller packages, and alternative topologies
    re-target the whole framework (the paper's §5.1 "easily re-targets"
    claim).

    Parameters
    ----------
    n_chips:
        Number of chiplets.
    chip:
        Per-chiplet capabilities.
    topology:
        Interconnect description; defaults to ``UniRing(n_chips)`` (the
        paper's platform, bit-for-bit legacy behaviour).
    """

    n_chips: int = 36
    chip: ChipSpec = field(default_factory=ChipSpec)
    topology: "Topology | None" = None

    def __post_init__(self):
        if self.n_chips < 1:
            raise ValueError("n_chips must be >= 1")
        if self.topology is None:
            object.__setattr__(self, "topology", UniRing(self.n_chips))
        elif self.topology.n_chips != self.n_chips:
            raise ValueError(
                f"topology is for {self.topology.n_chips} chips, "
                f"package has {self.n_chips}"
            )

    @property
    def n_links(self) -> int:
        """Number of inter-chip links (``n_chips - 1`` for the uni-ring)."""
        return self.topology.n_links

    def hops(self, src_chip: int, dst_chip: int) -> int:
        """Route length in links from ``src_chip`` to ``dst_chip``.

        Raises ``ValueError`` for transfers the interconnect cannot perform
        (e.g. backward transfers on the uni-directional ring).
        """
        return self.topology.hops(src_chip, dst_chip)

    def links_crossed(self, src_chip: int, dst_chip: int) -> np.ndarray:
        """Link ids traversed by a transfer, in route order."""
        return self.topology.link_path(src_chip, dst_chip)
