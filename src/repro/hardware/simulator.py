"""Pipelined MCM execution simulator — the repo's "real hardware".

The multi-chip TPU pipelines inference across chiplets: each chip repeatedly
executes its subgraph on a stream of inputs, so steady-state throughput is
set by the slowest pipeline stage — either a chip's busy time or a saturated
ring link.  On top of the analytical model's view, the simulator adds:

* per-(op, chip) and per-chip systematic efficiency factors
  (:class:`repro.hardware.noise.PerturbationModel`),
* per-op scheduling overhead (chips running many tiny ops lose time the
  analytical model does not see),
* link contention: a transfer occupies every link on its (topology-routed)
  path — the chain ``a -> a+1 -> ... -> b`` on the default uni-ring — so
  long-distance transfers are disproportionately expensive,
* the dynamic memory constraint ``H(G, f)`` via
  :class:`repro.hardware.memory.MemoryPlanner` — partitions whose scheduled
  peak memory exceeds a chiplet's SRAM are rejected with zero throughput,
  reproducing the hardware failures of paper Figure 7.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import CompGraph
from repro.hardware.base import EvaluationResult, check_assignment, cross_chip_transfers
from repro.hardware.memory import MemoryPlanner
from repro.hardware.noise import PerturbationModel
from repro.hardware.package import MCMPackage


class PipelineSimulator:
    """Throughput simulator for a partition on an MCM package.

    Parameters
    ----------
    package:
        Hardware description (chip count, SRAM, link bandwidth, topology).
    perturbation:
        Systematic efficiency model; ``None`` disables perturbations (the
        simulator then differs from the analytical model only through
        link contention, per-op overhead, and the memory constraint).
    op_overhead_us:
        Fixed issue overhead charged per op on its chip.
    check_memory:
        Enforce ``H(G, f)``; disable to study the static-only behaviour.
    """

    def __init__(
        self,
        package: MCMPackage,
        perturbation: "PerturbationModel | None" = None,
        op_overhead_us: float = 0.5,
        check_memory: bool = True,
    ):
        if op_overhead_us < 0:
            raise ValueError("op_overhead_us must be non-negative")
        self.package = package
        self.perturbation = perturbation if perturbation is not None else PerturbationModel()
        self.op_overhead_us = float(op_overhead_us)
        self.check_memory = check_memory
        self._memory = MemoryPlanner(package.n_chips, package.chip.sram_bytes)

    # ------------------------------------------------------------------
    def evaluate(self, graph: CompGraph, assignment) -> EvaluationResult:
        """Simulate ``assignment`` and return throughput or an invalid result."""
        assignment = check_assignment(graph, assignment, self.package.n_chips)
        n_chips = self.package.n_chips
        chip = self.package.chip

        src_c, dst_c, nbytes = cross_chip_transfers(graph, assignment)
        topology = self.package.topology
        if src_c.size and not np.all(topology.reachable[src_c, dst_c]):
            return EvaluationResult.invalid(topology.unreachable_reason, n_chips)

        if self.check_memory and not self._memory.check(graph, assignment):
            return EvaluationResult.invalid("oom", n_chips)

        # --- per-chip busy time ---------------------------------------
        node_ids = np.arange(graph.n_nodes)
        factors = self.perturbation.factors(
            node_ids, graph.op_categories(), assignment
        )
        effective_us = graph.compute_us * chip.compute_scale * factors + self.op_overhead_us
        chip_time = np.zeros(n_chips)
        np.add.at(chip_time, assignment, effective_us)

        # DMA engines hide io_overlap of each transfer behind compute; the
        # residual stalls the sender (serialising sends) and the receiver.
        link_time = np.zeros(max(self.package.n_links, 1))
        if src_c.size:
            wire_us = nbytes / (chip.link_bandwidth_gbps * 1e9) * 1e6
            stall = 1.0 - chip.io_overlap
            np.add.at(chip_time, src_c, (wire_us + chip.link_latency_us) * stall)
            np.add.at(chip_time, dst_c, 0.5 * wire_us * stall)
            # Each transfer occupies every link on its route for its full
            # wire time; the topology owns the vectorised accounting (the
            # uni-ring's contiguous routes use a difference-array range-add,
            # arbitrary routes a flattened path-table gather).
            occupancy = wire_us + chip.link_latency_us
            link_time = topology.link_occupancy(src_c, dst_c, occupancy)

        stage_us = float(chip_time.max())
        if self.package.n_links > 0:
            stage_us = max(stage_us, float(link_time.max()))
        if stage_us <= 0.0:
            return EvaluationResult.invalid("empty_graph", n_chips)
        # End-to-end latency of one inference: occupied chips in sequence
        # plus the full wire time of every transfer it rides.
        used = np.zeros(n_chips, dtype=bool)
        used[assignment] = True
        e2e = float(chip_time[used].sum())
        if src_c.size:
            e2e += float((nbytes / (chip.link_bandwidth_gbps * 1e9) * 1e6).sum())
        return EvaluationResult(
            valid=True,
            runtime_us=stage_us,
            throughput=1e6 / stage_us,
            latency_us=e2e,
            chip_latency_us=chip_time,
            link_latency_us=link_time[: self.package.n_links],
        )

    # ------------------------------------------------------------------
    def memory_report(self, graph: CompGraph, assignment):
        """Expose the memory planner's per-chip peaks for diagnostics."""
        return self._memory.plan(graph, check_assignment(graph, assignment, self.package.n_chips))
