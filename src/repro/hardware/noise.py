"""Deterministic performance perturbations for the pipeline simulator.

The "real hardware" differs from the analytical model systematically, not
randomly: a given op on a given chip always runs at the same efficiency, and
re-evaluating the same partition returns the same throughput.  We model this
with hash-derived per-(node, chip) efficiency factors plus a per-chip
systematic factor — deterministic functions of ``(node, chip, salt)``, so
the simulator is reproducible and the analytical/hardware gap is stable
across the whole search (the property Figure 7 measures).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_in_range


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorised SplitMix64 hash over uint64 inputs."""
    z = (x + np.uint64(0x9E3779B97F4A7C15)).astype(np.uint64)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def _hash_unit(a: np.ndarray, b: np.ndarray, salt: int) -> np.ndarray:
    """Deterministic uniform values in [0, 1) from integer pairs."""
    mixed = _splitmix64(
        np.asarray(a, dtype=np.uint64) * np.uint64(0x100000001B3)
        ^ _splitmix64(np.asarray(b, dtype=np.uint64) + np.uint64(salt))
    )
    return mixed.astype(np.float64) / float(2**64)


class PerturbationModel:
    """Systematic efficiency factors applied by the pipeline simulator.

    Parameters
    ----------
    op_amplitude:
        Per-(node, chip) efficiency varies in ``[1 - a, 1 + a]``.
    chip_amplitude:
        Per-chip systematic speed factor varies in ``[1 - a, 1 + a]``.
    category_amplitude:
        Per-(op-category, chip) factor in ``[1 - a, 1 + a]`` — e.g. one
        chiplet's vector unit underperforming on reductions.
    salt:
        Seed folded into every hash; two simulators with the same salt are
        identical hardware.
    """

    def __init__(
        self,
        op_amplitude: float = 0.12,
        chip_amplitude: float = 0.05,
        category_amplitude: float = 0.08,
        salt: int = 0,
    ):
        check_in_range(op_amplitude, "op_amplitude", 0.0, 0.9)
        check_in_range(chip_amplitude, "chip_amplitude", 0.0, 0.9)
        check_in_range(category_amplitude, "category_amplitude", 0.0, 0.9)
        self.op_amplitude = op_amplitude
        self.chip_amplitude = chip_amplitude
        self.category_amplitude = category_amplitude
        self.salt = int(salt)

    def chip_factor(self, n_chips: int) -> np.ndarray:
        """``(C,)`` systematic per-chip speed factors."""
        chips = np.arange(n_chips)
        unit = _hash_unit(chips, chips, self.salt + 1)
        return 1.0 + self.chip_amplitude * (2.0 * unit - 1.0)

    def factors(
        self, node_ids: np.ndarray, categories: np.ndarray, chips: np.ndarray
    ) -> np.ndarray:
        """Efficiency multipliers for each (node, chip) pair.

        Parameters
        ----------
        node_ids, categories, chips:
            Parallel arrays: node index, op category, and assigned chip.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        chips = np.asarray(chips, dtype=np.int64)
        categories = np.asarray(categories, dtype=np.int64)
        op_unit = _hash_unit(node_ids, chips, self.salt + 2)
        cat_unit = _hash_unit(categories, chips, self.salt + 3)
        op_f = 1.0 + self.op_amplitude * (2.0 * op_unit - 1.0)
        cat_f = 1.0 + self.category_amplitude * (2.0 * cat_unit - 1.0)
        chip_f = self.chip_factor(int(chips.max()) + 1 if chips.size else 1)[chips]
        return op_f * cat_f * chip_f
