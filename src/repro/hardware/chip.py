"""Per-chiplet hardware parameters."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive

MIB = 2**20


@dataclass(frozen=True)
class ChipSpec:
    """Capabilities of one chiplet in the MCM package.

    Parameters
    ----------
    sram_bytes:
        On-chip SRAM capacity; parameters and live activation buffers of the
        ops mapped to the chip must fit ("tens of MBs" in the paper).
    compute_scale:
        Multiplier applied to graph ``compute_us`` values (1.0 means the
        chiplet matches the zoo's reference chip).
    link_bandwidth_gbps:
        Bandwidth of the outgoing ring link in GB/s ("tens of GB/s").
    link_latency_us:
        Fixed per-transfer latency of one ring hop.
    io_overlap:
        Fraction of transfer time hidden behind compute by the DMA engines;
        only ``1 - io_overlap`` of each transfer stalls the chip.  The link
        itself is always occupied for the full wire time.
    """

    sram_bytes: float = 32 * MIB
    compute_scale: float = 1.0
    link_bandwidth_gbps: float = 25.0
    link_latency_us: float = 0.2
    io_overlap: float = 0.7

    def __post_init__(self):
        check_positive(self.sram_bytes, "sram_bytes")
        check_positive(self.compute_scale, "compute_scale")
        check_positive(self.link_bandwidth_gbps, "link_bandwidth_gbps")
        if self.link_latency_us < 0:
            raise ValueError("link_latency_us must be non-negative")
        if not (0.0 <= self.io_overlap < 1.0):
            raise ValueError("io_overlap must be in [0, 1)")

    def transfer_us(self, nbytes: float) -> float:
        """Time to push ``nbytes`` across one ring hop."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / (self.link_bandwidth_gbps * 1e9) * 1e6 + self.link_latency_us
