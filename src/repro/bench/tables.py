"""Text rendering of benchmark tables (paper Tables 2 and 3)."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np


def format_table(
    headers: "Sequence[str]", rows: "Sequence[Sequence[str]]", title: str = ""
) -> str:
    """Render a fixed-width text table."""
    columns = [list(col) for col in zip(headers, *rows)]
    widths = [max(len(str(cell)) for cell in col) for col in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def samples_to_threshold_table(
    curves: "Mapping[str, np.ndarray]",
    thresholds: "Sequence[float]",
    reference_method: str,
    title: str = "",
) -> str:
    """Render the paper's sample-efficiency tables (Tables 2 and 3).

    For each method and threshold: the number of samples to reach the
    threshold, and in parentheses the reduction factor relative to
    ``reference_method`` (the paper reports RL-from-scratch as 1.00x).
    ``N.A.`` marks thresholds a method never reaches.
    """
    if reference_method not in curves:
        raise ValueError(f"reference method {reference_method!r} not in curves")

    def to_reach(curve: np.ndarray, threshold: float) -> "int | None":
        hits = np.flatnonzero(curve >= threshold)
        return int(hits[0]) + 1 if hits.size else None

    reference = {
        t: to_reach(np.asarray(curves[reference_method]), t) for t in thresholds
    }
    headers = ["Method"] + [f">= {t:.2f}x" for t in thresholds]
    rows = []
    for method, curve in curves.items():
        curve = np.asarray(curve)
        cells = [method]
        for t in thresholds:
            needed = to_reach(curve, t)
            ref = reference[t]
            if needed is None:
                cells.append("N.A. (N.A.)")
            elif ref is None:
                cells.append(f"{needed} (inf)")
            else:
                cells.append(f"{needed} ({ref / needed:.2f}x)")
        rows.append(cells)
    return format_table(headers, rows, title=title)
