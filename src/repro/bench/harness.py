"""Shared machinery for the paper-reproduction benchmarks.

Every figure/table bench does the same thing: run several search methods on
one or more graphs for a fixed sample budget, collect best-so-far
improvement curves, and aggregate.  ``REPRO_BENCH_SCALE`` (environment
variable, float >= 0.05) scales sample budgets and problem sizes toward the
paper's full configuration; the default keeps a full benchmark run at
laptop timescales.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.baselines import SearchResult


@dataclass(frozen=True)
class BenchScale:
    """Scaled-down benchmark sizing derived from ``REPRO_BENCH_SCALE``.

    ``scale = 1.0`` is the default quick configuration; the paper-scale
    configuration corresponds to roughly ``scale = 8`` (full BERT, 36
    chips, full sample budgets).
    """

    scale: float

    def samples(self, base: int, cap: "int | None" = None) -> int:
        """Scale a sample budget."""
        out = max(int(round(base * self.scale)), 8)
        return min(out, cap) if cap is not None else out

    def chips(self, base: int, cap: int) -> int:
        """Scale a chip count (at least 2, at most ``cap``)."""
        return int(np.clip(round(base * self.scale), 2, cap))

    def layers(self, base: int, cap: int) -> int:
        """Scale a transformer layer count."""
        return int(np.clip(round(base * self.scale), 1, cap))


def bench_scale(default: float = 1.0) -> BenchScale:
    """Read ``REPRO_BENCH_SCALE`` from the environment."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "")
    try:
        scale = float(raw) if raw else default
    except ValueError as exc:
        raise ValueError(f"REPRO_BENCH_SCALE must be a float, got {raw!r}") from exc
    if scale < 0.05:
        raise ValueError("REPRO_BENCH_SCALE must be >= 0.05")
    return BenchScale(scale=scale)


@dataclass
class MethodCurve:
    """Best-so-far improvement curve of one method on one graph."""

    method: str
    graph: str
    curve: np.ndarray

    @property
    def final(self) -> float:
        """Improvement at the end of the budget."""
        return float(self.curve[-1]) if self.curve.size else 0.0


def run_methods(
    methods: "dict[str, Callable[[object, int], SearchResult]]",
    env_factory: "Callable[[], object]",
    n_samples: int,
    graph_name: str = "graph",
) -> list[MethodCurve]:
    """Run each method on a fresh environment; return its best-so-far curve.

    ``methods`` maps a display name to ``fn(env, n_samples) -> SearchResult``.
    Each method gets its own environment instance so sample counters and
    baselines are independent.
    """
    curves = []
    for name, fn in methods.items():
        env = env_factory()
        result = fn(env, n_samples)
        curves.append(
            MethodCurve(method=name, graph=graph_name, curve=result.best_so_far())
        )
    return curves


def repeat_methods(
    methods_factory: "Callable[[int], dict]",
    env_factory: "Callable[[], object]",
    n_samples: int,
    n_repeats: int,
    graph_name: str = "graph",
) -> tuple[dict, dict]:
    """Run every method ``n_repeats`` times with distinct seeds.

    The paper runs each experiment 5 times and reports mean and standard
    deviation; ``methods_factory(seed)`` must return the method dict for
    one seed.  Returns ``(mean_curves, std_curves)`` keyed by method.
    """
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    per_method: dict[str, list[np.ndarray]] = {}
    for repeat in range(n_repeats):
        methods = methods_factory(repeat)
        curves = run_methods(methods, env_factory, n_samples, graph_name)
        for curve in curves:
            per_method.setdefault(curve.method, []).append(curve.curve)
    means = {}
    stds = {}
    for name, runs in per_method.items():
        length = min(r.size for r in runs)
        stack = np.stack([r[:length] for r in runs])
        means[name] = stack.mean(axis=0)
        stds[name] = stack.std(axis=0)
    return means, stds


def interleaved_medians(
    runs: "dict[str, Callable[[], float]]", n_repeats: int
) -> "dict[str, dict]":
    """Interleave repeated runs of each config and report medians.

    Throughput on one box is trajectory-noisy (solver difficulty swings with
    the policy RNG seed and box load drifts), so the ROADMAP methodology is
    to never compare single shots: this helper runs the configs round-robin
    (``A B C  A B C  ...``) so load drift hits them evenly, and reports the
    per-config median alongside the raw runs.

    ``runs`` maps a config name to a zero-argument callable returning one
    scalar measurement (conventionally samples/sec).
    """
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    record: dict[str, list[float]] = {name: [] for name in runs}
    for _ in range(n_repeats):
        for name, fn in runs.items():
            record[name].append(float(fn()))
    return {
        name: {"runs": values, "median": float(np.median(values))}
        for name, values in record.items()
    }


def geomean_curves(curves: "Sequence[MethodCurve]", method: str) -> np.ndarray:
    """Geometric-mean best-so-far curve of one method across graphs.

    Invalid (zero) prefixes are floored at a small epsilon so the geomean
    is defined before the first valid sample.
    """
    selected = [c.curve for c in curves if c.method == method]
    if not selected:
        raise ValueError(f"no curves recorded for method {method!r}")
    length = min(c.size for c in selected)
    stack = np.stack([np.maximum(c[:length], 1e-9) for c in selected])
    return np.exp(np.log(stack).mean(axis=0))
