"""Benchmark harness: search-curve running, aggregation, table rendering."""

from repro.bench.harness import (
    BenchScale,
    MethodCurve,
    bench_scale,
    geomean_curves,
    run_methods,
)
from repro.bench.tables import format_table, samples_to_threshold_table

__all__ = [
    "BenchScale",
    "bench_scale",
    "MethodCurve",
    "run_methods",
    "geomean_curves",
    "format_table",
    "samples_to_threshold_table",
]
