"""Core partitioner API: environment, RL partitioner, baselines, pipelines.

Public entry points:

* :class:`PartitionEnvironment` — wraps a cost model + static validation +
  the reward definition (throughput improvement over a compiler heuristic).
* :class:`RLPartitioner` — the paper's method: policy + constraint solver +
  PPO, with ``search`` / ``zero_shot`` / ``fine_tune`` modes.
* :func:`greedy_partition`, :class:`RandomSearch`,
  :class:`SimulatedAnnealing`, :class:`UnconstrainedRL` — baselines.
* :func:`pretrain`, :func:`select_checkpoint` — the pre-training pipeline.
"""

from repro.core.baselines import (
    HillClimbing,
    RandomSearch,
    SearchResult,
    SimulatedAnnealing,
    UnconstrainedRL,
    greedy_partition,
    random_baseline_partition,
)
from repro.core.environment import PartitionEnvironment
from repro.core.finetune import fine_tune_search, zero_shot_search
from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.core.pretrain import (
    Checkpoint,
    PretrainConfig,
    pretrain,
    select_checkpoint,
)

__all__ = [
    "PartitionEnvironment",
    "RLPartitioner",
    "RLPartitionerConfig",
    "SearchResult",
    "greedy_partition",
    "random_baseline_partition",
    "RandomSearch",
    "HillClimbing",
    "SimulatedAnnealing",
    "UnconstrainedRL",
    "pretrain",
    "select_checkpoint",
    "Checkpoint",
    "PretrainConfig",
    "zero_shot_search",
    "fine_tune_search",
]
