"""Deployment helpers: zero-shot and fine-tuning on an unseen graph.

These are the paper's two deployment modes (Figure 4, right): load the
optimal pre-trained checkpoint, then either run frozen-policy inference
(zero-shot) or continue PPO updates against the target platform
(fine-tuning, which recovers from-scratch quality in a fraction of the
samples — Tables 2 and 3).
"""

from __future__ import annotations

from repro.core.baselines import SearchResult
from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner


def zero_shot_search(
    partitioner: RLPartitioner,
    pretrained_state: dict,
    env: PartitionEnvironment,
    n_samples: int,
) -> SearchResult:
    """Frozen-policy search from a pre-trained checkpoint."""
    partitioner.load_state_dict(pretrained_state)
    return partitioner.search(env, n_samples, train=False)


def fine_tune_search(
    partitioner: RLPartitioner,
    pretrained_state: dict,
    env: PartitionEnvironment,
    n_samples: int,
) -> SearchResult:
    """Fine-tuning search: PPO updates warm-started from a checkpoint."""
    partitioner.load_state_dict(pretrained_state)
    return partitioner.search(env, n_samples, train=True)
