"""The partitioning environment: evaluation, validity, and reward.

The environment is the only object search algorithms talk to.  It applies
the platform's behaviour from the paper: statically invalid partitions and
partitions failing the dynamic constraint return **zero throughput**, and
rewards are throughput *improvements over the compiler heuristic* (the
paper's reporting metric in Figures 5 and 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baselines import greedy_partition
from repro.graphs.graph import CompGraph
from repro.hardware.base import CostModel, EvaluationResult
from repro.solver.constraints import validate_partition


@dataclass(frozen=True)
class EnvSample:
    """One environment evaluation.

    Attributes
    ----------
    assignment:
        The evaluated partition.
    result:
        Raw cost-model outcome.
    improvement:
        ``throughput / baseline_throughput`` (0 for invalid partitions).
    """

    assignment: np.ndarray
    result: EvaluationResult
    improvement: float


class PartitionEnvironment:
    """Evaluate partitions of one graph on one platform.

    Parameters
    ----------
    graph:
        The workload being partitioned.
    cost_model:
        Platform implementation (analytical model or pipeline simulator).
    n_chips:
        Number of chiplets.
    check_static:
        Validate Equations 2-4 before invoking the cost model; invalid
        partitions score zero throughput, as on the paper's platform.
    baseline_assignment:
        Reference partition for the improvement metric; defaults to the
        greedy compiler heuristic.
    objective:
        ``"throughput"`` (the paper's primary metric) or ``"latency"``
        ("our framework can easily re-target a latency metric", §5.1);
        improvements are throughput ratio or latency reduction ratio
        respectively.
    topology:
        Platform interconnect the static validation runs against.  Defaults
        to the cost model's package topology when it has one (so the
        environment and the platform always agree), else the legacy
        uni-ring semantics.
    """

    def __init__(
        self,
        graph: CompGraph,
        cost_model: CostModel,
        n_chips: int,
        check_static: bool = True,
        baseline_assignment: "np.ndarray | None" = None,
        objective: str = "throughput",
        topology=None,
    ):
        if objective not in ("throughput", "latency"):
            raise ValueError("objective must be 'throughput' or 'latency'")
        self.graph = graph
        self.cost_model = cost_model
        self.n_chips = n_chips
        self.check_static = check_static
        self.objective = objective
        if topology is not None:
            if topology.n_chips != n_chips:
                raise ValueError(
                    f"topology is for {topology.n_chips} chips, environment "
                    f"has {n_chips}"
                )
        else:
            topology = getattr(
                getattr(cost_model, "package", None), "topology", None
            )
            if topology is not None and topology.n_chips != n_chips:
                # A package sized differently from the environment (legacy
                # tolerance, used by chip-count-mismatch tests): fall back
                # to the uni-ring validation semantics.
                topology = None
        self.topology = topology
        self.n_samples = 0

        if baseline_assignment is None:
            baseline_assignment = greedy_partition(graph, n_chips)
        self.baseline_assignment = np.asarray(baseline_assignment, dtype=np.int64)
        baseline_result = cost_model.evaluate(graph, self.baseline_assignment)
        if not baseline_result.valid:
            raise ValueError(
                "baseline partition is invalid on this platform "
                f"({baseline_result.failure_reason}); cannot define improvements"
            )
        self.baseline_throughput = baseline_result.throughput
        self.baseline_latency_us = baseline_result.latency_us

    def evaluate(self, assignment) -> EnvSample:
        """Score one partition; counts toward the sample budget."""
        assignment = np.asarray(assignment, dtype=np.int64)
        self.n_samples += 1
        if self.check_static:
            report = validate_partition(
                self.graph, assignment, self.n_chips, topology=self.topology
            )
            if not report.ok:
                result = EvaluationResult.invalid(
                    "static:" + ",".join(report.violated), self.n_chips
                )
                return EnvSample(assignment=assignment, result=result, improvement=0.0)
        result = self.cost_model.evaluate(self.graph, assignment)
        if not result.valid:
            improvement = 0.0
        elif self.objective == "throughput":
            improvement = result.throughput / self.baseline_throughput
        else:
            improvement = self.baseline_latency_us / result.latency_us
        return EnvSample(assignment=assignment, result=result, improvement=improvement)

    def reward(self, sample: EnvSample) -> float:
        """RL reward for a sample: its throughput improvement."""
        return sample.improvement
