"""The paper's method: RL + constraint solver partitioner.

One search iteration (Figure 3):

1. the policy proposes a candidate partition ``y`` and probability matrix
   ``P`` via iterative refinement,
2. the constraint solver repairs it into a valid ``y'`` (FIX mode by
   default — the paper found it outperforms SAMPLE),
3. the environment evaluates ``y'``; its throughput improvement is the
   reward assigned to the action ``y``,
4. every ``n_rollouts`` samples, PPO updates the policy.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.baselines import SearchResult
from repro.core.environment import PartitionEnvironment
from repro.nn import functional as F
from repro.nn.backend import SERVE_PRECISIONS
from repro.rl.features import N_FEATURES, N_TOPO_FEATURES, GraphFeatures, featurize
from repro.rl.policy import PartitionPolicy
from repro.rl.ppo import PPOConfig, PPOTrainer
from repro.rl.rollout import Rollout, RolloutBuffer
from repro.solver.engine import ConstraintSolver
from repro.obs.profile import NULL_PHASE
from repro.solver.strategies import fix_partition, sample_partition
from repro.utils.rng import as_generator

#: How many per-graph solver instances a partitioner keeps warm.  Reuse
#: preserves the solver's triangle-table memo and descendant/ancestor
#: closures across samples and search calls (a pretraining rotation visits
#: the same graphs every cycle).
_SOLVER_CACHE_SIZE = 16


def _topology_semantics(topology, n_chips: int) -> tuple:
    """Constraint-semantics identity of a platform topology.

    ``None`` and every total-order topology share the legacy uni-ring
    semantics, so they compare equal; anything else is identified by its
    topology key.  Used to reject partitioner/environment platform
    mismatches before they silently search the wrong constraint set.
    """
    if topology is None or topology.is_total_order:
        return ("uniring", n_chips)
    return topology.key


@dataclass(frozen=True)
class RLPartitionerConfig:
    """Configuration of the RL partitioner (defaults follow Section 5.1).

    ``solver_mode`` selects how the constraint solver turns policy output
    into a valid partition: ``"sample"`` draws through Algorithm 1 using the
    policy's probability matrix; ``"fix"`` repairs the sampled candidate via
    Algorithm 2.  The paper reports FIX outperforming SAMPLE on CP-SAT; with
    this repo's chronological-back-tracking solver the trade-off flips
    (see the solver-mode ablation bench), so SAMPLE is the default.

    ``propose_batch`` caps how many candidates :meth:`RLPartitioner.search`
    draws per policy forward pass; it bounds the transient ``(R*N, .)``
    activation size, never the sample budget.

    ``triangle_frontier`` forwards to :class:`ConstraintSolver`: ``None``
    keeps the solver's heuristic (eager triangle re-propagation only for
    ``n_chips <= 4``); ``True``/``False`` forces it — enabling it above 4
    chips helps wedge-heavy instances at scale.

    ``precision`` selects the numeric backend of the policy network
    (:mod:`repro.nn.backend`): ``"float64"`` (default) is the frozen
    bit-for-bit serial path; ``"float32"`` is the fused large-GEMM fast
    path, pinned by tolerance-bounded equivalence tests instead of goldens
    (see ROADMAP "Precision invariants"); ``"int8"`` is the inference-only
    serving backend (quantized encoder, float32 heads) — training with it
    is refused by the PPO trainer, so it is only reachable through the
    serving stack.
    """

    hidden: int = 128
    n_sage_layers: int = 8
    n_policy_layers: int = 2
    refine_iters: int = 2
    solver_mode: str = "sample"
    explore_eps: float = 0.1
    propose_batch: int = 16
    triangle_frontier: "bool | None" = None
    precision: str = "float64"
    ppo: PPOConfig = PPOConfig()

    def __post_init__(self):
        if self.solver_mode not in ("fix", "sample"):
            raise ValueError("solver_mode must be 'fix' or 'sample'")
        if not (0.0 <= self.explore_eps < 1.0):
            raise ValueError("explore_eps must be in [0, 1)")
        if self.propose_batch < 1:
            raise ValueError("propose_batch must be >= 1")
        if self.precision not in SERVE_PRECISIONS:
            raise ValueError(f"precision must be one of {SERVE_PRECISIONS}")


@dataclass
class WindowDraw:
    """Result of drawing one window of samples against fixed policy weights.

    Attributes
    ----------
    rollouts:
        Training rows (one per sample) when drawn with ``train=True``,
        otherwise an empty list.
    improvements:
        Per-sample throughput improvements, in draw order.
    best_assignment / best_improvement:
        Best valid partition seen within the window (``None`` / 0.0 when
        every sample was invalid).
    """

    rollouts: list = field(default_factory=list)
    improvements: "np.ndarray | None" = None
    best_assignment: "np.ndarray | None" = None
    best_improvement: float = 0.0


class RLPartitioner:
    """Constrained deep-RL partitioner with pre-train / fine-tune support.

    Parameters
    ----------
    n_chips:
        Number of chiplets the policy targets (fixed per instance).
    config:
        Network + PPO configuration.
    rng:
        Seed or generator for sampling and PPO shuffling.
    topology:
        Platform interconnect (:mod:`repro.hardware.topology`).  ``None``
        (default) is the legacy uni-ring path, bit-for-bit: legacy solver
        engine and legacy feature width.  Passing a topology — including an
        explicit ``UniRing`` — switches featurisation to the
        topology-conditioned columns (one policy can then train across
        platforms) and builds solvers for that interconnect.
    """

    def __init__(
        self,
        n_chips: int,
        config: "RLPartitionerConfig | None" = None,
        rng=None,
        topology=None,
    ):
        if topology is not None and topology.n_chips != n_chips:
            raise ValueError(
                f"topology is for {topology.n_chips} chips, partitioner got "
                f"{n_chips}"
            )
        self.n_chips = n_chips
        self.config = config or RLPartitionerConfig()
        self.rng = as_generator(rng)
        self.topology = topology
        self.policy = PartitionPolicy(
            n_chips=n_chips,
            n_features=N_FEATURES + (N_TOPO_FEATURES if topology is not None else 0),
            hidden=self.config.hidden,
            n_sage_layers=self.config.n_sage_layers,
            n_policy_layers=self.config.n_policy_layers,
            refine_iters=self.config.refine_iters,
            rng=self.rng,
            backend=self.config.precision,
        )
        self.trainer = PPOTrainer(self.policy, self.config.ppo, rng=self.rng)
        # (graph, solver) entries keyed by graph identity, LRU-evicted.
        self._solver_cache: "OrderedDict[int, tuple]" = OrderedDict()
        # (tag, weights_version) of the checkpoint currently installed via
        # install_checkpoint; lets long-lived serving partitioners skip
        # redundant weight loads (see the serving invariants in ROADMAP.md).
        self._installed_checkpoint: "tuple | None" = None
        # Optional PhaseTimer (repro.obs.profile) attached by the CLI or
        # benches; None keeps every hook site on the shared no-op phase.
        self.profiler = None

    def _phase(self, name: str):
        """Profiler phase for ``name``, or the shared no-op when detached."""
        prof = self.profiler
        return NULL_PHASE if prof is None else prof.phase(name)

    def effective_topology(self, env):
        """Platform the next search runs against (the environment's).

        A legacy partitioner (``topology=None``) only targets the uni-ring:
        its policy has no platform-descriptor inputs and its solvers run the
        legacy engine.  A topology-conditioned partitioner follows the
        *environment's* interconnect — same policy weights, per-platform
        features and solvers — which is what lets one policy train and
        deploy across platforms.  Mismatched constraint semantics in either
        direction (legacy policy on a non-ring platform, or a non-ring
        partitioner on a legacy uni-ring-validating environment) raise
        rather than silently searching the wrong constraint set.
        """
        env_topology = getattr(env, "topology", None)
        if self.topology is None:
            if _topology_semantics(env_topology, self.n_chips) != (
                "uniring",
                self.n_chips,
            ):
                raise ValueError(
                    f"environment topology {env_topology.name!r} requires a "
                    "topology-conditioned partitioner (pass topology=... to "
                    "RLPartitioner)"
                )
            return None
        effective = env_topology if env_topology is not None else self.topology
        if effective.n_chips != self.n_chips:
            raise ValueError(
                f"environment topology is for {effective.n_chips} chips, "
                f"policy expects {self.n_chips}"
            )
        if env_topology is None and not self.topology.is_total_order:
            raise ValueError(
                "environment validates legacy uni-ring semantics; it cannot "
                f"evaluate partitions for topology {self.topology.name!r} — "
                "build it on a package with that topology"
            )
        return effective

    def _check_features(self, feats: GraphFeatures, graph) -> None:
        """Reject featurisations built for another graph or platform mode."""
        if feats.n_nodes != graph.n_nodes:
            raise ValueError(
                f"features are for a {feats.n_nodes}-node graph, "
                f"environment graph has {graph.n_nodes}"
            )
        expected = N_FEATURES + (N_TOPO_FEATURES if self.topology is not None else 0)
        width = feats.node_features.shape[1]
        if width != expected:
            raise ValueError(
                f"features have width {width}, policy expects {expected} — "
                "a topology-conditioned partitioner needs "
                "featurize(graph, topology), a legacy one featurize(graph)"
            )

    def _solver_for(self, graph, topology=None) -> ConstraintSolver:
        """A reset constraint solver for ``graph``, reused across samples."""
        key = (id(graph), _topology_semantics(topology, self.n_chips))
        entry = self._solver_cache.get(key)
        if entry is not None and entry[0] is graph:
            self._solver_cache.move_to_end(key)
            solver = entry[1]
            if solver.n_decisions:
                solver.reset()
            return solver
        solver = ConstraintSolver(
            graph,
            self.n_chips,
            triangle_frontier=self.config.triangle_frontier,
            topology=topology,
        )
        while len(self._solver_cache) >= _SOLVER_CACHE_SIZE:
            self._solver_cache.popitem(last=False)
        self._solver_cache[key] = (graph, solver)
        return solver

    # ------------------------------------------------------------------
    # Weights
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Policy weights (for checkpointing)."""
        return self.policy.state_dict()

    def load_state_dict(self, state: dict) -> None:
        """Restore policy weights from :meth:`state_dict`."""
        self.policy.load_state_dict(state)
        self._installed_checkpoint = None

    def install_checkpoint(self, state: dict, tag=None) -> bool:
        """Load ``state`` unless the same tagged checkpoint is already live.

        The warm-reuse hook for long-lived serving partitioners
        (:mod:`repro.serve.registry`): ``tag`` names the checkpoint (any
        hashable, conventionally ``(name, version)``).  The load is skipped
        only when the tag matches *and* the policy weights are untouched
        since that install (tracked via :meth:`Module.weights_version`, so
        training or a direct ``load_state_dict`` in between forces a
        reload).  Returns ``True`` when weights were actually loaded.
        """
        if (
            tag is not None
            and self._installed_checkpoint is not None
            and self._installed_checkpoint[0] == tag
            and self._installed_checkpoint[1] == self.policy.weights_version()
        ):
            return False
        self.policy.load_state_dict(state)
        self._installed_checkpoint = (
            None if tag is None else (tag, self.policy.weights_version())
        )
        # Quantized backends pay their per-tensor quantization here, at
        # install time, not on the first request — and the error stats it
        # yields feed /metrics (int8 quantization observability).
        self.policy.quantization_stats()
        return True

    def quantization_stats(self) -> "dict | None":
        """Int8 quantization error stats of the live weights (None unless
        the backend is quantized); see
        :meth:`PartitionPolicy.quantization_stats`."""
        return self.policy.quantization_stats()

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        env: PartitionEnvironment,
        n_samples: int,
        train: bool = True,
        use_solver: bool = True,
        features: "GraphFeatures | None" = None,
    ) -> SearchResult:
        """Run the constrained-RL search loop for ``n_samples`` evaluations.

        Parameters
        ----------
        env:
            Environment for one graph + platform.
        n_samples:
            Evaluation budget (each sample costs one hardware/cost-model
            evaluation, the paper's x-axis).
        train:
            Update the policy with PPO (disable for zero-shot deployment).
        use_solver:
            Repair candidates with the constraint solver; disabling this
            reproduces the paper's "RL without constraint solver" ablation.
        features:
            Optional precomputed featurisation of ``env.graph``.
        """
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        if env.n_chips != self.n_chips:
            raise ValueError(
                f"environment has {env.n_chips} chips, policy expects {self.n_chips}"
            )
        topology = self.effective_topology(env)
        graph = env.graph
        feats = features if features is not None else featurize(graph, topology)
        self._check_features(feats, graph)

        improvements = np.zeros(n_samples)
        best: "np.ndarray | None" = None
        best_improvement = 0.0
        buffer = RolloutBuffer()
        n_rollouts = self.trainer.config.n_rollouts

        max_batch = self.config.propose_batch
        k = 0
        while k < n_samples:
            # All candidates between two PPO updates come from the same
            # policy weights, so they are drawn in one batched forward pass;
            # in train mode the batch never outruns the rollout window.
            room = (n_rollouts - len(buffer)) if train else max_batch
            batch_size = min(room, max_batch, n_samples - k)
            draw = self._draw_batch(
                env, feats, batch_size, self.rng, train, use_solver
            )
            improvements[k : k + batch_size] = draw.improvements
            if draw.best_improvement > best_improvement:
                best = draw.best_assignment
                best_improvement = draw.best_improvement
            k += batch_size

            if train:
                for rollout in draw.rollouts:
                    buffer.add(rollout)
                if len(buffer) >= n_rollouts:
                    with self._phase("ppo_update"):
                        self.trainer.update(feats, buffer)
                    buffer.clear()

        return SearchResult(
            improvements=improvements,
            best_assignment=best,
            best_improvement=best_improvement,
            metadata={"trained": train, "use_solver": use_solver},
        )

    def _draw_batch(
        self,
        env: PartitionEnvironment,
        feats: GraphFeatures,
        batch_size: int,
        rng,
        train: bool,
        use_solver: bool,
    ) -> WindowDraw:
        """Draw and evaluate one proposal batch against the current weights.

        This is the per-sample hot loop shared bit-for-bit by the serial
        search path and the parallel rollout workers
        (:mod:`repro.parallel`): one batched policy forward pass, then per
        candidate the epsilon-smoothed behaviour distribution, the solver
        repair, and the environment evaluation — all drawn from ``rng`` in a
        fixed order so a given (weights, rng state) pair always produces the
        same rows.
        """
        graph = env.graph
        topology = self.effective_topology(env)
        eps = self.config.explore_eps
        with self._phase("encoder"):
            proposal = self.policy.propose_batch(feats, batch_size, rng=rng)
        improvements = np.zeros(batch_size)
        rollouts: list[Rollout] = []
        best: "np.ndarray | None" = None
        best_improvement = 0.0
        for j in range(batch_size):
            candidate = proposal.candidates[j]
            conditioning = proposal.conditionings[j]
            probs = proposal.probs[j]
            # Behaviour policy: the network's distribution smoothed with
            # an epsilon of uniform exploration, so a sharply pre-trained
            # policy keeps probing the space during (fine-)tuning.
            if train and eps > 0.0:
                probs = (1.0 - eps) * probs + eps / self.n_chips
            if use_solver:
                solver = self._solver_for(graph, topology)
                with self._phase("solver"):
                    if self.config.solver_mode == "fix":
                        repaired = fix_partition(
                            graph, candidate, self.n_chips, rng=rng, solver=solver
                        )
                    else:
                        repaired = sample_partition(
                            graph, probs, self.n_chips, rng=rng, solver=solver
                        )
            else:
                repaired = candidate
            with self._phase("rollout"):
                sample = env.evaluate(repaired)
            improvements[j] = sample.improvement
            if sample.improvement > best_improvement:
                best, best_improvement = repaired.copy(), sample.improvement

            if train:
                # Train on the *repaired* action y': it is the partition
                # the reward was measured on, so reinforcing it couples
                # the gradient to the environment signal even while the
                # raw candidates are still far from valid (the solver
                # acts as an action-correction layer, cf. Section 4.1:
                # "we use the reward of y' rather than directly using
                # the reward of y").
                action = repaired if use_solver else candidate
                log_prob = np.log(
                    probs[np.arange(graph.n_nodes), action] + 1e-12
                )
                rollouts.append(
                    Rollout(
                        conditioning=conditioning,
                        candidate=action,
                        repaired=repaired,
                        log_prob=log_prob,
                        value=float(proposal.values[j]),
                        reward=env.reward(sample),
                    )
                )
        return WindowDraw(
            rollouts=rollouts,
            improvements=improvements,
            best_assignment=best,
            best_improvement=best_improvement,
        )

    def draw_window(
        self,
        env: PartitionEnvironment,
        n_samples: int,
        rng=None,
        train: bool = True,
        use_solver: bool = True,
        features: "GraphFeatures | None" = None,
    ) -> WindowDraw:
        """Draw ``n_samples`` rollouts against the *current* policy weights.

        Unlike :meth:`search` this never runs a PPO update: it is the
        worker-side primitive of the parallel subsystem — every sample in
        the window is drawn from one weights version (the PR-1 batching
        invariant), and the caller owns what happens to the rows.  Chunks
        internally by ``config.propose_batch``.
        """
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        rng = as_generator(rng)
        feats = (
            features
            if features is not None
            else featurize(env.graph, self.effective_topology(env))
        )
        self._check_features(feats, env.graph)
        improvements = np.zeros(n_samples)
        rollouts: list[Rollout] = []
        best: "np.ndarray | None" = None
        best_improvement = 0.0
        k = 0
        while k < n_samples:
            batch_size = min(self.config.propose_batch, n_samples - k)
            draw = self._draw_batch(env, feats, batch_size, rng, train, use_solver)
            improvements[k : k + batch_size] = draw.improvements
            rollouts.extend(draw.rollouts)
            if draw.best_improvement > best_improvement:
                best = draw.best_assignment
                best_improvement = draw.best_improvement
            k += batch_size
        return WindowDraw(
            rollouts=rollouts,
            improvements=improvements,
            best_assignment=best,
            best_improvement=best_improvement,
        )

    # ------------------------------------------------------------------
    def propose_best(
        self, env: PartitionEnvironment, n_samples: int = 1
    ) -> tuple[np.ndarray, float]:
        """Zero-shot: draw ``n_samples`` without training, return the best."""
        result = self.search(env, n_samples, train=False)
        if result.best_assignment is None:
            raise RuntimeError("no valid partition found")
        return result.best_assignment, result.best_improvement
