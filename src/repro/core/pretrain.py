"""Pre-training pipeline (paper Section 4.3 and Figure 4).

Two workers:

* **Training worker** — iterates over the training graphs, running the
  constrained-RL loop with the analytical cost model as reward, and
  snapshots the policy weights periodically (the paper: 20,000 samples,
  200 checkpoints, a few hours on the analytical model).
* **Validation worker** — replays every checkpoint on the validation
  graphs (zero-shot and/or a short fine-tune) and picks the checkpoint
  with the best average reward for deployment.

This module is the *serial reference*: :func:`pretrain` and
:func:`select_checkpoint` run one after the other in a single process.
The paper's production layout — independent training and validation
processes — lives in :mod:`repro.parallel`: ``parallel_pretrain`` /
``parallel_select_checkpoint`` fan each worker over a rollout pool, and
``Pretrainer`` runs training and checkpoint validation concurrently.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner
from repro.graphs.graph import CompGraph
from repro.rl.features import featurize
from repro.utils.rng import as_generator


@dataclass
class Checkpoint:
    """A snapshot of policy weights during pre-training.

    Attributes
    ----------
    step:
        Number of training samples consumed when the snapshot was taken.
    state:
        Policy ``state_dict``.
    score:
        Validation score (filled by :func:`select_checkpoint`).
    """

    step: int
    state: dict
    score: "float | None" = None


@dataclass(frozen=True)
class PretrainConfig:
    """Pre-training hyper-parameters (paper defaults, scaled via arguments).

    Attributes
    ----------
    total_samples:
        Total environment samples across all training graphs (paper: 20000).
    n_checkpoints:
        Number of weight snapshots to keep (paper: 200).
    samples_per_graph:
        Contiguous samples spent on one graph before rotating to the next;
        kept equal to one PPO buffer by default.
    """

    total_samples: int = 20000
    n_checkpoints: int = 200
    samples_per_graph: int = 20

    def __post_init__(self):
        if self.total_samples < 1 or self.n_checkpoints < 1 or self.samples_per_graph < 1:
            raise ValueError("pretraining sizes must be >= 1")


def pretrain(
    partitioner: RLPartitioner,
    graphs: "Sequence[CompGraph]",
    env_factory: "Callable[[CompGraph], PartitionEnvironment]",
    config: "PretrainConfig | None" = None,
    progress: "Callable[[int, float], None] | None" = None,
) -> list[Checkpoint]:
    """Run the training worker; returns the checkpoint sequence.

    Parameters
    ----------
    partitioner:
        The RL partitioner to train (modified in place).
    graphs:
        Training graphs (the paper's 66-graph split).
    env_factory:
        Builds the environment (cost model + baseline) for each graph.
    config:
        Budget and checkpoint cadence.
    progress:
        Optional callback ``(samples_done, mean_improvement)`` per rotation.
    """
    if not graphs:
        raise ValueError("graphs must be non-empty")
    cfg = config or PretrainConfig()
    envs = [env_factory(g) for g in graphs]
    feats = [
        featurize(g, partitioner.effective_topology(env))
        for g, env in zip(graphs, envs)
    ]

    checkpoints: list[Checkpoint] = []
    every = max(cfg.total_samples // cfg.n_checkpoints, 1)
    next_checkpoint = every

    done = 0
    g_idx = 0
    while done < cfg.total_samples:
        budget = min(cfg.samples_per_graph, cfg.total_samples - done)
        env = envs[g_idx % len(envs)]
        result = partitioner.search(
            env, budget, train=True, features=feats[g_idx % len(feats)]
        )
        done += budget
        g_idx += 1
        if progress is not None:
            progress(done, float(result.improvements.mean()))
        while done >= next_checkpoint:
            checkpoints.append(Checkpoint(step=done, state=partitioner.state_dict()))
            next_checkpoint += every
    if not checkpoints or checkpoints[-1].step != done:
        checkpoints.append(Checkpoint(step=done, state=partitioner.state_dict()))
    return checkpoints


def save_checkpoints(checkpoints: "Sequence[Checkpoint]", path: str) -> None:
    """Persist a checkpoint sequence to disk (pickle)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "wb") as fh:
        pickle.dump(
            [{"step": c.step, "state": c.state, "score": c.score} for c in checkpoints],
            fh,
        )


def load_checkpoints(path: str) -> list[Checkpoint]:
    """Load a checkpoint sequence written by :func:`save_checkpoints`."""
    with open(path, "rb") as fh:
        raw = pickle.load(fh)
    return [Checkpoint(step=c["step"], state=c["state"], score=c["score"]) for c in raw]


def select_checkpoint(
    checkpoints: "Sequence[Checkpoint]",
    partitioner: RLPartitioner,
    graphs: "Sequence[CompGraph]",
    env_factory: "Callable[[CompGraph], PartitionEnvironment]",
    zero_shot_samples: int = 4,
    finetune_samples: int = 0,
    rng=None,
) -> Checkpoint:
    """Run the validation worker; returns the best-scoring checkpoint.

    Each checkpoint is scored by the mean best improvement over the
    validation graphs using ``zero_shot_samples`` frozen-policy draws,
    optionally followed by ``finetune_samples`` of fine-tuning.  Scores are
    recorded on the checkpoints in place.
    """
    if not checkpoints:
        raise ValueError("checkpoints must be non-empty")
    if not graphs:
        raise ValueError("graphs must be non-empty")
    rng = as_generator(rng)
    # One environment per graph, shared by every checkpoint: environment
    # construction evaluates the baseline partition on the cost model, which
    # must not be repaid checkpoint x graph times.
    envs = [env_factory(g) for g in graphs]
    feats = [
        featurize(g, partitioner.effective_topology(env))
        for g, env in zip(graphs, envs)
    ]

    best: "Checkpoint | None" = None
    for ckpt in checkpoints:
        scores = []
        for env, f in zip(envs, feats):
            partitioner.load_state_dict(ckpt.state)
            result = partitioner.search(
                env, zero_shot_samples, train=False, features=f
            )
            score = result.best_improvement
            if finetune_samples > 0:
                ft = partitioner.search(
                    env, finetune_samples, train=True, features=f
                )
                score = max(score, ft.best_improvement)
            scores.append(score)
        ckpt.score = float(np.mean(scores))
        if best is None or ckpt.score > best.score:
            best = ckpt
    return best
