"""Baseline partitioners: greedy compiler heuristic and search strategies.

These reproduce the paper's comparison points (Section 5.1):

* **Greedy heuristic** — the production-compiler baseline all improvements
  are measured against: contiguous compute-balanced segments along a
  topological order, with cut points adjusted so no edge spans more than one
  chip boundary (which guarantees all static constraints).
* **Random search** — uniform distribution into the solver's SAMPLE mode,
  keep the best.
* **Simulated annealing** — perturb a distribution over a random node
  subset, sample through the solver, Metropolis-accept on throughput.
* **Unconstrained RL** — the paper's "RL without constraint solver"
  ablation, which cannot find valid partitions at realistic scales.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.graph import CompGraph
from repro.solver.fallback import contiguous_partition
from repro.solver.strategies import sample_partition
from repro.utils.rng import as_generator


@dataclass
class SearchResult:
    """Common output of every search method.

    Attributes
    ----------
    improvements:
        Per-sample throughput improvement (0 for invalid samples), in the
        order the samples were evaluated.
    best_assignment:
        The best valid partition found (``None`` if none was valid).
    best_improvement:
        Its improvement over the baseline heuristic.
    """

    improvements: np.ndarray
    best_assignment: "np.ndarray | None"
    best_improvement: float
    metadata: dict = field(default_factory=dict)

    @property
    def n_samples(self) -> int:
        """Number of environment evaluations consumed."""
        return int(self.improvements.size)

    def best_so_far(self) -> np.ndarray:
        """Monotone best-improvement curve over samples (Figures 5/6)."""
        return np.maximum.accumulate(self.improvements) if self.improvements.size else self.improvements

    def samples_to_reach(self, threshold: float) -> "int | None":
        """Samples needed to reach ``threshold`` improvement (Tables 2/3)."""
        curve = self.best_so_far()
        hits = np.flatnonzero(curve >= threshold)
        return int(hits[0]) + 1 if hits.size else None


# ----------------------------------------------------------------------
# Greedy compiler heuristic
# ----------------------------------------------------------------------
def greedy_partition(graph: CompGraph, n_chips: int) -> np.ndarray:
    """The production compiler's greedy heuristic (paper baseline).

    Contiguous segments along a topological order, balanced by **node
    count** — the over-simplified performance model the paper attributes to
    production heuristics ("they often fail to find the optimal placement
    due to their over-simplification of the performance model"): the number
    of ops per chip is even, but a chip that collects the matmul-heavy ops
    becomes the pipeline bottleneck, leaving the headroom that search-based
    methods exploit.  Cut points are adjusted so no edge spans more than
    one chip boundary, which guarantees the static constraints; see
    :func:`repro.solver.fallback.contiguous_partition`.  Complexity is
    ``O(N + E)``, matching the paper's description of compiler heuristics
    as ``O(N)``-fast.
    """
    return contiguous_partition(graph, n_chips, weights=np.ones(graph.n_nodes))


def random_baseline_partition(
    graph: CompGraph, n_chips: int, seed: int = 0, topology=None
) -> np.ndarray:
    """The ``O(N)`` random-partition heuristic (paper Section 5.1).

    One uniform draw through the solver's SAMPLE mode — the other fast
    compiler heuristic the paper measures improvements against ("such as a
    greedy algorithm and a random partition").
    """
    probs = np.full((graph.n_nodes, n_chips), 1.0 / n_chips)
    return sample_partition(graph, probs, n_chips, rng=seed, topology=topology)


# ----------------------------------------------------------------------
# Random search
# ----------------------------------------------------------------------
class RandomSearch:
    """Uniform-distribution SAMPLE-mode search (paper's Random baseline)."""

    def __init__(self, rng=None):
        self.rng = as_generator(rng)

    def search(self, env, n_samples: int) -> SearchResult:
        """Draw ``n_samples`` solver-valid partitions; keep the best."""
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        graph, n_chips = env.graph, env.n_chips
        topology = getattr(env, "topology", None)
        probs = np.full((graph.n_nodes, n_chips), 1.0 / n_chips)
        improvements = np.zeros(n_samples)
        best: "np.ndarray | None" = None
        best_improvement = 0.0
        for k in range(n_samples):
            assignment = sample_partition(
                graph, probs, n_chips, rng=self.rng, topology=topology
            )
            sample = env.evaluate(assignment)
            improvements[k] = sample.improvement
            if sample.improvement > best_improvement:
                best, best_improvement = assignment, sample.improvement
        return SearchResult(
            improvements=improvements,
            best_assignment=best,
            best_improvement=best_improvement,
        )


# ----------------------------------------------------------------------
# Simulated annealing
# ----------------------------------------------------------------------
class SimulatedAnnealing:
    """Distribution-space simulated annealing through the solver.

    Follows the paper's description: start from the uniform distribution;
    each iteration re-randomises the distribution rows of a random node
    subset, draws a partition through SAMPLE mode, and Metropolis-accepts
    the new distribution based on measured throughput.

    Parameters
    ----------
    perturb_fraction:
        Fraction of nodes whose distribution is re-drawn per iteration.
    initial_temperature:
        Metropolis temperature in improvement units.
    cooling:
        Multiplicative temperature decay per iteration.
    concentration:
        Dirichlet concentration of re-drawn rows (1 = uniform simplex).
    """

    def __init__(
        self,
        perturb_fraction: float = 0.1,
        initial_temperature: float = 0.05,
        cooling: float = 0.995,
        concentration: float = 0.5,
        rng=None,
    ):
        if not (0 < perturb_fraction <= 1):
            raise ValueError("perturb_fraction must be in (0, 1]")
        if initial_temperature <= 0 or not (0 < cooling <= 1):
            raise ValueError("invalid annealing schedule")
        self.perturb_fraction = perturb_fraction
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.concentration = concentration
        self.rng = as_generator(rng)

    def search(self, env, n_samples: int) -> SearchResult:
        """Run ``n_samples`` annealing iterations (one evaluation each)."""
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        graph, n_chips = env.graph, env.n_chips
        topology = getattr(env, "topology", None)
        rng = self.rng
        n = graph.n_nodes
        probs = np.full((n, n_chips), 1.0 / n_chips)
        current_score = -np.inf
        temperature = self.initial_temperature

        improvements = np.zeros(n_samples)
        best: "np.ndarray | None" = None
        best_improvement = 0.0
        n_perturb = max(1, int(round(self.perturb_fraction * n)))
        for k in range(n_samples):
            proposal = probs.copy()
            nodes = rng.choice(n, size=n_perturb, replace=False)
            proposal[nodes] = rng.dirichlet(
                np.full(n_chips, self.concentration), size=n_perturb
            )
            assignment = sample_partition(
                graph, proposal, n_chips, rng=rng, topology=topology
            )
            sample = env.evaluate(assignment)
            improvements[k] = sample.improvement
            if sample.improvement > best_improvement:
                best, best_improvement = assignment, sample.improvement

            delta = sample.improvement - current_score
            if delta >= 0 or rng.random() < np.exp(delta / max(temperature, 1e-9)):
                probs = proposal
                current_score = sample.improvement
            temperature *= self.cooling
        return SearchResult(
            improvements=improvements,
            best_assignment=best,
            best_improvement=best_improvement,
        )


# ----------------------------------------------------------------------
# Hill climbing (extension baseline)
# ----------------------------------------------------------------------
class HillClimbing:
    """Greedy local search over single-node moves.

    Not in the paper's comparison, but the classic compiler alternative:
    start from the greedy heuristic's partition and repeatedly move one
    node to a different chip, keeping the move when the (statically valid)
    result improves measured throughput.  Gets stuck in local optima that
    the solver-guided samplers escape — a useful contrast.
    """

    def __init__(self, rng=None, restart_after: int = 50):
        if restart_after < 1:
            raise ValueError("restart_after must be >= 1")
        self.rng = as_generator(rng)
        self.restart_after = restart_after

    def search(self, env, n_samples: int) -> SearchResult:
        """Run ``n_samples`` move evaluations from the greedy start."""
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        graph, n_chips = env.graph, env.n_chips
        rng = self.rng

        current = greedy_partition(graph, n_chips)
        current_score = env.evaluate(current).improvement
        improvements = np.zeros(n_samples)
        best = current.copy()
        best_improvement = current_score
        since_accept = 0
        for k in range(n_samples):
            proposal = current.copy()
            node = int(rng.integers(0, graph.n_nodes))
            choices = [c for c in range(n_chips) if c != current[node]]
            proposal[node] = int(rng.choice(choices))
            sample = env.evaluate(proposal)
            improvements[k] = sample.improvement
            if sample.improvement > current_score:
                current, current_score = proposal, sample.improvement
                since_accept = 0
            else:
                since_accept += 1
                if since_accept >= self.restart_after:
                    # stuck: restart from a fresh random valid partition
                    current = random_baseline_partition(
                        graph,
                        n_chips,
                        seed=int(rng.integers(0, 2**31)),
                        topology=getattr(env, "topology", None),
                    )
                    current_score = env.evaluate(current).improvement
                    since_accept = 0
            if sample.improvement > best_improvement:
                best, best_improvement = proposal.copy(), sample.improvement
        return SearchResult(
            improvements=improvements,
            best_assignment=best,
            best_improvement=best_improvement,
        )


# ----------------------------------------------------------------------
# RL without the constraint solver (ablation)
# ----------------------------------------------------------------------
class UnconstrainedRL:
    """The paper's "RL without constraint solver" ablation.

    Samples partitions directly from the policy's probability matrix; the
    platform returns zero throughput for invalid partitions.  At realistic
    scales the reward space is so sparse that training never sees a valid
    sample (paper Section 5.1).
    """

    def __init__(self, partitioner):
        self.partitioner = partitioner

    def search(self, env, n_samples: int) -> SearchResult:
        """Run the RL loop with the solver bypassed."""
        return self.partitioner.search(env, n_samples, use_solver=False)
