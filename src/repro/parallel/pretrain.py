"""Parallel pre-training: training worker + validation replay, concurrently.

The paper (Section 4.3, Figure 4) describes pre-training as two independent
processes — a training worker producing checkpoints and a validation worker
replaying them.  :func:`parallel_pretrain` fans the training worker's
rollouts over the pool; :func:`parallel_select_checkpoint` fans the
embarrassingly parallel checkpoint replay; :class:`Pretrainer` runs both at
once on a single pool, validating checkpoints in the scheduling gaps while
training continues — the paper's production layout instead of the
sequential train-then-validate of :mod:`repro.core.pretrain`.

Checkpoint cadence, rotation structure, and progress reporting mirror the
serial :func:`repro.core.pretrain.pretrain` exactly; only the RNG scheme
differs (spawn-keyed per-shard streams, see :mod:`repro.parallel.search`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner
from repro.core.pretrain import Checkpoint, PretrainConfig
from repro.graphs.graph import CompGraph
from repro.parallel.pool import ReplayTask, WorkerPool
from repro.parallel.search import (
    REPLAY_SEED_TAG,
    ParallelConfig,
    Window,
    draw_root_seed,
    make_executor,
    run_windows,
)
from repro.rl.features import featurize
from repro.utils.rng import as_generator

#: Per-worker cap on queued validation replays; bounds pipe backlog while
#: keeping every worker's training shards ahead of validation work.
_MAX_OUTSTANDING_VAL = 4


def _pretrain_windows(
    cfg: PretrainConfig, n_graphs: int, n_rollouts: int
) -> "tuple[list[Window], dict[int, int]]":
    """The serial rotation structure expressed as a window schedule.

    Returns the windows plus ``{window_idx: rotation_budget}`` for the
    windows that end a rotation (where the serial path reports progress and
    takes checkpoints).
    """
    windows: list[Window] = []
    rotation_budget_at: dict[int, int] = {}
    done = 0
    g_idx = 0
    while done < cfg.total_samples:
        budget = min(cfg.samples_per_graph, cfg.total_samples - done)
        remaining = budget
        while remaining > 0:
            size = min(n_rollouts, remaining)
            windows.append(Window(graph_idx=g_idx % n_graphs, size=size))
            remaining -= size
        rotation_budget_at[len(windows) - 1] = budget
        done += budget
        g_idx += 1
    return windows, rotation_budget_at


class _CheckpointRecorder:
    """``on_window`` hook replicating the serial checkpoint cadence."""

    def __init__(
        self,
        partitioner: RLPartitioner,
        cfg: PretrainConfig,
        rotation_budget_at: "dict[int, int]",
        progress: "Callable[[int, float], None] | None" = None,
        on_checkpoint: "Callable[[int, Checkpoint], None] | None" = None,
    ):
        self._partitioner = partitioner
        self._rotation_budget_at = rotation_budget_at
        self._progress = progress
        self._on_checkpoint = on_checkpoint
        self._every = max(cfg.total_samples // cfg.n_checkpoints, 1)
        self._next = self._every
        self._done = 0
        self._rotation_improvements: list[np.ndarray] = []
        self.checkpoints: list[Checkpoint] = []

    def _snapshot(self) -> None:
        ckpt = Checkpoint(step=self._done, state=self._partitioner.state_dict())
        self.checkpoints.append(ckpt)
        if self._on_checkpoint is not None:
            self._on_checkpoint(len(self.checkpoints) - 1, ckpt)

    def __call__(self, window_idx: int, draw) -> None:
        self._rotation_improvements.append(draw.improvements)
        budget = self._rotation_budget_at.get(window_idx)
        if budget is None:
            return
        self._done += budget
        improvements = np.concatenate(self._rotation_improvements)
        self._rotation_improvements = []
        if self._progress is not None:
            self._progress(self._done, float(improvements.mean()))
        while self._done >= self._next:
            self._snapshot()
            self._next += self._every

    def finalize(self) -> None:
        """Trailing snapshot, as in the serial path."""
        if not self.checkpoints or self.checkpoints[-1].step != self._done:
            self._snapshot()


def parallel_pretrain(
    partitioner: RLPartitioner,
    graphs: "Sequence[CompGraph]",
    env_factory: "Callable[[CompGraph], PartitionEnvironment]",
    config: "PretrainConfig | None" = None,
    parallel: "ParallelConfig | None" = None,
    progress: "Callable[[int, float], None] | None" = None,
) -> list[Checkpoint]:
    """The training worker with rollouts fanned over the pool.

    Drop-in for :func:`repro.core.pretrain.pretrain` — same rotation,
    checkpoint, and progress semantics; spawn-keyed RNG streams instead of
    the partitioner's sequential stream (so trajectories are reproducible
    and worker-count invariant, but differ from the serial path's).
    """
    if not graphs:
        raise ValueError("graphs must be non-empty")
    cfg = config or PretrainConfig()
    pcfg = parallel or ParallelConfig()
    envs = [env_factory(g) for g in graphs]
    feats = [
        featurize(g, partitioner.effective_topology(env))
        for g, env in zip(graphs, envs)
    ]
    windows, rotation_budget_at = _pretrain_windows(
        cfg, len(graphs), partitioner.trainer.config.n_rollouts
    )
    root = draw_root_seed(partitioner, pcfg)
    recorder = _CheckpointRecorder(
        partitioner, cfg, rotation_budget_at, progress=progress
    )
    with make_executor(partitioner, envs, feats, pcfg) as executor:
        run_windows(
            partitioner,
            executor,
            windows,
            feats,
            True,
            True,
            root,
            pcfg,
            on_window=recorder,
        )
    recorder.finalize()
    return recorder.checkpoints


def parallel_select_checkpoint(
    checkpoints: "Sequence[Checkpoint]",
    partitioner: RLPartitioner,
    graphs: "Sequence[CompGraph]",
    env_factory: "Callable[[CompGraph], PartitionEnvironment]",
    zero_shot_samples: int = 4,
    config: "ParallelConfig | None" = None,
    rng=None,
) -> Checkpoint:
    """The validation worker: checkpoint replay fanned across the pool.

    The ``checkpoints x graphs`` replay grid is embarrassingly parallel:
    each checkpoint's replays are pinned to one worker (one weights load per
    checkpoint), scores are keyed by grid position, and submissions are
    flow-controlled so a ~200-checkpoint sweep never clogs the pipes.
    Zero-shot scoring only (the concurrent pool cannot fine-tune); scores
    are recorded on the checkpoints in place, ties resolved to the earliest
    — exactly like :func:`repro.core.pretrain.select_checkpoint`.
    """
    if not checkpoints:
        raise ValueError("checkpoints must be non-empty")
    if not graphs:
        raise ValueError("graphs must be non-empty")
    pcfg = config or ParallelConfig()
    root = (
        int(pcfg.seed)
        if pcfg.seed is not None
        else int(as_generator(rng).integers(2**63 - 1))
    )
    envs = [env_factory(g) for g in graphs]
    feats = [
        featurize(g, partitioner.effective_topology(env))
        for g, env in zip(graphs, envs)
    ]
    results: dict[tuple, object] = {}
    owner: dict[tuple, int] = {}
    with make_executor(partitioner, envs, feats, pcfg) as executor:
        n_workers = executor.n_workers
        outstanding = [0] * n_workers

        def drain_one() -> None:
            kind, payload = executor.recv_any()
            if kind != "replay":
                raise RuntimeError(f"unexpected {kind!r} reply")
            results[payload.task_id] = payload
            outstanding[owner.pop(payload.task_id)] -= 1

        for i, ckpt in enumerate(checkpoints):
            worker = i % n_workers
            for j in range(len(graphs)):
                while outstanding[worker] >= _MAX_OUTSTANDING_VAL:
                    drain_one()
                executor.submit(
                    worker,
                    "replay",
                    ReplayTask(
                        task_id=(i, j),
                        graph_idx=j,
                        n_samples=zero_shot_samples,
                        seed=(root, REPLAY_SEED_TAG, i, j),
                        # The checkpoint's replays run back to back on one
                        # worker, so only the first needs the weights.
                        state=ckpt.state if j == 0 else None,
                    ),
                )
                owner[(i, j)] = worker
                outstanding[worker] += 1
        while owner:
            drain_one()
    # Leave the caller's partitioner holding the last checkpoint evaluated —
    # the serial ``select_checkpoint`` semantics — identically for the
    # pooled and inline executors (the inline path loads checkpoints into
    # the shared policy as it goes; the pooled path only touches worker
    # replicas, so make the final state explicit).
    partitioner.load_state_dict(checkpoints[-1].state)

    best: "Checkpoint | None" = None
    for i, ckpt in enumerate(checkpoints):
        ckpt.score = float(
            np.mean(
                [results[(i, j)].best_improvement for j in range(len(graphs))]
            )
        )
        if best is None or ckpt.score > best.score:
            best = ckpt
    return best


@dataclass
class PretrainReport:
    """Outcome of a concurrent :class:`Pretrainer` run."""

    checkpoints: list
    best: "Checkpoint | None"


class Pretrainer:
    """Training worker and checkpoint-validation replay on one pool.

    The serial pipeline runs ``pretrain`` to completion and only then scores
    every checkpoint; here each checkpoint's validation replays are queued
    the moment the snapshot is taken and execute in workers' scheduling gaps
    while training continues (every replay carries its checkpoint weights
    and restores the training snapshot afterwards, so the training
    trajectory is untouched).  Validation left over when training finishes
    is drained before returning.

    Parameters
    ----------
    partitioner:
        Trained in place, as in the serial path.
    train_graphs / val_graphs:
        The paper's training and validation splits (both non-empty).
    env_factory:
        Environment builder shared by both workers.
    config / parallel:
        Pre-training budget and pool configuration.
    zero_shot_samples:
        Frozen-policy draws per (checkpoint, validation graph) pair.
    """

    def __init__(
        self,
        partitioner: RLPartitioner,
        train_graphs: "Sequence[CompGraph]",
        val_graphs: "Sequence[CompGraph]",
        env_factory: "Callable[[CompGraph], PartitionEnvironment]",
        config: "PretrainConfig | None" = None,
        parallel: "ParallelConfig | None" = None,
        zero_shot_samples: int = 4,
    ):
        if not train_graphs:
            raise ValueError("train_graphs must be non-empty")
        if not val_graphs:
            raise ValueError("val_graphs must be non-empty")
        if zero_shot_samples < 1:
            raise ValueError("zero_shot_samples must be >= 1")
        self.partitioner = partitioner
        self.train_graphs = list(train_graphs)
        self.val_graphs = list(val_graphs)
        self.env_factory = env_factory
        self.config = config or PretrainConfig()
        self.parallel = parallel or ParallelConfig()
        self.zero_shot_samples = zero_shot_samples

    def run(
        self, progress: "Callable[[int, float], None] | None" = None
    ) -> PretrainReport:
        """Train with concurrent validation; returns scored checkpoints."""
        cfg, pcfg = self.config, self.parallel
        n_train = len(self.train_graphs)
        all_graphs = self.train_graphs + self.val_graphs
        envs = [self.env_factory(g) for g in all_graphs]
        feats = [
            featurize(g, self.partitioner.effective_topology(env))
            for g, env in zip(all_graphs, envs)
        ]
        windows, rotation_budget_at = _pretrain_windows(
            cfg, n_train, self.partitioner.trainer.config.n_rollouts
        )
        root = draw_root_seed(self.partitioner, pcfg)

        results: dict[tuple, object] = {}
        owner: dict[tuple, int] = {}
        val_queue: deque = deque()

        with make_executor(self.partitioner, envs, feats, pcfg) as executor:
            n_workers = executor.n_workers
            outstanding = [0] * n_workers

            def extra_recv(kind: str, payload) -> None:
                if kind != "replay":
                    raise RuntimeError(f"unexpected {kind!r} reply")
                results[payload.task_id] = payload
                outstanding[owner.pop(payload.task_id)] -= 1
                pump()

            def pump() -> None:
                # Submit queued validation under the per-worker cap; skipping
                # a full worker keeps per-worker order while letting others
                # proceed.
                kept: deque = deque()
                while val_queue:
                    worker, task = val_queue.popleft()
                    if outstanding[worker] >= _MAX_OUTSTANDING_VAL:
                        kept.append((worker, task))
                        continue
                    executor.submit(worker, "replay", task)
                    owner[task.task_id] = worker
                    outstanding[worker] += 1
                val_queue.extend(kept)

            def on_checkpoint(idx: int, ckpt: Checkpoint) -> None:
                for j in range(len(self.val_graphs)):
                    worker = (idx * len(self.val_graphs) + j) % n_workers
                    val_queue.append(
                        (
                            worker,
                            ReplayTask(
                                task_id=(idx, j),
                                graph_idx=n_train + j,
                                n_samples=self.zero_shot_samples,
                                seed=(root, REPLAY_SEED_TAG, idx, j),
                                # Self-contained: load this checkpoint, then
                                # restore the training weights so interleaved
                                # training shards are unaffected.
                                state=ckpt.state,
                                restore=True,
                            ),
                        )
                    )
                pump()

            recorder = _CheckpointRecorder(
                self.partitioner,
                cfg,
                rotation_budget_at,
                progress=progress,
                on_checkpoint=on_checkpoint,
            )
            run_windows(
                self.partitioner,
                executor,
                windows,
                feats,
                True,
                True,
                root,
                pcfg,
                on_window=recorder,
                extra_recv=extra_recv,
            )
            recorder.finalize()
            while val_queue or owner:
                pump()
                if owner:
                    extra_recv(*executor.recv_any())

        checkpoints = recorder.checkpoints
        n_val = len(self.val_graphs)
        best: "Checkpoint | None" = None
        for i, ckpt in enumerate(checkpoints):
            ckpt.score = float(
                np.mean(
                    [results[(i, j)].best_improvement for j in range(n_val)]
                )
            )
            if best is None or ckpt.score > best.score:
                best = ckpt
        return PretrainReport(checkpoints=checkpoints, best=best)
