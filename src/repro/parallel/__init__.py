"""Parallel execution subsystem: multi-core scaling of the search loop.

The package parallelises the three loops every experiment sits on —
PPO-training search, the pre-training rotation, and zero-shot checkpoint
replay — across a pool of forked rollout workers:

* each worker owns a private :class:`~repro.core.environment.PartitionEnvironment`
  copy, per-graph :class:`~repro.solver.engine.ConstraintSolver` cache, and
  RNG stream (spawn-keyed from the parent seed), so no hot-path state ever
  crosses the process boundary;
* workers draw ``propose_batch`` windows against the latest broadcast policy
  snapshot and ship ``(trajectory, value-baseline)`` rows back;
* PPO updates stay centralized in the orchestrating process, and no window
  ever spans a weights version (the PR-1 batching invariant).

Determinism: results are a function of the root seed and the window/shard
schedule only — never of the worker count or scheduling timing — so
``n_workers=2`` reproduces the in-process serial fallback bit for bit.  See
the "Parallelism invariants" section of ROADMAP.md.
"""

from repro.parallel.pool import (
    InlineExecutor,
    ReplayResult,
    ReplayTask,
    ShardResult,
    ShardTask,
    WorkerHarness,
    WorkerPool,
    fork_available,
    task_rng,
)
from repro.parallel.pretrain import (
    Pretrainer,
    PretrainReport,
    parallel_pretrain,
    parallel_select_checkpoint,
)
from repro.parallel.search import (
    ParallelConfig,
    Window,
    parallel_search,
    replay_batch,
)

__all__ = [
    "InlineExecutor",
    "ParallelConfig",
    "Pretrainer",
    "PretrainReport",
    "ReplayResult",
    "ReplayTask",
    "ShardResult",
    "ShardTask",
    "Window",
    "WorkerHarness",
    "WorkerPool",
    "fork_available",
    "parallel_pretrain",
    "parallel_search",
    "replay_batch",
    "parallel_select_checkpoint",
    "task_rng",
]
