"""Rollout worker pool: supervised forked processes plus an in-process fallback.

Ownership model (mirrors the paper's independent training/validation
workers): the pool is forked *after* the orchestrator has built the
partitioner, environments, and featurisations, so every worker inherits a
copy-on-write snapshot of all of them.  From then on the only state that
crosses the process boundary is

* policy weight snapshots (parent -> workers, one per PPO update),
* task descriptions (window/shard metadata plus a spawn-key seed), and
* result rows (trajectories, value baselines, improvements).

Solver caches, encoder caches, and environment counters stay worker-private
— they influence speed, never results, which is what makes the pool
deterministic (see ``task_rng``).

Supervision (the reliability layer): the pool detects **dead** workers
(pipe EOF / process exit) and **stuck** workers (no reply within
``task_deadline`` while holding tasks), respawns the process, and reassigns
every task the worker held.  Because each task's RNG is a pure function of
its spawn key — never of the worker that runs it — a reassigned task
produces the bit-identical result, so worker loss is invisible in the
trajectory (pinned by the chaos suite).  Weights correctness across a
respawn is kept by *epoch replay*: each in-flight task records which
broadcast epoch it was dispatched under, and the replacement worker
receives ``[weights of epoch e] -> [e's lost tasks] -> [weights e+1] ->
...`` in the original pipe order.

Deterministic faults (:class:`repro.reliability.FaultPlan`) are injected at
submit time, parent-side: a task's crash/delay directive is consumed when
the task is *first* dispatched, so the recovered schedule runs clean.

:class:`InlineExecutor` executes the identical task schedule synchronously
in the orchestrating process: it is the serial fallback for ``--workers 1``
style runs of the *parallel* code path, and the reference implementation the
determinism tests compare the pool against.  (It has no processes, so pool
faults and supervision do not apply to it.)
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import threading
import time
import traceback
from collections import OrderedDict, deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait

import numpy as np

from repro.obs.metrics import Counter, Histogram

_DEFAULT_TIMEOUT = 600.0

#: Exit code an injected ``crash`` fault dies with (distinguishable from a
#: real segfault in the supervisor's log line).
_CRASH_EXIT_CODE = 13


def fork_available() -> bool:
    """Whether fork-based worker processes are supported on this platform."""
    return "fork" in mp.get_all_start_methods()


def task_rng(seed_key) -> np.random.Generator:
    """Deterministic generator for one task, spawn-keyed from the root seed.

    ``seed_key`` is a tuple of non-negative ints, conventionally
    ``(root, kind_tag, ...indices)``.  The stream is a pure function of the
    key — independent of which worker runs the task, of the worker count,
    and of scheduling timing — which is what makes pool results reproducible
    and worker-count invariant (and what makes supervised *reassignment*
    result-invariant: the replacement worker replays the same stream).
    """
    return np.random.default_rng(np.random.SeedSequence([int(k) for k in seed_key]))


@dataclass(frozen=True)
class ShardTask:
    """One shard of a rollout window, drawn against the current weights.

    ``seed`` is the spawn-key tuple fed to :func:`task_rng`; ``task_id`` is
    ``(window_idx, shard_idx)`` and orders the deterministic merge.
    """

    task_id: tuple
    graph_idx: int
    size: int
    train: bool
    use_solver: bool
    seed: tuple


@dataclass
class ShardResult:
    """Worker reply for one :class:`ShardTask` (rows in draw order)."""

    task_id: tuple
    rollouts: list
    improvements: np.ndarray
    best_assignment: "np.ndarray | None"
    best_improvement: float


@dataclass(frozen=True)
class ReplayTask:
    """A frozen-policy replay (checkpoint validation / zero-shot scoring).

    ``state`` is an optional weights snapshot to load first (``None`` keeps
    whatever the worker currently has loaded); ``restore`` reloads the last
    *broadcast* (training) weights afterwards, so validation replays can
    interleave with training shards without perturbing them.
    """

    task_id: tuple
    graph_idx: int
    n_samples: int
    seed: tuple
    state: "dict | None" = None
    restore: bool = False


@dataclass
class ReplayResult:
    """Worker reply for one :class:`ReplayTask`.

    ``best_assignment`` is the best valid partition of the replay window
    (``None`` when every sample was invalid) — the serving path's payload;
    checkpoint-validation callers only read the improvement statistics.
    """

    task_id: tuple
    improvements: np.ndarray
    best_improvement: float
    best_assignment: "np.ndarray | None" = None


class WorkerHarness:
    """Executes pool tasks against worker-owned state.

    The same harness runs inside forked workers and inside
    :class:`InlineExecutor`; ``copy_weights=True`` marks the inline case,
    where the policy object is shared with the orchestrator — broadcast
    weights are then already live and only a private copy is kept so
    ``ReplayTask.restore`` can undo checkpoint loads.
    """

    def __init__(self, partitioner, envs, feats, copy_weights: bool = False):
        self.partitioner = partitioner
        self.envs = list(envs)
        self.feats = list(feats)
        self._copy_weights = copy_weights
        self._train_state: "dict | None" = None

    def load_weights(self, state: dict) -> None:
        """Install a broadcast weights snapshot as the training weights."""
        if self._copy_weights:
            self._train_state = {k: v.copy() for k, v in state.items()}
        else:
            self.partitioner.load_state_dict(state)
            self._train_state = state

    def run_shard(self, task: ShardTask) -> ShardResult:
        """Draw one window shard with the task's private RNG stream."""
        draw = self.partitioner.draw_window(
            self.envs[task.graph_idx],
            task.size,
            rng=task_rng(task.seed),
            train=task.train,
            use_solver=task.use_solver,
            features=self.feats[task.graph_idx],
        )
        return ShardResult(
            task_id=task.task_id,
            rollouts=draw.rollouts,
            improvements=draw.improvements,
            best_assignment=draw.best_assignment,
            best_improvement=draw.best_improvement,
        )

    def run_replay(self, task: ReplayTask) -> ReplayResult:
        """Run a frozen-policy replay, optionally restoring train weights."""
        if task.state is not None:
            self.partitioner.load_state_dict(task.state)
        draw = self.partitioner.draw_window(
            self.envs[task.graph_idx],
            task.n_samples,
            rng=task_rng(task.seed),
            train=False,
            use_solver=True,
            features=self.feats[task.graph_idx],
        )
        if task.restore:
            if self._train_state is None:
                raise RuntimeError(
                    "ReplayTask.restore requires a prior weights broadcast"
                )
            self.partitioner.load_state_dict(self._train_state)
        return ReplayResult(
            task_id=task.task_id,
            improvements=draw.improvements,
            best_improvement=draw.best_improvement,
            best_assignment=draw.best_assignment,
        )


def _apply_directive(directive) -> None:
    """Honour an injected fault directive inside the worker process.

    ``("crash",)`` dies *before* executing — no result, no partial pipe
    write, exactly what a kill -9 mid-task looks like from the parent.
    ``("delay", s)`` sleeps first — a stuck/slow worker for the deadline
    supervisor to reap.
    """
    if directive is None:
        return
    if directive[0] == "crash":
        os._exit(_CRASH_EXIT_CODE)
    elif directive[0] == "delay":
        time.sleep(float(directive[1]))


def _worker_main(conn, partitioner, envs, feats) -> None:
    """Forked worker loop: recv command, execute, reply."""
    harness = WorkerHarness(partitioner, envs, feats)
    try:
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "stop":
                break
            try:
                if kind == "weights":
                    harness.load_weights(msg[1])
                elif kind == "shard":
                    _apply_directive(msg[2])
                    conn.send(("shard", harness.run_shard(msg[1])))
                elif kind == "replay":
                    _apply_directive(msg[2])
                    conn.send(("replay", harness.run_replay(msg[1])))
                else:
                    conn.send(("error", f"unknown message kind {kind!r}"))
            except Exception:  # noqa: BLE001 - forwarded to the parent
                conn.send(("error", traceback.format_exc()))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


class WorkerPool:
    """``n_workers`` supervised forked rollout workers behind duplex pipes.

    Parameters
    ----------
    partitioner / envs / feats:
        Worker state, inherited by fork (copy-on-write) at construction
        time; build all of it *before* creating the pool.  (Kept by the
        pool so a respawned replacement worker forks from the same
        objects; PPO mutations in the parent between fork and respawn are
        hidden by the epoch-replayed weights broadcast.)
    n_workers:
        Process count (>= 1).
    timeout:
        Seconds :meth:`recv_any` waits before declaring the pool deadlocked.
    task_deadline:
        Seconds a worker may hold tasks without replying before it is
        declared stuck, killed, and respawned (``None`` disables the
        deadline supervisor; death detection is always on).
    max_respawns:
        Total worker respawns the pool will perform before giving up with
        ``RuntimeError`` (a crash-looping fleet must fail, not spin).
    fault_plan:
        Optional :class:`repro.reliability.FaultPlan`; pool faults are
        consumed parent-side at first dispatch (see module docstring).
    """

    def __init__(
        self,
        partitioner,
        envs,
        feats,
        n_workers: int,
        timeout: float = _DEFAULT_TIMEOUT,
        task_deadline: "float | None" = None,
        max_respawns: int = 3,
        fault_plan=None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if not fork_available():
            raise RuntimeError(
                "fork start method unavailable; use InlineExecutor instead"
            )
        self._ctx = mp.get_context("fork")
        self.n_workers = n_workers
        self.timeout = timeout
        self.task_deadline = task_deadline
        self.max_respawns = int(max_respawns)
        self.fault_plan = fault_plan
        self._respawns = Counter("pool_respawns_total")
        self._ipc_wait_s = Histogram("pool_ipc_wait_s")
        self._partitioner = partitioner
        self._envs = list(envs)
        self._feats = list(feats)
        self._closed = False
        self._conns: list = [None] * n_workers
        self._procs: list = [None] * n_workers
        #: Per-worker in-flight ledger: ``(kind, task_id) -> (kind, task,
        #: weights epoch)`` in dispatch order — exactly what a replacement
        #: worker must replay.
        self._inflight: "list[OrderedDict]" = [
            OrderedDict() for _ in range(n_workers)
        ]
        self._last_activity = [time.monotonic()] * n_workers
        #: Weights-broadcast epochs: 0 = fork-inherited weights, then one
        #: per ``broadcast_weights``.  Snapshots are retained while any
        #: in-flight task still references their epoch (see ``_prune``).
        self._epoch = 0
        self._weights: "dict[int, dict]" = {}
        # All outbound traffic goes through one FIFO drained by a sender
        # thread, so the orchestrating thread never blocks in ``send``.
        # Without this, a weights broadcast larger than the pipe buffer can
        # deadlock against a worker that is itself blocked sending a large
        # shard result (neither side recv-ing); with it, the orchestrator
        # keeps draining results no matter how slow the pipes are, and the
        # recv-side timeout stays an effective deadlock guard.  A single
        # queue preserves per-pipe message order (the correctness
        # invariant: shards of window c precede the next weights version).
        # ``_send_lock`` additionally excludes the sender from being
        # mid-``send`` while a respawn forks: the child must never inherit
        # a half-written pipe.
        self._send_lock = threading.Lock()
        self._sendq: "queue.SimpleQueue" = queue.SimpleQueue()
        for w in range(n_workers):
            self._spawn(w)
        self._sender = threading.Thread(
            target=self._send_loop, daemon=True, name="repro-pool-sender"
        )
        self._sender.start()

    def _spawn(self, w: int) -> None:
        """Fork (or re-fork) worker slot ``w``."""
        parent_conn, child_conn = self._ctx.Pipe()
        with self._send_lock:
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, self._partitioner, self._envs, self._feats),
                daemon=True,
                name=f"repro-rollout-{w}",
            )
            proc.start()
        child_conn.close()
        self._conns[w] = parent_conn
        self._procs[w] = proc
        self._last_activity[w] = time.monotonic()

    def _send_loop(self) -> None:
        while True:
            item = self._sendq.get()
            if item is None:
                return
            conn, msg = item
            try:
                with self._send_lock:
                    conn.send(msg)
            except (BrokenPipeError, OSError):
                # The dead worker surfaces as EOF in recv_any (and its
                # in-flight ledger is replayed to the replacement); keep
                # draining so close() can finish.
                pass

    # ------------------------------------------------------------------
    def broadcast_weights(self, state: dict) -> None:
        """Send a weights snapshot to every worker (ordered per pipe)."""
        self._epoch += 1
        self._weights[self._epoch] = state
        for conn in self._conns:
            self._sendq.put((conn, ("weights", state)))
        self._prune_weights()

    def _prune_weights(self) -> None:
        """Drop snapshots no in-flight task can need for a respawn replay."""
        floor = self._epoch
        for ledger in self._inflight:
            for _kind, _task, epoch in ledger.values():
                floor = min(floor, epoch)
        for epoch in [e for e in self._weights if e < floor]:
            del self._weights[epoch]

    @property
    def respawns(self) -> int:
        return self._respawns.value

    @property
    def ipc_wait_s(self) -> float:
        """Total wall seconds the orchestrator has blocked on worker IPC."""
        return self._ipc_wait_s.sum

    def stats(self) -> dict:
        """Typed-counter view of the pool (mirrors the serve stats dicts)."""
        return {
            "n_workers": self.n_workers,
            "respawns": self._respawns.value,
            "ipc_wait_s": self._ipc_wait_s.sum,
            "ipc_waits": self._ipc_wait_s.count,
        }

    def submit(self, worker: int, kind: str, task) -> None:
        """Queue a ``"shard"`` or ``"replay"`` task on one worker."""
        directive = None
        if self.fault_plan is not None:
            directive = self.fault_plan.pool_directive(task.task_id)
        if not self._inflight[worker]:
            # The deadline clock runs from "worker went busy", refreshed by
            # every reply — a per-task deadline as the parent can see it.
            self._last_activity[worker] = time.monotonic()
        self._inflight[worker][(kind, task.task_id)] = (kind, task, self._epoch)
        self._sendq.put((self._conns[worker], (kind, task, directive)))

    def recv_any(self):
        """Block for the next reply from any worker; ``(kind, result)``.

        Supervision happens here: a dead worker (EOF) or a stuck worker
        (``task_deadline`` exceeded while holding tasks) is respawned and
        its in-flight tasks are reassigned — invisible to the caller beyond
        latency, because reassignment is result-invariant (spawn-keyed
        RNG).  Raises ``TimeoutError`` after ``timeout`` seconds without
        any reply (a deadlocked pool must fail fast, not hang the caller),
        and ``RuntimeError`` if a worker reported a task exception (a
        deterministic bug — retrying it would fail identically) or the
        respawn budget is exhausted.
        """
        deadline = time.monotonic() + self.timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close(force=True)
                raise TimeoutError(
                    f"no rollout-worker reply within {self.timeout}s; "
                    "pool terminated"
                )
            if self.task_deadline is not None:
                poll = min(remaining, max(self.task_deadline / 4.0, 0.02), 0.25)
            else:
                poll = remaining
            t_wait = time.perf_counter()
            ready = _connection_wait(self._conns, poll)
            self._ipc_wait_s.observe(time.perf_counter() - t_wait)
            if ready:
                conn = ready[0]
                w = self._conns.index(conn)
                try:
                    kind, payload = conn.recv()
                except (EOFError, OSError):
                    code = self._procs[w].exitcode
                    self._recover_worker(w, f"died (exit code {code})")
                    continue
                if kind == "error":
                    self.close(force=True)
                    raise RuntimeError(f"rollout worker failed:\n{payload}")
                self._inflight[w].pop((kind, payload.task_id), None)
                self._last_activity[w] = time.monotonic()
                return kind, payload
            if self.task_deadline is None:
                continue
            now = time.monotonic()
            for w in range(self.n_workers):
                if (
                    self._inflight[w]
                    and now - self._last_activity[w] > self.task_deadline
                ):
                    self._recover_worker(
                        w,
                        f"stuck (no reply in {self.task_deadline}s)",
                        kill=True,
                    )

    def _recover_worker(self, w: int, reason: str, kill: bool = False) -> None:
        """Respawn worker ``w`` and reassign everything it held.

        The replacement receives the lost tasks in their original dispatch
        order, each preceded by the weights snapshot of the epoch it was
        dispatched under — so every reassigned draw runs against exactly
        the weights the original dispatch promised (bit-identity).
        """
        if self._respawns.value >= self.max_respawns:
            self.close(force=True)
            raise RuntimeError(
                f"rollout worker {w} {reason}; respawn budget "
                f"({self.max_respawns}) exhausted"
            )
        self._respawns.inc()
        proc, conn = self._procs[w], self._conns[w]
        if kill and proc.is_alive():
            proc.terminate()
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover - terminate() refused
            proc.kill()
            proc.join(timeout=1.0)
        try:
            conn.close()
        except OSError:
            pass
        lost = list(self._inflight[w].values())
        self._inflight[w] = OrderedDict()
        self._spawn(w)
        new_conn = self._conns[w]
        replayed_epoch: "int | None" = None
        for kind, task, epoch in lost:
            if epoch != replayed_epoch and epoch in self._weights:
                self._sendq.put((new_conn, ("weights", self._weights[epoch])))
                replayed_epoch = epoch
            self._inflight[w][(kind, task.task_id)] = (kind, task, epoch)
            self._sendq.put((new_conn, (kind, task, None)))
        if self._epoch and replayed_epoch != self._epoch:
            # Future submits assume every live worker holds the latest
            # broadcast; catch the replacement up past the replayed tasks.
            self._sendq.put((new_conn, ("weights", self._weights[self._epoch])))

    def close(self, force: bool = False) -> None:
        """Stop all workers; idempotent."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            self._sendq.put((conn, ("stop",)))
        self._sendq.put(None)
        self._sender.join(timeout=0.2 if force else 5.0)
        for proc in self._procs:
            proc.join(timeout=0.2 if force else 5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close(force=exc[0] is not None)


class InlineExecutor:
    """Serial in-process executor with the pool's exact interface.

    ``submit`` runs the task immediately against the orchestrator's own
    objects and queues the reply for ``recv_any``.  Because the window
    scheduler submits the next window *before* running the PPO update (the
    stale-by-one pipeline), inline execution sees the same weights for every
    window as the pool does — which is what makes ``n_workers=1`` the
    bit-for-bit reference for any worker count (faulty or not: pool faults
    target processes, which the inline executor does not have).
    """

    n_workers = 1
    respawns = 0
    ipc_wait_s = 0.0

    def __init__(self, partitioner, envs, feats):
        self._harness = WorkerHarness(partitioner, envs, feats, copy_weights=True)
        self._replies: deque = deque()

    def broadcast_weights(self, state: dict) -> None:
        self._harness.load_weights(state)

    def stats(self) -> dict:
        return {
            "n_workers": 1,
            "respawns": 0,
            "ipc_wait_s": 0.0,
            "ipc_waits": 0,
        }

    def submit(self, worker: int, kind: str, task) -> None:
        if kind == "shard":
            self._replies.append(("shard", self._harness.run_shard(task)))
        elif kind == "replay":
            self._replies.append(("replay", self._harness.run_replay(task)))
        else:
            raise ValueError(f"unknown task kind {kind!r}")

    def recv_any(self):
        if not self._replies:
            raise RuntimeError("no outstanding replies (scheduler bug)")
        return self._replies.popleft()

    def close(self, force: bool = False) -> None:
        pass

    def __enter__(self) -> "InlineExecutor":
        return self

    def __exit__(self, *exc) -> None:
        pass
