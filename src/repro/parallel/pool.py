"""Rollout worker pool: fork-based processes plus an in-process fallback.

Ownership model (mirrors the paper's independent training/validation
workers): the pool is forked *after* the orchestrator has built the
partitioner, environments, and featurisations, so every worker inherits a
copy-on-write snapshot of all of them.  From then on the only state that
crosses the process boundary is

* policy weight snapshots (parent -> workers, one per PPO update),
* task descriptions (window/shard metadata plus a spawn-key seed), and
* result rows (trajectories, value baselines, improvements).

Solver caches, encoder caches, and environment counters stay worker-private
— they influence speed, never results, which is what makes the pool
deterministic (see ``task_rng``).

:class:`InlineExecutor` executes the identical task schedule synchronously
in the orchestrating process: it is the serial fallback for ``--workers 1``
style runs of the *parallel* code path, and the reference implementation the
determinism tests compare the pool against.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import threading
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait

import numpy as np

_DEFAULT_TIMEOUT = 600.0


def fork_available() -> bool:
    """Whether fork-based worker processes are supported on this platform."""
    return "fork" in mp.get_all_start_methods()


def task_rng(seed_key) -> np.random.Generator:
    """Deterministic generator for one task, spawn-keyed from the root seed.

    ``seed_key`` is a tuple of non-negative ints, conventionally
    ``(root, kind_tag, ...indices)``.  The stream is a pure function of the
    key — independent of which worker runs the task, of the worker count,
    and of scheduling timing — which is what makes pool results reproducible
    and worker-count invariant.
    """
    return np.random.default_rng(np.random.SeedSequence([int(k) for k in seed_key]))


@dataclass(frozen=True)
class ShardTask:
    """One shard of a rollout window, drawn against the current weights.

    ``seed`` is the spawn-key tuple fed to :func:`task_rng`; ``task_id`` is
    ``(window_idx, shard_idx)`` and orders the deterministic merge.
    """

    task_id: tuple
    graph_idx: int
    size: int
    train: bool
    use_solver: bool
    seed: tuple


@dataclass
class ShardResult:
    """Worker reply for one :class:`ShardTask` (rows in draw order)."""

    task_id: tuple
    rollouts: list
    improvements: np.ndarray
    best_assignment: "np.ndarray | None"
    best_improvement: float


@dataclass(frozen=True)
class ReplayTask:
    """A frozen-policy replay (checkpoint validation / zero-shot scoring).

    ``state`` is an optional weights snapshot to load first (``None`` keeps
    whatever the worker currently has loaded); ``restore`` reloads the last
    *broadcast* (training) weights afterwards, so validation replays can
    interleave with training shards without perturbing them.
    """

    task_id: tuple
    graph_idx: int
    n_samples: int
    seed: tuple
    state: "dict | None" = None
    restore: bool = False


@dataclass
class ReplayResult:
    """Worker reply for one :class:`ReplayTask`.

    ``best_assignment`` is the best valid partition of the replay window
    (``None`` when every sample was invalid) — the serving path's payload;
    checkpoint-validation callers only read the improvement statistics.
    """

    task_id: tuple
    improvements: np.ndarray
    best_improvement: float
    best_assignment: "np.ndarray | None" = None


class WorkerHarness:
    """Executes pool tasks against worker-owned state.

    The same harness runs inside forked workers and inside
    :class:`InlineExecutor`; ``copy_weights=True`` marks the inline case,
    where the policy object is shared with the orchestrator — broadcast
    weights are then already live and only a private copy is kept so
    ``ReplayTask.restore`` can undo checkpoint loads.
    """

    def __init__(self, partitioner, envs, feats, copy_weights: bool = False):
        self.partitioner = partitioner
        self.envs = list(envs)
        self.feats = list(feats)
        self._copy_weights = copy_weights
        self._train_state: "dict | None" = None

    def load_weights(self, state: dict) -> None:
        """Install a broadcast weights snapshot as the training weights."""
        if self._copy_weights:
            self._train_state = {k: v.copy() for k, v in state.items()}
        else:
            self.partitioner.load_state_dict(state)
            self._train_state = state

    def run_shard(self, task: ShardTask) -> ShardResult:
        """Draw one window shard with the task's private RNG stream."""
        draw = self.partitioner.draw_window(
            self.envs[task.graph_idx],
            task.size,
            rng=task_rng(task.seed),
            train=task.train,
            use_solver=task.use_solver,
            features=self.feats[task.graph_idx],
        )
        return ShardResult(
            task_id=task.task_id,
            rollouts=draw.rollouts,
            improvements=draw.improvements,
            best_assignment=draw.best_assignment,
            best_improvement=draw.best_improvement,
        )

    def run_replay(self, task: ReplayTask) -> ReplayResult:
        """Run a frozen-policy replay, optionally restoring train weights."""
        if task.state is not None:
            self.partitioner.load_state_dict(task.state)
        draw = self.partitioner.draw_window(
            self.envs[task.graph_idx],
            task.n_samples,
            rng=task_rng(task.seed),
            train=False,
            use_solver=True,
            features=self.feats[task.graph_idx],
        )
        if task.restore:
            if self._train_state is None:
                raise RuntimeError(
                    "ReplayTask.restore requires a prior weights broadcast"
                )
            self.partitioner.load_state_dict(self._train_state)
        return ReplayResult(
            task_id=task.task_id,
            improvements=draw.improvements,
            best_improvement=draw.best_improvement,
            best_assignment=draw.best_assignment,
        )


def _worker_main(conn, partitioner, envs, feats) -> None:
    """Forked worker loop: recv command, execute, reply."""
    harness = WorkerHarness(partitioner, envs, feats)
    try:
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "stop":
                break
            try:
                if kind == "weights":
                    harness.load_weights(msg[1])
                elif kind == "shard":
                    conn.send(("shard", harness.run_shard(msg[1])))
                elif kind == "replay":
                    conn.send(("replay", harness.run_replay(msg[1])))
                else:
                    conn.send(("error", f"unknown message kind {kind!r}"))
            except Exception:  # noqa: BLE001 - forwarded to the parent
                conn.send(("error", traceback.format_exc()))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


class WorkerPool:
    """``n_workers`` forked rollout workers behind duplex pipes.

    Parameters
    ----------
    partitioner / envs / feats:
        Worker state, inherited by fork (copy-on-write) at construction
        time; build all of it *before* creating the pool.
    n_workers:
        Process count (>= 1).
    timeout:
        Seconds :meth:`recv_any` waits before declaring the pool deadlocked.
    """

    def __init__(
        self,
        partitioner,
        envs,
        feats,
        n_workers: int,
        timeout: float = _DEFAULT_TIMEOUT,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if not fork_available():
            raise RuntimeError(
                "fork start method unavailable; use InlineExecutor instead"
            )
        ctx = mp.get_context("fork")
        self.n_workers = n_workers
        self.timeout = timeout
        self._conns = []
        self._procs = []
        self._closed = False
        for w in range(n_workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, partitioner, envs, feats),
                daemon=True,
                name=f"repro-rollout-{w}",
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        # All outbound traffic goes through one FIFO drained by a sender
        # thread, so the orchestrating thread never blocks in ``send``.
        # Without this, a weights broadcast larger than the pipe buffer can
        # deadlock against a worker that is itself blocked sending a large
        # shard result (neither side recv-ing); with it, the orchestrator
        # keeps draining results no matter how slow the pipes are, and the
        # recv-side timeout stays an effective deadlock guard.  A single
        # queue preserves per-pipe message order (the correctness
        # invariant: shards of window c precede the next weights version).
        self._sendq: "queue.SimpleQueue" = queue.SimpleQueue()
        self._sender = threading.Thread(
            target=self._send_loop, daemon=True, name="repro-pool-sender"
        )
        self._sender.start()

    def _send_loop(self) -> None:
        while True:
            item = self._sendq.get()
            if item is None:
                return
            conn, msg = item
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError):
                # The dead worker surfaces as EOF in recv_any; keep
                # draining so close() can finish.
                pass

    # ------------------------------------------------------------------
    def broadcast_weights(self, state: dict) -> None:
        """Send a weights snapshot to every worker (ordered per pipe)."""
        for conn in self._conns:
            self._sendq.put((conn, ("weights", state)))

    def submit(self, worker: int, kind: str, task) -> None:
        """Queue a ``"shard"`` or ``"replay"`` task on one worker."""
        self._sendq.put((self._conns[worker], (kind, task)))

    def recv_any(self):
        """Block for the next reply from any worker; ``(kind, result)``.

        Raises ``TimeoutError`` after ``timeout`` seconds (a deadlocked or
        wedged pool must fail fast, not hang the caller), and
        ``RuntimeError`` if a worker died or reported an exception.
        """
        ready = _connection_wait(self._conns, self.timeout)
        if not ready:
            self.close(force=True)
            raise TimeoutError(
                f"no rollout-worker reply within {self.timeout}s; "
                "pool terminated"
            )
        conn = ready[0]
        try:
            kind, payload = conn.recv()
        except EOFError:
            idx = self._conns.index(conn)
            code = self._procs[idx].exitcode
            self.close(force=True)
            raise RuntimeError(
                f"rollout worker {idx} died (exit code {code})"
            ) from None
        if kind == "error":
            self.close(force=True)
            raise RuntimeError(f"rollout worker failed:\n{payload}")
        return kind, payload

    def close(self, force: bool = False) -> None:
        """Stop all workers; idempotent."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            self._sendq.put((conn, ("stop",)))
        self._sendq.put(None)
        self._sender.join(timeout=0.2 if force else 5.0)
        for proc in self._procs:
            proc.join(timeout=0.2 if force else 5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close(force=exc[0] is not None)


class InlineExecutor:
    """Serial in-process executor with the pool's exact interface.

    ``submit`` runs the task immediately against the orchestrator's own
    objects and queues the reply for ``recv_any``.  Because the window
    scheduler submits the next window *before* running the PPO update (the
    stale-by-one pipeline), inline execution sees the same weights for every
    window as the pool does — which is what makes ``n_workers=1`` the
    bit-for-bit reference for any worker count.
    """

    n_workers = 1

    def __init__(self, partitioner, envs, feats):
        self._harness = WorkerHarness(partitioner, envs, feats, copy_weights=True)
        self._replies: deque = deque()

    def broadcast_weights(self, state: dict) -> None:
        self._harness.load_weights(state)

    def submit(self, worker: int, kind: str, task) -> None:
        if kind == "shard":
            self._replies.append(("shard", self._harness.run_shard(task)))
        elif kind == "replay":
            self._replies.append(("replay", self._harness.run_replay(task)))
        else:
            raise ValueError(f"unknown task kind {kind!r}")

    def recv_any(self):
        if not self._replies:
            raise RuntimeError("no outstanding replies (scheduler bug)")
        return self._replies.popleft()

    def close(self, force: bool = False) -> None:
        pass

    def __enter__(self) -> "InlineExecutor":
        return self

    def __exit__(self, *exc) -> None:
        pass
