"""Windowed, pipelined orchestration of the parallel search loop.

The unit of work is a **window**: one PPO buffer's worth of samples, all
drawn against a single policy-weights version (the PR-1 invariant).  A
window is split into a fixed number of **shards** — worker-count
*independent*, so the trajectory is a function of the root seed and the
schedule only — and the shards of window ``c`` are merged in shard order
before the centralized PPO update runs.

With ``pipeline=True`` (the default) the scheduler dispatches window
``c + 1`` *before* running window ``c``'s update, so rollout workers crunch
the next window while the orchestrator trains: window ``c`` is drawn on the
weights produced by update ``c - 2`` (stale-by-one).  PPO's clipped
importance ratios are computed against the recorded behaviour log-probs, so
the staleness is algorithmically accounted for; the schedule is part of the
semantics and is identical for every worker count, including the inline
serial fallback.  ``pipeline=False`` recovers the fully on-policy schedule
(window ``c`` drawn on the weights of update ``c - 1``) at the cost of
serializing updates and rollouts.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.obs.profile import NULL_PHASE
from repro.core.baselines import SearchResult
from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner, WindowDraw
from repro.parallel.pool import (
    InlineExecutor,
    ReplayTask,
    ShardTask,
    WorkerPool,
    fork_available,
)
from repro.rl.features import GraphFeatures, featurize
from repro.rl.rollout import RolloutBuffer

#: Tags namespacing the per-task seed keys (first element after the root).
SHARD_SEED_TAG = 0
REPLAY_SEED_TAG = 1


@dataclass(frozen=True)
class ParallelConfig:
    """Configuration of the parallel execution subsystem.

    Attributes
    ----------
    n_workers:
        Rollout worker processes.  ``1`` (or a platform without ``fork``)
        runs the identical schedule in-process — the serial fallback the
        determinism tests compare the pool against.
    n_shards:
        Shards per window.  Fixed independently of ``n_workers`` so results
        never depend on the worker count; it caps how many workers one
        window can occupy.
    pipeline:
        Draw window ``c + 1`` before running window ``c``'s PPO update
        (stale-by-one overlap).  Deterministic either way.
    seed:
        Root of every task's spawn-key stream; ``None`` draws the root from
        the partitioner's generator (one draw, identical in both executors).
    timeout:
        Deadlock guard forwarded to :class:`WorkerPool`.
    task_deadline:
        Per-task stuck-worker deadline forwarded to :class:`WorkerPool`
        (``None`` disables the deadline supervisor; dead-worker respawn is
        always on).
    max_respawns:
        Worker-respawn budget forwarded to :class:`WorkerPool`.
    fault_plan:
        Optional :class:`repro.reliability.FaultPlan` injected into the
        pool (chaos testing); ignored by the inline executor, which has no
        worker processes to fault.
    """

    n_workers: int = 2
    n_shards: int = 4
    pipeline: bool = True
    seed: "int | None" = None
    timeout: float = 600.0
    task_deadline: "float | None" = None
    max_respawns: int = 3
    fault_plan: "object | None" = None

    def __post_init__(self):
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise ValueError("task_deadline must be positive (or None)")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")


@dataclass(frozen=True)
class Window:
    """One scheduled rollout window: ``size`` samples on one graph."""

    graph_idx: int
    size: int


def shard_sizes(size: int, n_shards: int) -> list[int]:
    """Near-even deterministic split of ``size`` samples (no empty shards)."""
    if size < 1:
        raise ValueError("size must be >= 1")
    n = min(n_shards, size)
    q, r = divmod(size, n)
    return [q + 1] * r + [q] * (n - r)


def window_sizes(n_samples: int, n_rollouts: int) -> list[int]:
    """PPO-window chunking of a sample budget (trailing partial allowed)."""
    full, rest = divmod(n_samples, n_rollouts)
    return [n_rollouts] * full + ([rest] if rest else [])


def make_executor(partitioner, envs, feats, config: ParallelConfig):
    """Pool when ``n_workers >= 2`` and fork exists; inline otherwise."""
    if config.n_workers >= 2 and not fork_available():  # pragma: no cover
        warnings.warn(
            "fork start method unavailable; running the parallel schedule "
            "in-process",
            RuntimeWarning,
            stacklevel=2,
        )
    if config.n_workers < 2 or not fork_available():
        return InlineExecutor(partitioner, envs, feats)
    return WorkerPool(
        partitioner,
        envs,
        feats,
        config.n_workers,
        timeout=config.timeout,
        task_deadline=config.task_deadline,
        max_respawns=config.max_respawns,
        fault_plan=config.fault_plan,
    )


def draw_root_seed(partitioner: RLPartitioner, config: ParallelConfig) -> int:
    """The root of all task seed keys for one run."""
    if config.seed is not None:
        return int(config.seed)
    return int(partitioner.rng.integers(2**63 - 1))


def _phase(partitioner, name: str):
    """The partitioner's profiler phase, or the shared no-op (zero-
    perturbation: profiling off must not change the orchestration path)."""
    prof = getattr(partitioner, "profiler", None)
    return NULL_PHASE if prof is None else prof.phase(name)


def run_windows(
    partitioner: RLPartitioner,
    executor,
    windows: "list[Window]",
    feats: "list[GraphFeatures]",
    train: bool,
    use_solver: bool,
    root: int,
    config: ParallelConfig,
    on_window=None,
    extra_recv=None,
) -> "list[WindowDraw]":
    """Run the window schedule; returns merged per-window draws in order.

    ``on_window(idx, draw)`` fires after window ``idx``'s PPO update (if
    any) — the hook point for checkpointing and validation dispatch;
    ``extra_recv(kind, payload)`` routes non-shard replies (validation
    replays) that arrive while shards are being collected.
    """
    n_rollouts = partitioner.trainer.config.n_rollouts
    buffer = RolloutBuffer()
    executor.broadcast_weights(partitioner.state_dict())
    plan = [shard_sizes(w.size, config.n_shards) for w in windows]
    cursor = 0  # round-robin worker assignment, shared across windows

    def dispatch(c: int) -> None:
        nonlocal cursor
        for s, size in enumerate(plan[c]):
            executor.submit(
                cursor % executor.n_workers,
                "shard",
                ShardTask(
                    task_id=(c, s),
                    graph_idx=windows[c].graph_idx,
                    size=size,
                    train=train,
                    use_solver=use_solver,
                    seed=(root, SHARD_SEED_TAG, c, s),
                ),
            )
            cursor += 1

    dispatch(0)
    pending: dict[int, dict[int, object]] = {}
    outputs: list[WindowDraw] = []
    for c, window in enumerate(windows):
        want = len(plan[c])
        got = pending.setdefault(c, {})
        while len(got) < want:
            with _phase(partitioner, "pool_ipc"):
                kind, payload = executor.recv_any()
            if kind == "shard":
                w_idx, s_idx = payload.task_id
                pending.setdefault(w_idx, {})[s_idx] = payload
            elif extra_recv is not None:
                extra_recv(kind, payload)
            else:
                raise RuntimeError(f"unexpected {kind!r} reply")
        if config.pipeline and c + 1 < len(windows):
            dispatch(c + 1)

        shards = [got[s] for s in range(want)]
        rollouts = [r for shard in shards for r in shard.rollouts]
        best, best_improvement = None, 0.0
        for shard in shards:
            if shard.best_improvement > best_improvement:
                best = shard.best_assignment
                best_improvement = shard.best_improvement
        draw = WindowDraw(
            rollouts=rollouts,
            improvements=np.concatenate([s.improvements for s in shards]),
            best_assignment=best,
            best_improvement=best_improvement,
        )

        if train and window.size == n_rollouts:
            # Centralized PPO update: one buffer, one weights bump, then a
            # snapshot broadcast so the *next* dispatched window draws it.
            for rollout in rollouts:
                buffer.add(rollout)
            with _phase(partitioner, "ppo_update"):
                partitioner.trainer.update(feats[window.graph_idx], buffer)
            buffer.clear()
            executor.broadcast_weights(partitioner.state_dict())
        if not config.pipeline and c + 1 < len(windows):
            dispatch(c + 1)
        del pending[c]
        if on_window is not None:
            on_window(c, draw)
        outputs.append(draw)
    return outputs


def replay_batch(
    partitioner: RLPartitioner,
    envs: "list[PartitionEnvironment]",
    n_samples: "list[int]",
    seeds: "list[tuple]",
    config: "ParallelConfig | None" = None,
    features: "list[GraphFeatures] | None" = None,
) -> list:
    """Frozen-policy draws on many environments over one executor.

    The serving layer's batched-submission primitive: each environment gets
    one :class:`ReplayTask` (no training, no weight broadcast — workers
    inherit the partitioner's current weights at fork), and tasks fan
    round-robin over the pool.  Each task's RNG comes from its *own* seed
    key, so a request's result is a pure function of ``(weights, its
    seed)`` — independent of which other requests share the batch, of the
    worker count, and of the executor kind (the inline fallback is
    bit-identical).

    Returns the per-environment :class:`ReplayResult` list, in input order.
    """
    if len(envs) != len(n_samples) or len(envs) != len(seeds):
        raise ValueError("envs, n_samples, and seeds must have equal lengths")
    if not envs:
        return []
    cfg = config or ParallelConfig()
    feats = (
        features
        if features is not None
        else [
            featurize(env.graph, partitioner.effective_topology(env))
            for env in envs
        ]
    )
    for env, f in zip(envs, feats):
        partitioner._check_features(f, env.graph)
    results: list = [None] * len(envs)
    with make_executor(partitioner, envs, feats, cfg) as executor:
        for i in range(len(envs)):
            executor.submit(
                i % executor.n_workers,
                "replay",
                ReplayTask(
                    task_id=(i, 0),
                    graph_idx=i,
                    n_samples=int(n_samples[i]),
                    seed=tuple(seeds[i]),
                ),
            )
        for _ in range(len(envs)):
            with _phase(partitioner, "pool_ipc"):
                kind, payload = executor.recv_any()
            if kind != "replay":
                raise RuntimeError(f"unexpected {kind!r} reply")
            results[payload.task_id[0]] = payload
    return results


def parallel_search(
    partitioner: RLPartitioner,
    env: PartitionEnvironment,
    n_samples: int,
    config: "ParallelConfig | None" = None,
    train: bool = True,
    use_solver: bool = True,
    features: "GraphFeatures | None" = None,
) -> SearchResult:
    """Constrained-RL search with rollouts fanned over the worker pool.

    Semantics match :meth:`RLPartitioner.search` window for window — same
    per-sample hot loop (:meth:`RLPartitioner.draw_window`), same
    centralized PPO cadence — but candidate draws use spawn-keyed per-shard
    RNG streams instead of the partitioner's single sequential stream, so
    the trajectory differs from the serial path while being reproducible
    and *identical for every worker count* (see module docstring).

    The plain serial path stays what it was: call
    :meth:`RLPartitioner.search` directly (the CLI does exactly that for
    ``--workers 1``).
    """
    cfg = config or ParallelConfig()
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    if env.n_chips != partitioner.n_chips:
        raise ValueError(
            f"environment has {env.n_chips} chips, policy expects "
            f"{partitioner.n_chips}"
        )
    feats = (
        features
        if features is not None
        else featurize(env.graph, partitioner.effective_topology(env))
    )
    partitioner._check_features(feats, env.graph)
    root = draw_root_seed(partitioner, cfg)
    if train:
        sizes = window_sizes(n_samples, partitioner.trainer.config.n_rollouts)
    else:
        sizes = [n_samples]  # no updates: one window, sharded for breadth
    windows = [Window(graph_idx=0, size=s) for s in sizes]

    with make_executor(partitioner, [env], [feats], cfg) as executor:
        pooled = isinstance(executor, WorkerPool)
        draws = run_windows(
            partitioner, executor, windows, [feats], train, use_solver, root, cfg
        )
    if pooled:
        # Workers evaluated on their own env copies; keep the caller's
        # sample counter meaningful.
        env.n_samples += n_samples

    best, best_improvement = None, 0.0
    for draw in draws:
        if draw.best_improvement > best_improvement:
            best = draw.best_assignment
            best_improvement = draw.best_improvement
    return SearchResult(
        improvements=np.concatenate([d.improvements for d in draws]),
        best_assignment=best,
        best_improvement=best_improvement,
        metadata={
            "trained": train,
            "use_solver": use_solver,
            "parallel": True,
            "n_workers": cfg.n_workers if pooled else 1,
            "root_seed": root,
        },
    )
