"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``       summarise a graph (zoo name or .npz file)
``partition``  search a partition and print the per-chip report
``validate``   check an assignment file against the static constraints
``zoo``        list the built-in zoo graphs
``serve``      run the partition-as-a-service HTTP endpoint (one shard)
``route``      run the replicated sharded tier: spawn N shards behind a
               consistent-hash router with failover and hedging
``request``    ask a running server for a partition
``metrics``    fetch a server's /metrics snapshot and pretty-print it

Examples
--------
``python -m repro partition bert --method rl --samples 200``
    Serial constrained-RL search (the default single-process path).
``python -m repro partition bert --method rl --samples 200 --workers 4``
    Same search with rollouts fanned over 4 worker processes
    (:mod:`repro.parallel`); ``--workers 1`` is the serial path,
    bit-for-bit.
``python -m repro partition bert --chips 8 --eager-frontier on``
    Force the solver's eager triangle-frontier strengthening above its
    4-chip heuristic default.
``python -m repro partition cnn --topology mesh --mesh-dims 2x2``
    Re-target the whole framework to a 2x2 mesh interconnect; ``biring``
    and ``crossbar`` work the same way (``uniring`` is the paper's
    platform and the default).
``python -m repro serve --port 8080 --registry ./checkpoints``
    Long-lived serving mode: fingerprint-keyed result cache, warm policy
    pool over the checkpoint registry, ``/metrics`` endpoint.
``python -m repro request bert --port 8080 --chips 8``
    Ask the running server for a partition (repeat requests are cache
    hits and come back in microseconds).
``python -m repro route --shards 3 --replication 2 --port 8080``
    Replicated deployment: three shard processes behind one router; each
    request consistent-hashes onto 2 replicas, fails over on shard death,
    hedges the tail.  ``repro request`` works against it unchanged.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.report import analyze_partition, format_partition_report
from repro.core.baselines import (
    HillClimbing,
    RandomSearch,
    SimulatedAnnealing,
    greedy_partition,
)
from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.graphs.graph import CompGraph
from repro.graphs.serialization import load_graph
from repro.graphs.zoo import (
    build_autoencoder,
    build_bert,
    build_cnn,
    build_decoder,
    build_gru,
    build_inception_cnn,
    build_lstm,
    build_mlp,
    build_mobilenet,
    build_residual_cnn,
    build_unet,
)
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.package import MCMPackage
from repro.hardware.simulator import PipelineSimulator
from repro.hardware.topology import TOPOLOGY_NAMES, make_topology, parse_mesh_dims
from repro.parallel import ParallelConfig, parallel_search
from repro.rl.ppo import PPOConfig
from repro.solver.constraints import validate_partition

_ZOO = {
    "bert": lambda: build_bert(layers=4, hidden=256, heads=8, seq=128, target_nodes=None),
    "bert-large": build_bert,
    "cnn": build_cnn,
    "resnet": build_residual_cnn,
    "inception": build_inception_cnn,
    "lstm": build_lstm,
    "gru": build_gru,
    "mlp": build_mlp,
    "autoencoder": build_autoencoder,
    "decoder": build_decoder,
    "unet": build_unet,
    "mobilenet": build_mobilenet,
}


def _resolve_graph(spec: str) -> CompGraph:
    """A zoo name or a path to a ``.npz`` saved graph."""
    if spec in _ZOO:
        return _ZOO[spec]()
    if spec.endswith(".npz"):
        return load_graph(spec)
    raise SystemExit(
        f"unknown graph {spec!r}: expected one of {sorted(_ZOO)} or a .npz path"
    )


def _resolve_zoo_graph(spec: str) -> CompGraph:
    """Zoo names only — the resolver the HTTP server gets.

    Unlike :func:`_resolve_graph` this never touches the filesystem: a
    network client must not be able to make the server read server-local
    ``.npz`` paths (``repro request`` inlines local files instead).
    """
    if spec in _ZOO:
        return _ZOO[spec]()
    raise KeyError(spec)


def _cmd_info(args) -> int:
    graph = _resolve_graph(args.graph)
    print(graph.summary())
    return 0


def _cmd_zoo(args) -> int:
    for name in sorted(_ZOO):
        print(name)
    return 0


def _resolve_mesh(args) -> tuple:
    """``(chips, dims)`` from ``--chips`` / ``--topology`` / ``--mesh-dims``.

    The one contract for every verb taking topology flags (``partition``,
    ``validate``, ``request``): dims only apply to a mesh, and they pin the
    chip count.  ``chips`` stays ``None`` when neither flag decides it.
    """
    chips = args.chips
    dims = None
    if getattr(args, "mesh_dims", None):
        if args.topology != "mesh":
            raise SystemExit("--mesh-dims applies to --topology mesh only")
        try:
            dims = parse_mesh_dims(args.mesh_dims)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        if chips is None:
            chips = dims[0] * dims[1]
        elif chips != dims[0] * dims[1]:
            raise SystemExit(
                f"--chips {chips} conflicts with --mesh-dims "
                f"{dims[0]}x{dims[1]} ({dims[0] * dims[1]} chips)"
            )
    return chips, dims


def _resolve_package(args) -> MCMPackage:
    """Build the package from ``--chips`` / ``--topology`` / ``--mesh-dims``."""
    chips, dims = _resolve_mesh(args)
    if chips is None:
        chips = 4
    try:
        topology = make_topology(args.topology, chips, dims)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    return MCMPackage(n_chips=chips, topology=topology)


def _cmd_partition(args) -> int:
    graph = _resolve_graph(args.graph)
    package = _resolve_package(args)
    n_chips = package.n_chips
    cost_model = (
        PipelineSimulator(package) if args.platform == "simulator"
        else AnalyticalCostModel(package)
    )
    env = PartitionEnvironment(graph, cost_model, n_chips, objective=args.objective)
    if args.workers > 1 and args.method != "rl":
        print("--workers applies to --method rl only", file=sys.stderr)
        return 2
    if args.eager_frontier != "auto" and args.method != "rl":
        # Only the RL partitioner's solver plumbing honours the flag; fail
        # loudly rather than silently benchmark the wrong configuration.
        print("--eager-frontier applies to --method rl only", file=sys.stderr)
        return 2
    if args.precision != "float64" and args.method != "rl":
        print("--precision applies to --method rl only", file=sys.stderr)
        return 2
    profiler = None
    if args.profile or args.profile_log:
        if args.method != "rl":
            print("--profile applies to --method rl only", file=sys.stderr)
            return 2
        from repro.obs.profile import PhaseTimer

        profiler = PhaseTimer(log_path=args.profile_log)

    if args.method == "greedy":
        assignment = greedy_partition(graph, n_chips)
        improvement = env.evaluate(assignment).improvement
    else:
        eager_frontier = {"auto": None, "on": True, "off": False}[args.eager_frontier]
        # The default uni-ring stays on the legacy path (topology=None:
        # legacy solver engine and feature width, bit-for-bit); any other
        # interconnect runs the topology-conditioned partitioner.
        rl_topology = None if package.topology.is_total_order else package.topology
        searchers = {
            "random": lambda: RandomSearch(rng=args.seed),
            "sa": lambda: SimulatedAnnealing(rng=args.seed),
            "hill": lambda: HillClimbing(rng=args.seed),
            "rl": lambda: RLPartitioner(
                n_chips,
                config=RLPartitionerConfig(
                    hidden=64, n_sage_layers=4,
                    triangle_frontier=eager_frontier,
                    precision=args.precision,
                    ppo=PPOConfig(n_rollouts=10, n_minibatches=2, n_epochs=4),
                ),
                rng=args.seed,
                topology=rl_topology,
            ),
        }
        searcher = searchers[args.method]()
        if profiler is not None:
            # Zero-perturbation hook: the partitioner only reads this to
            # pick a timing context; the search path is otherwise identical.
            searcher.profiler = profiler
        if args.method == "rl" and args.workers > 1:
            # Parallel rollout pool; --workers 1 stays the serial path
            # (bit-for-bit identical to earlier releases).
            result = parallel_search(
                searcher,
                env,
                args.samples,
                config=ParallelConfig(n_workers=args.workers, seed=args.seed),
            )
        else:
            result = searcher.search(env, args.samples)
        if result.best_assignment is None:
            print("no valid partition found", file=sys.stderr)
            return 1
        assignment, improvement = result.best_assignment, result.best_improvement

    print(format_partition_report(analyze_partition(graph, assignment, package)))
    print(f"\n{args.objective} improvement over greedy heuristic: {improvement:.3f}x")
    if profiler is not None:
        print()
        print(profiler.format())
        profiler.log_event(
            "partition_profile",
            graph=args.graph,
            method=args.method,
            samples=args.samples,
            workers=args.workers,
            **profiler.breakdown(),
        )
    if args.output:
        np.save(args.output, assignment)
        print(f"assignment written to {args.output}")
    return 0


def _cmd_validate(args) -> int:
    graph = _resolve_graph(args.graph)
    assignment = np.load(args.assignment)
    package = _resolve_package(args)
    report = validate_partition(
        graph, assignment, package.n_chips, topology=package.topology
    )
    if report.ok:
        print("valid: all static constraints satisfied")
        return 0
    print(f"INVALID: {', '.join(report.violated)}")
    return 1


def _parse_fault_plan(args):
    """``--fault-plan``/``--fault-seed`` → armed :class:`FaultPlan` (or None).

    A malformed spec is a usage error (exit 2 with the grammar), not a
    server that silently runs without its chaos schedule.
    """
    if getattr(args, "fault_plan", None) is None:
        return None
    from repro.reliability import FaultPlan

    try:
        return FaultPlan.parse(args.fault_plan, seed=args.fault_seed)
    except ValueError as exc:
        raise SystemExit(f"--fault-plan: {exc}")


def _cmd_serve(args) -> int:
    """Run the partition-as-a-service HTTP endpoint (foreground)."""
    from repro.serve import PartitionServer, PartitionService, ServiceConfig

    config = ServiceConfig(
        cache_capacity=args.cache_capacity,
        registry_path=args.registry,
        n_workers=args.workers,
        default_samples=args.samples,
        seed=args.seed,
        max_in_flight=args.max_in_flight,
        request_deadline=args.request_deadline,
        cache_dir=args.cache_dir,
        fault_plan=_parse_fault_plan(args),
        shard_id=args.shard_id,
        precision=args.precision,
        batch_window_ms=args.batch_window_ms,
        batch_max_size=args.batch_max_size,
        rate_limit_rps=args.rate_limit,
        rate_limit_burst=args.rate_limit_burst,
        trace_dir=args.trace_dir,
        trace_sample=args.trace_sample,
        trace_slow_ms=args.trace_slow_ms,
    )
    # The warm pool's untrained-policy network defaults to
    # repro.serve.registry.default_serving_config (the CLI's 64x4 sizing).
    service = PartitionService(config)
    server = PartitionServer(
        service,
        host=args.host,
        port=args.port,
        graph_resolver=_resolve_zoo_graph,
        verbose=args.verbose,
        # Single-threaded HTTP when (a) a bounded run must finish each
        # request before counting it (see PartitionServer docstring), or
        # (b) cache misses fork a worker pool — fork() from one of many
        # live handler threads can inherit a lock held mid-operation and
        # deadlock the forked worker.
        threaded=args.max_requests is None and args.workers < 2,
    )
    # Machine-readable first line: smoke tests / scripts bind --port 0 and
    # parse the ephemeral port from here.
    print(f"serving on {server.host}:{server.port}", flush=True)
    try:
        if args.max_requests is not None:
            for _ in range(args.max_requests):
                server.handle_request()
        else:
            server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.shutdown()
        service.close()  # compacts the persistent cache journal, if any
    return 0


def _cmd_route(args) -> int:
    """Spawn N shards and run the consistent-hash router in front of them."""
    from repro.serve import RouterConfig, RouterServer, ShardRouter

    config = RouterConfig(
        replication=args.replication,
        vnodes=args.vnodes,
        default_samples=args.samples,
        probe_interval_s=args.probe_interval,
        shard_timeout_s=args.shard_timeout,
        failure_threshold=args.failure_threshold,
        breaker_reset_s=args.breaker_reset,
        hedge=not args.no_hedge,
        fault_plan=_parse_fault_plan(args),
        trace_dir=args.trace_dir,
        trace_sample=args.trace_sample,
        trace_slow_ms=args.trace_slow_ms,
    )
    router = ShardRouter.spawn(
        args.shards,
        config=config,
        graph_resolver=_resolve_zoo_graph,
        seed=args.seed,
        registry=args.registry,
        cache_capacity=args.cache_capacity,
        max_in_flight=args.max_in_flight,
        precision=args.precision,
        batch_window_ms=args.batch_window_ms,
        batch_max_size=args.batch_max_size,
    )
    server = RouterServer(
        router, host=args.host, port=args.port, verbose=args.verbose
    )
    # Same machine-readable first line as `repro serve`: the router is
    # wire-compatible with a shard, so scripts parse both identically.
    print(f"serving on {server.host}:{server.port}", flush=True)
    for shard_id, info in sorted(router.metrics()["shards"].items()):
        print(f"shard {shard_id} on {info['address']}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.shutdown()
        router.close()  # terminates the spawned shard processes
    return 0


def _cmd_request(args) -> int:
    """Send one request to a running server and print the reply."""
    import json

    from repro.graphs.serialization import graph_to_dict
    from repro.serve import ServiceError, request_partition

    if args.graph in _ZOO:
        graph_payload: "str | dict" = args.graph
    elif args.graph.endswith(".npz"):
        # Local file: inline it — the server need not share our filesystem.
        graph_payload = graph_to_dict(load_graph(args.graph))
    else:
        raise SystemExit(
            f"unknown graph {args.graph!r}: expected one of {sorted(_ZOO)} "
            "or a .npz path"
        )
    chips, _ = _resolve_mesh(args)
    payload = {
        "graph": graph_payload,
        "chips": chips if chips is not None else 4,
        "topology": args.topology,
        "mesh_dims": args.mesh_dims,
        "objective": args.objective,
        "platform": args.platform,
    }
    if args.samples is not None:
        payload["samples"] = args.samples
    if args.checkpoint is not None:
        payload["checkpoint"] = args.checkpoint
    if args.checkpoint_version is not None:
        payload["checkpoint_version"] = args.checkpoint_version
    try:
        reply = request_partition(
            payload,
            host=args.host,
            port=args.port,
            timeout=args.timeout,
            retries=args.retries,
            trace_id=args.trace_id,
        )
    except (ServiceError, OSError) as exc:
        print(f"request failed: {exc}", file=sys.stderr)
        return 1
    assignment = np.asarray(reply["assignment"], dtype=np.int64)
    if args.output:
        np.save(args.output, assignment)
    if args.json:
        print(json.dumps(reply, indent=2, sort_keys=True))
        return 0
    if reply.get("degraded"):
        source = f"DEGRADED: {reply.get('degraded_reason', 'fallback')}"
    elif reply["cached"]:
        source = "cache hit"
    else:
        source = f"computed ({reply['source']})"
    print(f"fingerprint: {reply['fingerprint'][:16]}…  [{source}]")
    print(
        f"{reply['objective']} improvement over greedy heuristic: "
        f"{reply['improvement']:.3f}x  ({reply['latency_ms']:.1f} ms)"
    )
    counts = np.bincount(assignment, minlength=reply["chips"])
    print("ops per chip:", " ".join(str(int(c)) for c in counts))
    if args.output:
        print(f"assignment written to {args.output}")
    return 0


def _cmd_metrics(args) -> int:
    """Fetch /metrics from a running server and pretty-print it."""
    import json
    import time as _time

    from repro.analysis.report import format_service_metrics
    from repro.serve import fetch_metrics

    while True:
        try:
            snapshot = fetch_metrics(
                host=args.host, port=args.port, timeout=args.timeout, retries=0
            )
        except OSError as exc:
            print(f"metrics fetch failed: {exc}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(snapshot, indent=2, sort_keys=True))
        else:
            print(format_service_metrics(snapshot))
        if not args.watch:
            return 0
        try:
            _time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0
        print()


def _add_topology_args(parser) -> None:
    parser.add_argument(
        "--topology",
        choices=list(TOPOLOGY_NAMES),
        default="uniring",
        help="interconnect topology (uniring is the paper's platform)",
    )
    parser.add_argument(
        "--mesh-dims",
        default=None,
        metavar="RxC",
        help="mesh grid dimensions, e.g. 2x3 (--topology mesh only; "
        "defaults to the most-square factorisation of --chips)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="MCM model partitioning toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="summarise a graph")
    p_info.add_argument("graph", help="zoo name or .npz path")
    p_info.set_defaults(fn=_cmd_info)

    p_zoo = sub.add_parser("zoo", help="list built-in zoo graphs")
    p_zoo.set_defaults(fn=_cmd_zoo)

    p_part = sub.add_parser("partition", help="search a partition")
    p_part.add_argument("graph", help="zoo name or .npz path")
    p_part.add_argument(
        "--chips",
        type=int,
        default=None,
        help="number of chiplets (default 4, or rows*cols with --mesh-dims)",
    )
    _add_topology_args(p_part)
    p_part.add_argument(
        "--method", choices=["greedy", "random", "sa", "hill", "rl"], default="rl"
    )
    p_part.add_argument("--samples", type=int, default=50)
    p_part.add_argument("--seed", type=int, default=0)
    p_part.add_argument(
        "--platform", choices=["analytical", "simulator"], default="analytical"
    )
    p_part.add_argument(
        "--objective", choices=["throughput", "latency"], default="throughput"
    )
    p_part.add_argument(
        "--workers",
        type=int,
        default=1,
        help="rollout worker processes for --method rl (1 = serial path, "
        "bit-for-bit identical to previous releases; >= 2 fans rollouts "
        "over a deterministic multiprocessing pool)",
    )
    p_part.add_argument(
        "--eager-frontier",
        choices=["auto", "on", "off"],
        default="auto",
        help="solver eager triangle-frontier strengthening: 'auto' enables "
        "it only at <= 4 chips (the heuristic default), 'on'/'off' force it "
        "— 'on' helps wedge-heavy instances above 4 chips",
    )
    p_part.add_argument(
        "--precision",
        choices=["float64", "float32"],
        default="float64",
        help="policy-network numeric backend: 'float64' is the frozen "
        "bit-for-bit default, 'float32' the fused-GEMM fast path "
        "(tolerance-pinned; ~1.5x+ search samples/sec)",
    )
    p_part.add_argument("--output", help="write the assignment to this .npy path")
    p_part.add_argument(
        "--profile", action="store_true",
        help="attribute search wall time to rollout / solver / encoder / "
             "ppo_update / pool_ipc phases and print the breakdown "
             "(--method rl only; zero-perturbation — results are identical)",
    )
    p_part.add_argument(
        "--profile-log", default=None, metavar="PATH",
        help="append the phase breakdown as a JSONL event here "
             "(implies --profile)",
    )
    p_part.set_defaults(fn=_cmd_partition)

    p_val = sub.add_parser("validate", help="validate an assignment file")
    p_val.add_argument("graph", help="zoo name or .npz path")
    p_val.add_argument("assignment", help=".npy assignment path")
    p_val.add_argument("--chips", type=int, default=None)
    _add_topology_args(p_val)
    p_val.set_defaults(fn=_cmd_validate)

    p_serve = sub.add_parser(
        "serve", help="run the partition-as-a-service HTTP endpoint"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8080,
        help="TCP port (0 binds an ephemeral port, printed on start-up)",
    )
    p_serve.add_argument(
        "--registry", default=None,
        help="checkpoint registry directory (enables --checkpoint requests)",
    )
    p_serve.add_argument("--cache-capacity", type=int, default=256)
    p_serve.add_argument(
        "--workers", type=int, default=1,
        help="rollout workers for cache-miss searches (1 = in-process)",
    )
    p_serve.add_argument(
        "--samples", type=int, default=16,
        help="default zero-shot draw budget per cache miss",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--cache-dir", default=None,
        help="persist the result cache to a crash-safe journal here "
             "(restarts warm-start from it)",
    )
    p_serve.add_argument(
        "--max-in-flight", type=int, default=0,
        help="admission gate: concurrent requests beyond this get HTTP 429 "
             "+ Retry-After (0 = unbounded)",
    )
    p_serve.add_argument(
        "--request-deadline", type=float, default=None,
        help="per-request wall-clock budget in seconds; an exhausted budget "
             "serves the greedy-heuristic fallback marked 'degraded'",
    )
    p_serve.add_argument(
        "--max-requests", type=int, default=None,
        help="exit after serving this many requests (smoke tests)",
    )
    p_serve.add_argument(
        "--fault-plan", default=None,
        help="arm a deterministic fault schedule, e.g. "
             "'server:drop:times=2;registry:io_error:at=load' "
             "(sites: pool/registry/cache/server/shard_*; echoed in /metrics)",
    )
    p_serve.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed recorded on the armed fault plan",
    )
    p_serve.add_argument(
        "--shard-id", default=None,
        help="shard identity within a routed deployment "
             "(set by `repro route`; echoed in /metrics and /healthz)",
    )
    p_serve.add_argument(
        "--precision",
        choices=["float64", "float32", "int8"],
        default="float64",
        help="warm-pool policy backend; a per-deployment invariant like "
             "--seed (all replicas of a deployment must agree), not part "
             "of the request fingerprint; int8 is the inference-only "
             "quantized encoder (serve/route only)",
    )
    p_serve.add_argument(
        "--batch-window-ms", type=float, default=0.0,
        help="admission coalescing: hold a cache miss open this long so "
             "concurrent misses run as one replay batch (0 = off; results "
             "are batch-composition invariant either way)",
    )
    p_serve.add_argument(
        "--batch-max-size", type=int, default=8,
        help="flush a coalescing window immediately once this many "
             "requests joined",
    )
    p_serve.add_argument(
        "--rate-limit", type=float, default=0.0,
        help="per-source token-bucket admission rate in req/s; over-limit "
             "requests get HTTP 429 + Retry-After (0 = off)",
    )
    p_serve.add_argument(
        "--rate-limit-burst", type=int, default=0,
        help="token-bucket burst capacity (defaults to 1 when --rate-limit "
             "is set)",
    )
    p_serve.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="append sampled request traces as JSONL under this directory "
             "(enables X-Repro-Trace propagation)",
    )
    p_serve.add_argument(
        "--trace-sample", type=float, default=1.0,
        help="fraction of traces written (deterministic per trace id; "
             "client-supplied ids are always written)",
    )
    p_serve.add_argument(
        "--trace-slow-ms", type=float, default=0.0,
        help="requests at or above this duration are written even when "
             "not sampled (0 = off)",
    )
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every HTTP request")
    p_serve.set_defaults(fn=_cmd_serve)

    p_route = sub.add_parser(
        "route",
        help="spawn N shard processes behind a consistent-hash router "
             "with health-checked failover, circuit breakers, and hedging",
    )
    p_route.add_argument("--host", default="127.0.0.1")
    p_route.add_argument(
        "--port", type=int, default=8080,
        help="router port (0 binds an ephemeral port, printed on stdout)",
    )
    p_route.add_argument(
        "--shards", type=int, default=2,
        help="number of shard processes to spawn (each a `repro serve`)",
    )
    p_route.add_argument(
        "--replication", type=int, default=2,
        help="replica-set size R: distinct shards each request may land on",
    )
    p_route.add_argument(
        "--vnodes", type=int, default=64,
        help="virtual nodes per shard on the consistent-hash ring",
    )
    p_route.add_argument(
        "--samples", type=int, default=16,
        help="zero-shot draw budget given to every shard (and folded "
             "into routing keys)",
    )
    p_route.add_argument(
        "--seed", type=int, default=0,
        help="service seed shared by all shards (replica interchangeability)",
    )
    p_route.add_argument(
        "--registry", default=None,
        help="checkpoint registry directory passed to every shard",
    )
    p_route.add_argument("--cache-capacity", type=int, default=256)
    p_route.add_argument(
        "--max-in-flight", type=int, default=0,
        help="per-shard admission bound (0 = unbounded)",
    )
    p_route.add_argument(
        "--probe-interval", type=float, default=2.0,
        help="seconds between /healthz probes of each shard (0 disables)",
    )
    p_route.add_argument(
        "--shard-timeout", type=float, default=60.0,
        help="per-attempt forward timeout; expiry fails over",
    )
    p_route.add_argument(
        "--failure-threshold", type=int, default=3,
        help="consecutive failures that open a shard's circuit breaker",
    )
    p_route.add_argument(
        "--breaker-reset", type=float, default=5.0,
        help="seconds an open breaker waits before its half-open probe",
    )
    p_route.add_argument(
        "--no-hedge", action="store_true",
        help="disable hedged requests (failover still applies)",
    )
    p_route.add_argument(
        "--fault-plan", default=None,
        help="arm router-side chaos, e.g. 'shard_kill:kill:at=s1' or "
             "'shard_stall:stall:at=s0:delay=2'",
    )
    p_route.add_argument("--fault-seed", type=int, default=0)
    p_route.add_argument(
        "--precision",
        choices=["float64", "float32", "int8"],
        default="float64",
        help="policy backend forwarded to every spawned shard (a "
             "deployment-wide invariant, like --seed); int8 is the "
             "inference-only quantized encoder",
    )
    p_route.add_argument(
        "--batch-window-ms", type=float, default=0.0,
        help="admission-coalescing window forwarded to every shard "
             "(0 = off)",
    )
    p_route.add_argument(
        "--batch-max-size", type=int, default=8,
        help="per-shard coalescing flush cap",
    )
    p_route.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="append sampled request traces as JSONL under this directory "
             "(enables X-Repro-Trace propagation; forwarded to every shard so one id links router and shard spans)",
    )
    p_route.add_argument(
        "--trace-sample", type=float, default=1.0,
        help="fraction of traces written (deterministic per trace id; "
             "client-supplied ids are always written)",
    )
    p_route.add_argument(
        "--trace-slow-ms", type=float, default=0.0,
        help="requests at or above this duration are written even when "
             "not sampled (0 = off)",
    )
    p_route.add_argument("--verbose", action="store_true",
                         help="log HTTP requests to stderr")
    p_route.set_defaults(fn=_cmd_route)

    p_metrics = sub.add_parser(
        "metrics", help="fetch a server's /metrics snapshot and pretty-print it"
    )
    p_metrics.add_argument("--host", default="127.0.0.1")
    p_metrics.add_argument("--port", type=int, default=8080)
    p_metrics.add_argument("--timeout", type=float, default=10.0)
    p_metrics.add_argument("--json", action="store_true",
                           help="print the raw JSON snapshot")
    p_metrics.add_argument("--watch", action="store_true",
                           help="refresh every --interval seconds until ^C")
    p_metrics.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh period for --watch (seconds)",
    )
    p_metrics.set_defaults(fn=_cmd_metrics)

    p_req = sub.add_parser(
        "request", help="ask a running server for a partition"
    )
    p_req.add_argument("graph", help="zoo name or .npz path (inlined)")
    p_req.add_argument("--host", default="127.0.0.1")
    p_req.add_argument("--port", type=int, default=8080)
    p_req.add_argument("--chips", type=int, default=None)
    _add_topology_args(p_req)
    p_req.add_argument(
        "--objective", choices=["throughput", "latency"], default="throughput"
    )
    p_req.add_argument(
        "--platform", choices=["analytical", "simulator"], default="analytical"
    )
    p_req.add_argument("--samples", type=int, default=None)
    p_req.add_argument("--checkpoint", default=None,
                       help="registry checkpoint name for the policy weights")
    p_req.add_argument("--checkpoint-version", type=int, default=None)
    p_req.add_argument(
        "--timeout", type=float, default=60.0,
        help="per-attempt HTTP timeout in seconds (fail fast; see --retries)",
    )
    p_req.add_argument(
        "--retries", type=int, default=2,
        help="retry budget for 429/503/connection failures "
             "(jittered exponential backoff, honours Retry-After)",
    )
    p_req.add_argument(
        "--trace-id", default=None,
        help="X-Repro-Trace id to send: a tracing-enabled server "
             "force-samples the request and echoes the id, so its trace "
             "can be found in the server's --trace-dir JSONL",
    )
    p_req.add_argument("--json", action="store_true",
                       help="print the raw JSON reply")
    p_req.add_argument("--output", help="write the assignment to this .npy path")
    p_req.set_defaults(fn=_cmd_request)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
