"""repro: reproduction of "A Transferable Approach for Partitioning Machine
Learning Models on Multi-Chip-Modules" (MLSys 2022).

Quickstart
----------
>>> from repro import (
...     build_bert, MCMPackage, AnalyticalCostModel,
...     PartitionEnvironment, RLPartitioner,
... )
>>> package = MCMPackage(n_chips=4)
>>> graph = build_bert(layers=2, hidden=128, heads=4, seq=64, target_nodes=None)
>>> env = PartitionEnvironment(graph, AnalyticalCostModel(package), package.n_chips)
>>> partitioner = RLPartitioner(package.n_chips, rng=0)
>>> result = partitioner.search(env, n_samples=20)
>>> result.best_improvement > 0
True
"""

from repro.analysis import analyze_partition, format_partition_report, to_dot
from repro.core import (
    HillClimbing,
    PartitionEnvironment,
    PretrainConfig,
    RandomSearch,
    RLPartitioner,
    RLPartitionerConfig,
    SearchResult,
    SimulatedAnnealing,
    UnconstrainedRL,
    fine_tune_search,
    greedy_partition,
    random_baseline_partition,
    pretrain,
    select_checkpoint,
    zero_shot_search,
)
from repro.graphs import CompGraph, GraphBuilder, OpType
from repro.graphs.serialization import load_graph, save_graph
from repro.graphs.zoo import build_bert, build_dataset
from repro.hardware import (
    AnalyticalCostModel,
    ChipSpec,
    MCMPackage,
    MemoryPlanner,
    PipelineSimulator,
)
from repro.solver import (
    ConstraintSolver,
    fix_partition,
    sample_partition,
    validate_partition,
)

__version__ = "0.1.0"

__all__ = [
    "CompGraph",
    "GraphBuilder",
    "OpType",
    "build_bert",
    "build_dataset",
    "ChipSpec",
    "MCMPackage",
    "AnalyticalCostModel",
    "PipelineSimulator",
    "MemoryPlanner",
    "ConstraintSolver",
    "sample_partition",
    "fix_partition",
    "validate_partition",
    "PartitionEnvironment",
    "RLPartitioner",
    "RLPartitionerConfig",
    "SearchResult",
    "greedy_partition",
    "random_baseline_partition",
    "RandomSearch",
    "HillClimbing",
    "analyze_partition",
    "format_partition_report",
    "to_dot",
    "save_graph",
    "load_graph",
    "SimulatedAnnealing",
    "UnconstrainedRL",
    "pretrain",
    "select_checkpoint",
    "PretrainConfig",
    "zero_shot_search",
    "fine_tune_search",
    "__version__",
]
