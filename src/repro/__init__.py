"""repro: reproduction of "A Transferable Approach for Partitioning Machine
Learning Models on Multi-Chip-Modules" (MLSys 2022).

Quickstart
----------
>>> from repro import (
...     build_bert, MCMPackage, AnalyticalCostModel,
...     PartitionEnvironment, RLPartitioner,
... )
>>> package = MCMPackage(n_chips=4)  # the paper's uni-directional ring
>>> graph = build_bert(layers=2, hidden=128, heads=4, seq=64, target_nodes=None)
>>> env = PartitionEnvironment(graph, AnalyticalCostModel(package), package.n_chips)
>>> partitioner = RLPartitioner(package.n_chips, rng=0)
>>> result = partitioner.search(env, n_samples=20)
>>> result.best_improvement > 0
True

The platform interconnect is pluggable: pick a topology (uni-ring is the
default; bi-directional ring, 2D mesh, and crossbar are built in) and the
package, cost models, constraint solver, and policy features all re-target
to it:

>>> from repro import Mesh2D, RLPartitioner
>>> mesh = Mesh2D(2, 2)
>>> package = MCMPackage(n_chips=4, topology=mesh)
>>> env = PartitionEnvironment(graph, AnalyticalCostModel(package), 4)
>>> partitioner = RLPartitioner(4, rng=0, topology=mesh)
>>> result = partitioner.search(env, n_samples=20)
>>> result.best_improvement > 0
True
"""

from repro.analysis import (
    analyze_partition,
    format_partition_report,
    format_service_metrics,
    to_dot,
)
from repro.core import (
    HillClimbing,
    PartitionEnvironment,
    PretrainConfig,
    RandomSearch,
    RLPartitioner,
    RLPartitionerConfig,
    SearchResult,
    SimulatedAnnealing,
    UnconstrainedRL,
    fine_tune_search,
    greedy_partition,
    random_baseline_partition,
    pretrain,
    select_checkpoint,
    zero_shot_search,
)
from repro.graphs import CompGraph, GraphBuilder, OpType
from repro.graphs.serialization import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.graphs.zoo import build_bert, build_dataset
from repro.hardware import (
    AnalyticalCostModel,
    BiRing,
    ChipSpec,
    Crossbar,
    MCMPackage,
    MemoryPlanner,
    Mesh2D,
    PipelineSimulator,
    Topology,
    UniRing,
    make_topology,
)
from repro.serve import (
    CheckpointRegistry,
    PartitionRequest,
    PartitionResponse,
    PartitionServer,
    PartitionService,
    ServiceConfig,
    graph_fingerprint,
    request_fingerprint,
)
from repro.solver import (
    ConstraintSolver,
    fix_partition,
    sample_partition,
    validate_partition,
)

__version__ = "0.1.0"

__all__ = [
    "CompGraph",
    "GraphBuilder",
    "OpType",
    "build_bert",
    "build_dataset",
    "ChipSpec",
    "MCMPackage",
    "Topology",
    "UniRing",
    "BiRing",
    "Mesh2D",
    "Crossbar",
    "make_topology",
    "AnalyticalCostModel",
    "PipelineSimulator",
    "MemoryPlanner",
    "ConstraintSolver",
    "sample_partition",
    "fix_partition",
    "validate_partition",
    "PartitionEnvironment",
    "RLPartitioner",
    "RLPartitionerConfig",
    "SearchResult",
    "greedy_partition",
    "random_baseline_partition",
    "RandomSearch",
    "HillClimbing",
    "analyze_partition",
    "format_partition_report",
    "to_dot",
    "save_graph",
    "load_graph",
    "graph_to_dict",
    "graph_from_dict",
    "graph_fingerprint",
    "request_fingerprint",
    "CheckpointRegistry",
    "PartitionRequest",
    "PartitionResponse",
    "PartitionServer",
    "PartitionService",
    "ServiceConfig",
    "format_service_metrics",
    "SimulatedAnnealing",
    "UnconstrainedRL",
    "pretrain",
    "select_checkpoint",
    "PretrainConfig",
    "zero_shot_search",
    "fine_tune_search",
    "__version__",
]
