"""Node featurisation: from a :class:`CompGraph` to policy-network inputs.

Features are graph-local and scale-free so one policy transfers across
graphs of different sizes and cost magnitudes (the paper's generalisation
requirement): costs are normalised by graph totals, positions by graph
depth, and op types are one-hot by category.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import CompGraph
from repro.graphs.ops import N_CATEGORIES
from repro.nn.layers import mean_aggregation_matrix

#: numeric features + op-category one-hot
N_BASE_FEATURES = 8
N_FEATURES = N_BASE_FEATURES + N_CATEGORIES


@dataclass(frozen=True)
class GraphFeatures:
    """Precomputed policy inputs for one graph.

    Attributes
    ----------
    node_features:
        ``(N, F)`` feature matrix.
    agg_matrix:
        Row-normalised adjacency for GraphSAGE mean aggregation.
    """

    node_features: np.ndarray
    agg_matrix: object

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the featurised graph."""
        return self.node_features.shape[0]


def featurize(graph: CompGraph) -> GraphFeatures:
    """Build policy-network inputs for ``graph``."""
    n = graph.n_nodes
    compute = graph.compute_us
    out_bytes = graph.output_bytes
    params = graph.param_bytes

    total_compute = max(graph.total_compute_us(), 1e-12)
    total_bytes = max(out_bytes.sum(), 1e-12)
    total_params = max(params.sum(), 1e-12)

    depth = graph.depth().astype(np.float64)
    max_depth = max(depth.max(), 1.0)
    in_deg = graph.in_degree().astype(np.float64)
    out_deg = graph.out_degree().astype(np.float64)

    # Cumulative compute by topological position: roughly "how far through
    # the pipeline is this op", the strongest signal for a balanced cut.
    order = graph.topological_order()
    position = np.empty(n)
    cum = np.cumsum(compute[order])
    position[order] = cum / max(cum[-1], 1e-12)

    features = np.zeros((n, N_FEATURES))
    features[:, 0] = compute / total_compute * n
    features[:, 1] = out_bytes / total_bytes * n
    features[:, 2] = params / total_params * n
    features[:, 3] = depth / max_depth
    features[:, 4] = position
    features[:, 5] = np.log1p(in_deg)
    features[:, 6] = np.log1p(out_deg)
    features[:, 7] = 1.0  # bias feature
    cats = graph.op_categories()
    features[np.arange(n), N_BASE_FEATURES + cats] = 1.0

    agg = mean_aggregation_matrix(n, graph.src, graph.dst)
    return GraphFeatures(node_features=features, agg_matrix=agg)
