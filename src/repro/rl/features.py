"""Node featurisation: from a :class:`CompGraph` to policy-network inputs.

Features are graph-local and scale-free so one policy transfers across
graphs of different sizes and cost magnitudes (the paper's generalisation
requirement): costs are normalised by graph totals, positions by graph
depth, and op types are one-hot by category.

Topology conditioning: passing a platform topology to :func:`featurize`
appends ``N_TOPO_FEATURES`` scale-free platform-descriptor columns
(broadcast to every node), so one policy can train and deploy across
interconnects — the descriptor has the same width for every topology.
``topology=None`` keeps the legacy uni-ring featurisation (and width)
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import CompGraph
from repro.graphs.ops import N_CATEGORIES
from repro.nn.layers import mean_aggregation_matrix

#: numeric features + op-category one-hot
N_BASE_FEATURES = 8
N_FEATURES = N_BASE_FEATURES + N_CATEGORIES
#: platform-descriptor columns appended when a topology is supplied
N_TOPO_FEATURES = 4


@dataclass(frozen=True)
class GraphFeatures:
    """Precomputed policy inputs for one graph.

    Attributes
    ----------
    node_features:
        ``(N, F)`` feature matrix.
    agg_matrix:
        Row-normalised adjacency for GraphSAGE mean aggregation.
    """

    node_features: np.ndarray
    agg_matrix: object

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the featurised graph."""
        return self.node_features.shape[0]


def topology_descriptor(topology) -> np.ndarray:
    """``(N_TOPO_FEATURES,)`` scale-free summary of a platform topology.

    Columns: reachable fraction of ordered chip pairs (0.5 on the uni-ring,
    1.0 on strongly connected interconnects), mean route length over
    reachable pairs normalised by ``n_chips - 1``, link density relative to
    a full crossbar, and a total-order flag (1.0 exactly when the legacy
    ring constraints apply).  All entries are bounded in ``[0, 1]`` and
    independent of the graph; they do vary with the package size within a
    topology family (e.g. uni-ring link density is ``1/C``), which is
    signal — a 4-chip and a 36-chip ring are different platforms.
    """
    c = topology.n_chips
    pairs = c * (c - 1)
    if pairs == 0:
        return np.array([1.0, 0.0, 1.0, 1.0])
    hops = topology.hop_matrix
    routable = hops > 0
    reach_frac = routable.sum() / pairs
    mean_hops = (
        float(hops[routable].mean()) / max(c - 1, 1) if np.any(routable) else 0.0
    )
    link_density = min(topology.n_links / pairs, 1.0)
    return np.array(
        [reach_frac, mean_hops, link_density, 1.0 if topology.is_total_order else 0.0]
    )


def featurize(graph: CompGraph, topology=None) -> GraphFeatures:
    """Build policy-network inputs for ``graph``.

    ``topology`` appends the platform-descriptor columns (see
    :func:`topology_descriptor`); ``None`` keeps the legacy width.
    """
    n = graph.n_nodes
    compute = graph.compute_us
    out_bytes = graph.output_bytes
    params = graph.param_bytes

    total_compute = max(graph.total_compute_us(), 1e-12)
    total_bytes = max(out_bytes.sum(), 1e-12)
    total_params = max(params.sum(), 1e-12)

    depth = graph.depth().astype(np.float64)
    max_depth = max(depth.max(), 1.0)
    in_deg = graph.in_degree().astype(np.float64)
    out_deg = graph.out_degree().astype(np.float64)

    # Cumulative compute by topological position: roughly "how far through
    # the pipeline is this op", the strongest signal for a balanced cut.
    order = graph.topological_order()
    position = np.empty(n)
    cum = np.cumsum(compute[order])
    position[order] = cum / max(cum[-1], 1e-12)

    features = np.zeros((n, N_FEATURES))
    features[:, 0] = compute / total_compute * n
    features[:, 1] = out_bytes / total_bytes * n
    features[:, 2] = params / total_params * n
    features[:, 3] = depth / max_depth
    features[:, 4] = position
    features[:, 5] = np.log1p(in_deg)
    features[:, 6] = np.log1p(out_deg)
    features[:, 7] = 1.0  # bias feature
    cats = graph.op_categories()
    features[np.arange(n), N_BASE_FEATURES + cats] = 1.0
    if topology is not None:
        desc = topology_descriptor(topology)
        features = np.concatenate(
            [features, np.broadcast_to(desc, (n, desc.size))], axis=1
        )

    agg = mean_aggregation_matrix(n, graph.src, graph.dst)
    return GraphFeatures(node_features=features, agg_matrix=agg)
