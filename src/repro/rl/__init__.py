"""Reinforcement-learning framework: featuriser, policy network, PPO.

Architecture per the paper (Section 4.1 / 5.1): a GraphSAGE feature network
(default 8 layers of width 128) encodes the computation graph; a 2-layer
feed-forward policy head maps the concatenation of node embeddings and the
current state embedding (the previous iteration's placement) to an
``N x C`` probability matrix; PPO (20 rollouts, 4 minibatches, 10 epochs by
default) trains both end-to-end on the reward of the solver-repaired
partition.
"""

from repro.rl.features import GraphFeatures, featurize
from repro.rl.policy import PartitionPolicy, PolicyOutput
from repro.rl.ppo import PPOConfig, PPOTrainer
from repro.rl.rollout import Rollout, RolloutBuffer

__all__ = [
    "featurize",
    "GraphFeatures",
    "PartitionPolicy",
    "PolicyOutput",
    "PPOConfig",
    "PPOTrainer",
    "Rollout",
    "RolloutBuffer",
]
