"""Rollout storage for PPO updates."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Rollout:
    """One policy sample and its environment outcome.

    Attributes
    ----------
    conditioning:
        ``(N,)`` placement the final policy iteration conditioned on.
    candidate:
        ``(N,)`` sampled (possibly invalid) action ``y``.
    repaired:
        ``(N,)`` solver-repaired valid partition ``y'`` whose reward is used.
    log_prob:
        Behaviour-policy per-node log probabilities of ``candidate``
        (``(N,)``), for the PPO importance ratio.
    value:
        Baseline estimate at sampling time.
    reward:
        Scalar environment reward (normalised throughput improvement).
    """

    conditioning: np.ndarray
    candidate: np.ndarray
    repaired: np.ndarray
    log_prob: np.ndarray
    value: float
    reward: float


class RolloutBuffer:
    """Fixed-graph rollout collection with advantage computation."""

    def __init__(self):
        self._rollouts: list[Rollout] = []

    def add(self, rollout: Rollout) -> None:
        """Append one rollout."""
        self._rollouts.append(rollout)

    def __len__(self) -> int:
        return len(self._rollouts)

    def clear(self) -> None:
        """Drop all stored rollouts."""
        self._rollouts.clear()

    @property
    def rollouts(self) -> list[Rollout]:
        """The stored rollouts (in insertion order)."""
        return list(self._rollouts)

    def advantages(self, normalize: bool = True) -> np.ndarray:
        """Single-step advantages ``reward - value`` (optionally standardised)."""
        if not self._rollouts:
            return np.zeros(0)
        rewards = np.array([r.reward for r in self._rollouts])
        values = np.array([r.value for r in self._rollouts])
        adv = rewards - values
        if normalize and adv.size > 1:
            std = adv.std()
            adv = (adv - adv.mean()) / (std + 1e-8)
        return adv

    def minibatch_indices(self, n_minibatches: int, rng) -> list[np.ndarray]:
        """Shuffle rollouts into ``n_minibatches`` near-equal index groups."""
        if n_minibatches < 1:
            raise ValueError("n_minibatches must be >= 1")
        idx = rng.permutation(len(self._rollouts))
        return [chunk for chunk in np.array_split(idx, n_minibatches) if chunk.size]
