"""The partitioning policy network (paper Figure 3).

* **Feature network**: GraphSAGE, default 8 layers x 128 units, encoding the
  computation graph into node embeddings ``hG``.
* **State embedding**: the one-hot placement from the previous refinement
  iteration (Equation 7's conditioning on ``y^(t-1)``).
* **Policy head**: 2-layer feed-forward network mapping ``[hG | state]`` to
  per-node chip logits — the ``N x C`` probability matrix ``P``.
* **Value head**: pooled graph embedding + chip-usage summary to a scalar
  baseline for PPO.

Placement generation is iterative but non-autoregressive: ``T`` rounds of
"predict distribution, sample all nodes in parallel, feed the sample back"
(paper Equation 7, after Zhou et al. 2021).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.nn import functional as F
from repro.nn.backend import resolve_backend, typed_aggregation
from repro.nn.layers import GraphSAGELayer, Linear, Module
from repro.nn.tensor import MutationGuard, Tensor, debug_checks_enabled
from repro.rl.features import N_FEATURES, GraphFeatures
from repro.utils.rng import as_generator

#: How many (features, embedding) pairs the encoder cache retains.  Each
#: entry pins the embedding's full autodiff tape (every SAGE layer's
#: intermediates — tens of MB for production-size graphs), which backward
#: passes through cache hits require, so the cap is kept small: enough for
#: a validation-replay sweep, bounded in memory when thousands of distinct
#: graphs stream through.
_ENCODE_CACHE_SIZE = 8


@dataclass
class PolicyOutput:
    """Differentiable outputs of one policy evaluation.

    Attributes
    ----------
    log_probs:
        ``(R*N, C)`` tensor of per-node log chip probabilities.
    values:
        ``(R,)`` tensor of value-baseline estimates.
    probs:
        ``(R, N, C)`` detached probability matrix (for the solver), or
        ``None`` when the caller asked ``need_probs=False``.
    """

    log_probs: Tensor
    values: Tensor
    probs: "np.ndarray | None"


@dataclass(frozen=True)
class BatchProposal:
    """A batch of candidate partitions drawn in one refinement sweep.

    Attributes
    ----------
    candidates:
        ``(R, N)`` sampled assignments ``y`` of the final round.
    conditionings:
        ``(R, N)`` placements the final round conditioned on (``y^(T-1)``).
    probs:
        ``(R, N, C)`` final probability matrices ``P``.
    values:
        ``(R,)`` value-baseline estimates from the final policy evaluation
        (the evaluation conditioned on ``conditionings`` when ``T >= 2``).
    """

    candidates: np.ndarray
    conditionings: np.ndarray
    probs: np.ndarray
    values: np.ndarray


class PartitionPolicy(Module):
    """GraphSAGE encoder + feed-forward policy/value heads.

    Parameters
    ----------
    n_chips:
        Number of chiplets ``C`` (the action arity per node).
    n_features:
        Input feature width (from :mod:`repro.rl.features`).
    hidden:
        Width of GraphSAGE and feed-forward layers (paper: 128).
    n_sage_layers:
        GraphSAGE depth (paper: 8).
    n_policy_layers:
        Policy-head depth (paper: 2).
    refine_iters:
        Refinement rounds ``T`` in Equation 7.
    rng:
        Seed or generator for weight initialisation.
    backend:
        Numeric backend (name, dtype, or :class:`repro.nn.Backend`); None
        selects the frozen float64 default.  All weight initialisation
        draws come from the same RNG stream regardless of backend, so
        float32 and float64 policies start from the same weights.
    """

    def __init__(
        self,
        n_chips: int,
        n_features: int = N_FEATURES,
        hidden: int = 128,
        n_sage_layers: int = 8,
        n_policy_layers: int = 2,
        refine_iters: int = 2,
        rng=None,
        backend=None,
    ):
        if n_chips < 1:
            raise ValueError("n_chips must be >= 1")
        if n_sage_layers < 1 or n_policy_layers < 1:
            raise ValueError("layer counts must be >= 1")
        if refine_iters < 1:
            raise ValueError("refine_iters must be >= 1")
        rng = as_generator(rng)
        self.backend = resolve_backend(backend)
        dtype = self.backend.dtype
        self.n_chips = n_chips
        self.refine_iters = refine_iters
        self.sage_layers = [
            GraphSAGELayer(n_features if i == 0 else hidden, hidden, rng=rng, dtype=dtype)
            for i in range(n_sage_layers)
        ]
        # Head input: node embedding | own previous assignment | mean of the
        # neighbours' previous assignments.  The neighbour term is what lets
        # decisions "mutually influence each other" across Equation 7's
        # iterations (and gives Equation 6 its sequential conditioning).
        head_dims = [hidden + 2 * n_chips] + [hidden] * (n_policy_layers - 1) + [n_chips]
        self.policy_layers = [
            Linear(head_dims[i], head_dims[i + 1], rng=rng, dtype=dtype)
            for i in range(len(head_dims) - 1)
        ]
        self.value_hidden = Linear(hidden + n_chips, hidden, rng=rng, dtype=dtype)
        self.value_out = Linear(hidden, 1, rng=rng, dtype=dtype)
        # (weights_version, features, embeddings) memo keyed by feature
        # object identity; the strong reference to ``features`` keeps the
        # id() stable while the entry lives.
        self._encode_cache: "OrderedDict[int, tuple]" = OrderedDict()
        # The parameter set is fixed after construction; cache the walk so
        # per-forward version checks stay cheap.
        self._param_list = self.parameters()

    def weights_version(self) -> int:
        """See :meth:`Module.weights_version` (cached parameter walk)."""
        return sum(p._version for p in self._param_list)

    # ------------------------------------------------------------------
    def encode(self, features: GraphFeatures, use_cache: bool = True) -> Tensor:
        """Run the GraphSAGE stack; returns ``(N, hidden)`` node embeddings.

        The result depends only on (weights, graph), so it is memoised per
        ``features`` object keyed on :meth:`Module.weights_version` —
        optimiser steps and ``load_state_dict`` invalidate automatically.
        Callers must treat ``features`` as immutable (the repo-wide
        convention; :func:`repro.rl.features.featurize` builds fresh
        arrays).  The cached tensor stays on the autodiff tape, so reusing
        it across forward passes backpropagates correctly.
        """
        if not use_cache:
            return self._encode_impl(features)
        version = self.weights_version()
        key = id(features)
        entry = self._encode_cache.get(key)
        if entry is not None and entry[0] == version and entry[1] is features:
            if entry[3] is not None:
                # Debug mode (REPRO_NN_CHECKS=1): a weight or feature array
                # mutated in place without bump_version() would make this
                # hit silently stale — fail loudly instead.
                entry[3].verify("encoder memo hit")
            self._encode_cache.move_to_end(key)
            return entry[2]
        h = self._encode_impl(features)
        guard = (
            MutationGuard(self._param_list, arrays=(features.node_features,))
            if debug_checks_enabled()
            else None
        )
        self._encode_cache[key] = (version, features, h, guard)
        self._encode_cache.move_to_end(key)
        while len(self._encode_cache) > _ENCODE_CACHE_SIZE:
            self._encode_cache.popitem(last=False)
        return h

    def _encode_impl(self, features: GraphFeatures) -> Tensor:
        # Features are built float64 once per graph; cast (a no-op on the
        # default backend) rather than rebuilding so every precision shares
        # one featurize pass and one aggregation matrix.
        if self.backend.quantized:
            # int8 serving path: each SAGE hop runs the quantized kernel
            # over raw ndarrays (inference-only, no tape); the constant
            # result feeds the float32 heads ("dequantized heads").
            h = np.asarray(features.node_features, dtype=np.float32)
            for layer in self.sage_layers:
                w_q, w_scale, bias32, _ = layer.int8_weights()
                h = F.sage_mean_combine_int8(
                    h, features.agg_matrix, w_q, w_scale, bias32
                )
            return Tensor(h)
        h = Tensor(self.backend.cast(features.node_features))
        for layer in self.sage_layers:
            h = layer(h, features.agg_matrix)
        return h

    def quantization_stats(self) -> "dict | None":
        """Int8 weight-quantization error stats, or None when not quantized.

        Forces quantization of every SAGE hop (a no-op on warm weights —
        :meth:`GraphSAGELayer.int8_weights` memoises on weight versions)
        and reports the per-layer scale and worst-case dequantization
        error, plus the max across layers.
        """
        if not self.backend.quantized:
            return None
        layers = []
        for layer in self.sage_layers:
            _, scale, _, err = layer.int8_weights()
            layers.append({"scale": scale, "max_abs_err": err})
        return {
            "n_layers": len(layers),
            "max_abs_err": max((l["max_abs_err"] for l in layers), default=0.0),
            "layers": layers,
        }

    def _policy_head(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.policy_layers):
            x = layer(x)
            if i + 1 < len(self.policy_layers):
                x = F.relu(x)
        return x

    def forward_batch(
        self,
        features: GraphFeatures,
        prev_placements: np.ndarray,
        need_probs: bool = True,
    ) -> PolicyOutput:
        """Evaluate the policy for a batch of conditioning placements.

        Parameters
        ----------
        features:
            Featurised graph (shared across the batch).
        prev_placements:
            ``(R, N)`` integer array of previous-iteration placements, or
            ``(R, N, C)`` soft one-hot states.
        need_probs:
            Materialise the detached ``(R, N, C)`` probability matrix.  The
            PPO update only consumes the differentiable outputs, so it skips
            the extra ``exp``/reshape; sampling callers keep the default.
        """
        n = features.n_nodes
        states = self._as_state(prev_placements)  # (R, N, C)
        r = states.shape[0]
        c = self.n_chips

        h = self.encode(features)  # (N, hidden)
        agg = typed_aggregation(features.agg_matrix, self.backend.dtype)
        # All R neighbour aggregations in one sparse matmul: lay the states
        # out as an (N, R*C) column block so ``agg @ block`` computes every
        # ``agg @ states[k]`` with the same per-row accumulation order (the
        # result is bitwise identical to the per-k loop).
        state_block = states.transpose(1, 0, 2).reshape(n, r * c)
        neigh = np.asarray(agg @ state_block)
        neigh_rows = neigh.reshape(n, r, c).transpose(1, 0, 2).reshape(r * n, c)
        state_rows = states.reshape(r * n, c)
        usage = states.mean(axis=1)  # (R, C)
        pooled = F.mean(h, axis=0, keepdims=True)  # (1, hidden)
        if self.backend.fused_gemm:
            # Fast path: the (N, H) encoder output is shared by all R
            # conditioning rows, so the heads' first-layer GEMMs compute
            # ``h @ W[:H]`` once and tile, instead of tiling ``h`` R times
            # and multiplying R copies (see :func:`F.tiled_linear`).
            extra = np.concatenate([state_rows, neigh_rows], axis=1)
            head0 = self.policy_layers[0]
            x = F.tiled_linear(h, extra, head0.weight, head0.bias, r)
            for layer in self.policy_layers[1:]:
                x = layer(F.relu(x))
            logits = x
            vh = self.value_hidden
            value_pre = F.tiled_linear(pooled, usage, vh.weight, vh.bias, r)
            values = self.value_out(F.relu(value_pre))
        else:
            h_rows = F.concat([h] * r, axis=0) if r > 1 else h
            stacked = F.concat(
                [h_rows, Tensor(state_rows), Tensor(neigh_rows)], axis=1
            )  # (R*N, H+2C)
            logits = self._policy_head(stacked)
            pooled_rows = F.concat([pooled] * r, axis=0) if r > 1 else pooled
            value_in = F.concat([pooled_rows, Tensor(usage)], axis=1)
            values = self.value_out(F.relu(self.value_hidden(value_in)))
        log_probs = F.log_softmax(logits, axis=-1)
        values = F.reshape(values, (r,))

        probs = (
            np.exp(log_probs.data).reshape(r, n, self.n_chips)
            if need_probs
            else None
        )
        return PolicyOutput(log_probs=log_probs, values=values, probs=probs)

    def _as_state(self, prev_placements: np.ndarray) -> np.ndarray:
        """Convert placements to ``(R, N, C)`` one-hot state embeddings."""
        arr = np.asarray(prev_placements)
        dtype = self.backend.dtype
        if arr.ndim == 3:
            return arr.astype(dtype)
        if arr.ndim == 1:
            arr = arr[None, :]
        r, n = arr.shape
        state = np.zeros((r, n, self.n_chips), dtype=dtype)
        state[np.arange(r)[:, None], np.arange(n)[None, :], arr.astype(np.int64)] = 1.0
        return state

    # ------------------------------------------------------------------
    def propose(
        self, features: GraphFeatures, rng=None, refine_iters: "int | None" = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Generate a candidate partition via iterative refinement (Eq. 7).

        Returns
        -------
        (candidate, conditioning, probs):
            ``candidate`` is the sampled assignment ``y`` of the final
            round, ``conditioning`` the placement it was conditioned on
            (``y^(T-1)``), and ``probs`` the final ``(N, C)`` matrix ``P``.
        """
        batch = self.propose_batch(features, 1, rng=rng, refine_iters=refine_iters)
        return batch.candidates[0], batch.conditionings[0], batch.probs[0]

    def propose_batch(
        self,
        features: GraphFeatures,
        n_candidates: int,
        rng=None,
        refine_iters: "int | None" = None,
    ) -> BatchProposal:
        """Draw ``n_candidates`` independent refinement sweeps in one batch.

        Each candidate runs Equation 7 from the uniform "no placement yet"
        state; all of them share every policy evaluation (one encoder pass
        plus one batched head pass per round), which is what makes drawing a
        full PPO rollout window one forward-batch instead of ``R`` separate
        ones.  The value baselines of the final round are returned so the
        search loop needs no extra value pass (when ``T >= 2`` the final
        round is conditioned on exactly ``conditionings``, matching a
        dedicated evaluation bitwise; with ``T == 1`` the value is estimated
        at the uniform state instead).
        """
        if n_candidates < 1:
            raise ValueError("n_candidates must be >= 1")
        rng = as_generator(rng)
        iters = self.refine_iters if refine_iters is None else refine_iters
        n = features.n_nodes
        r = n_candidates
        # Round 0 conditions on the uniform "no placement yet" state.
        state = np.full((r, n, self.n_chips), 1.0 / self.n_chips, dtype=self.backend.dtype)
        conditioning = np.zeros((r, n), dtype=np.int64)
        candidate = np.zeros((r, n), dtype=np.int64)
        probs = np.full((r, n, self.n_chips), 1.0 / self.n_chips, dtype=self.backend.dtype)
        values = np.zeros(r)
        for t in range(iters):
            out = self.forward_batch(features, state)
            probs = out.probs
            values = out.values.data.copy()
            cdf = probs.cumsum(axis=2)
            u = rng.random((r, n, 1))
            sampled = (u > cdf).sum(axis=2)
            if t > 0:
                conditioning = candidate
            candidate = np.minimum(sampled, self.n_chips - 1).astype(np.int64)
            state = self._as_state(candidate)
        if iters == 1:
            conditioning = np.zeros((r, n), dtype=np.int64)
        return BatchProposal(
            candidates=candidate,
            conditionings=conditioning,
            probs=probs,
            values=values,
        )

    def propose_autoregressive(
        self, features: GraphFeatures, rng=None, order: "np.ndarray | None" = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sequential placement per the paper's Equation 6 (reference only).

        Each node's distribution conditions on *all* previous decisions:
        ``p(y) = prod_i p(y_i | hG, y_{i-1}, y_{i-2}, ...)``.  The paper
        rejects this for production ("computing the y_i's sequentially can
        be extremely expensive") — one policy evaluation per node makes it
        ``O(N)`` times the cost of Equation 7 — but it is the gold standard
        the iterative scheme approximates, so it is kept for ablations on
        small graphs.

        Returns ``(assignment, probs)`` where ``probs[i]`` is the
        distribution node ``i`` was sampled from at its turn.
        """
        rng = as_generator(rng)
        n = features.n_nodes
        if order is None:
            order = np.arange(n)
        else:
            order = np.asarray(order, dtype=np.int64)
            if sorted(order.tolist()) != list(range(n)):
                raise ValueError("order must be a permutation of all node ids")
        # Unassigned nodes carry the uniform state; assigned ones one-hot.
        state = np.full((1, n, self.n_chips), 1.0 / self.n_chips, dtype=self.backend.dtype)
        assignment = np.zeros(n, dtype=np.int64)
        probs = np.full((n, self.n_chips), 1.0 / self.n_chips)
        for u in order:
            out = self.forward_batch(features, state)
            row = out.probs[0, u]
            probs[u] = row
            choice = int(rng.choice(self.n_chips, p=row / row.sum()))
            assignment[u] = choice
            state[0, u, :] = 0.0
            state[0, u, choice] = 1.0
        return assignment, probs
