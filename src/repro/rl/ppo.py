"""Proximal Policy Optimization for the partitioning policy.

The episode is single-step: one action is a full-graph placement, one reward
is the (normalised) throughput of the solver-repaired partition.  The PPO
surrogate treats each node's chip choice as an action sharing the episode
advantage — the standard factorisation for single-shot combinatorial
policies (Zhou et al., 2021) — with clipped per-node importance ratios, an
entropy bonus, and a clipped value loss.

Paper hyper-parameters (Section 5.1): 20 rollouts per update, 4 minibatches,
10 epochs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import functional as F
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.rl.features import GraphFeatures
from repro.rl.policy import PartitionPolicy
from repro.rl.rollout import RolloutBuffer
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class PPOConfig:
    """PPO hyper-parameters (defaults follow the paper where stated)."""

    n_rollouts: int = 20
    n_minibatches: int = 4
    n_epochs: int = 10
    clip_ratio: float = 0.2
    entropy_coef: float = 0.01
    value_coef: float = 0.5
    learning_rate: float = 3e-4
    max_grad_norm: float = 1.0

    def __post_init__(self):
        if self.n_rollouts < 1 or self.n_minibatches < 1 or self.n_epochs < 1:
            raise ValueError("n_rollouts, n_minibatches, n_epochs must be >= 1")
        if self.n_minibatches > self.n_rollouts:
            raise ValueError("n_minibatches cannot exceed n_rollouts")
        if not (0 < self.clip_ratio < 1):
            raise ValueError("clip_ratio must be in (0, 1)")


@dataclass(frozen=True)
class PPOStats:
    """Diagnostics from one PPO update."""

    policy_loss: float
    value_loss: float
    entropy: float
    mean_reward: float
    grad_norm: float


class PPOTrainer:
    """Runs PPO updates on a :class:`PartitionPolicy`.

    Parameters
    ----------
    policy:
        The policy/value network to optimise.
    config:
        Hyper-parameters; defaults reproduce the paper's tuned setting.
    rng:
        Seed or generator for minibatch shuffling.
    """

    def __init__(self, policy: PartitionPolicy, config: "PPOConfig | None" = None, rng=None):
        self.policy = policy
        self.config = config or PPOConfig()
        self.rng = as_generator(rng)
        self._params = policy.parameters()
        self.optimizer = Adam(self._params, lr=self.config.learning_rate)

    def update(self, features: GraphFeatures, buffer: RolloutBuffer) -> PPOStats:
        """Run one PPO update from ``buffer`` (rollouts on one graph).

        Returns averaged diagnostics over all epochs/minibatches.
        """
        if self.policy.backend.quantized:
            # Quantized backends are inference-only: the encoder runs off
            # the tape and weight updates would silently desync the int8
            # cache — refuse rather than train a wrong gradient.
            raise RuntimeError(
                f"precision {self.policy.backend.name!r} is inference-only; "
                "training requires float64 or float32"
            )
        if len(buffer) == 0:
            raise ValueError("buffer is empty")
        cfg = self.config
        rollouts = buffer.rollouts
        advantages = buffer.advantages()
        n = features.n_nodes

        stats = {"policy": 0.0, "value": 0.0, "entropy": 0.0, "grad": 0.0}
        n_steps = 0
        # Per-rollout arrays are assembled once; minibatches index into them.
        cond_all = np.stack([b.conditioning for b in rollouts])
        act_all = np.stack([b.candidate for b in rollouts])
        old_lp_all = np.stack([b.log_prob for b in rollouts])
        returns_all = np.array([b.reward for b in rollouts])
        for _ in range(cfg.n_epochs):
            for idx in buffer.minibatch_indices(cfg.n_minibatches, self.rng):
                conditioning = cond_all[idx]
                actions = act_all[idx].reshape(-1)
                old_log_probs = old_lp_all[idx].reshape(-1)
                adv = np.repeat(advantages[idx], n)
                returns = returns_all[idx]

                out = self.policy.forward_batch(
                    features, conditioning, need_probs=False
                )
                loss, step_stats = F.ppo_objective(
                    out.log_probs,
                    out.values,
                    actions,
                    old_log_probs,
                    adv,
                    returns,
                    cfg.clip_ratio,
                    cfg.value_coef,
                    cfg.entropy_coef,
                )

                self.optimizer.zero_grad()
                loss.backward()
                grad_norm = clip_grad_norm(self._params, cfg.max_grad_norm)
                self.optimizer.step()

                stats["policy"] += step_stats["policy_loss"]
                stats["value"] += step_stats["value_loss"]
                stats["entropy"] += step_stats["entropy"]
                stats["grad"] += grad_norm
                n_steps += 1

        mean_reward = float(np.mean([b.reward for b in rollouts]))
        return PPOStats(
            policy_loss=stats["policy"] / n_steps,
            value_loss=stats["value"] / n_steps,
            entropy=stats["entropy"] / n_steps,
            mean_reward=mean_reward,
            grad_norm=stats["grad"] / n_steps,
        )
