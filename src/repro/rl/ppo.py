"""Proximal Policy Optimization for the partitioning policy.

The episode is single-step: one action is a full-graph placement, one reward
is the (normalised) throughput of the solver-repaired partition.  The PPO
surrogate treats each node's chip choice as an action sharing the episode
advantage — the standard factorisation for single-shot combinatorial
policies (Zhou et al., 2021) — with clipped per-node importance ratios, an
entropy bonus, and a clipped value loss.

Paper hyper-parameters (Section 5.1): 20 rollouts per update, 4 minibatches,
10 epochs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import functional as F
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.rl.features import GraphFeatures
from repro.rl.policy import PartitionPolicy
from repro.rl.rollout import RolloutBuffer
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class PPOConfig:
    """PPO hyper-parameters (defaults follow the paper where stated)."""

    n_rollouts: int = 20
    n_minibatches: int = 4
    n_epochs: int = 10
    clip_ratio: float = 0.2
    entropy_coef: float = 0.01
    value_coef: float = 0.5
    learning_rate: float = 3e-4
    max_grad_norm: float = 1.0

    def __post_init__(self):
        if self.n_rollouts < 1 or self.n_minibatches < 1 or self.n_epochs < 1:
            raise ValueError("n_rollouts, n_minibatches, n_epochs must be >= 1")
        if self.n_minibatches > self.n_rollouts:
            raise ValueError("n_minibatches cannot exceed n_rollouts")
        if not (0 < self.clip_ratio < 1):
            raise ValueError("clip_ratio must be in (0, 1)")


@dataclass(frozen=True)
class PPOStats:
    """Diagnostics from one PPO update."""

    policy_loss: float
    value_loss: float
    entropy: float
    mean_reward: float
    grad_norm: float


class PPOTrainer:
    """Runs PPO updates on a :class:`PartitionPolicy`.

    Parameters
    ----------
    policy:
        The policy/value network to optimise.
    config:
        Hyper-parameters; defaults reproduce the paper's tuned setting.
    rng:
        Seed or generator for minibatch shuffling.
    """

    def __init__(self, policy: PartitionPolicy, config: "PPOConfig | None" = None, rng=None):
        self.policy = policy
        self.config = config or PPOConfig()
        self.rng = as_generator(rng)
        self.optimizer = Adam(policy.parameters(), lr=self.config.learning_rate)

    def update(self, features: GraphFeatures, buffer: RolloutBuffer) -> PPOStats:
        """Run one PPO update from ``buffer`` (rollouts on one graph).

        Returns averaged diagnostics over all epochs/minibatches.
        """
        if len(buffer) == 0:
            raise ValueError("buffer is empty")
        cfg = self.config
        rollouts = buffer.rollouts
        advantages = buffer.advantages()
        n = features.n_nodes

        stats = {"policy": 0.0, "value": 0.0, "entropy": 0.0, "grad": 0.0}
        n_steps = 0
        for _ in range(cfg.n_epochs):
            for idx in buffer.minibatch_indices(cfg.n_minibatches, self.rng):
                batch = [rollouts[i] for i in idx]
                r = len(batch)
                conditioning = np.stack([b.conditioning for b in batch])
                actions = np.concatenate([b.candidate for b in batch])
                old_log_probs = np.concatenate([b.log_prob for b in batch])
                adv = np.repeat(advantages[idx], n)
                returns = np.array([b.reward for b in batch])

                out = self.policy.forward_batch(features, conditioning)
                new_log_probs = F.take_along_last(out.log_probs, actions)
                ratio = F.exp(F.sub(new_log_probs, Tensor(old_log_probs)))
                unclipped = F.mul(ratio, Tensor(adv))
                clipped = F.mul(
                    F.clip(ratio, 1.0 - cfg.clip_ratio, 1.0 + cfg.clip_ratio),
                    Tensor(adv),
                )
                policy_loss = F.mul(F.mean(F.minimum(unclipped, clipped)), Tensor(-1.0))

                value_err = F.sub(out.values, Tensor(returns))
                value_loss = F.mean(F.square(value_err))

                probs_t = F.exp(out.log_probs)
                entropy = F.mul(
                    F.mean(F.sum(F.mul(probs_t, out.log_probs), axis=1)), Tensor(-1.0)
                )

                loss = F.add(
                    F.add(policy_loss, F.mul(value_loss, Tensor(cfg.value_coef))),
                    F.mul(entropy, Tensor(-cfg.entropy_coef)),
                )

                self.optimizer.zero_grad()
                loss.backward()
                grad_norm = clip_grad_norm(self.policy.parameters(), cfg.max_grad_norm)
                self.optimizer.step()

                stats["policy"] += policy_loss.item()
                stats["value"] += value_loss.item()
                stats["entropy"] += entropy.item()
                stats["grad"] += grad_norm
                n_steps += 1

        mean_reward = float(np.mean([b.reward for b in rollouts]))
        return PPOStats(
            policy_loss=stats["policy"] / n_steps,
            value_loss=stats["value"] / n_steps,
            entropy=stats["entropy"] / n_steps,
            mean_reward=mean_reward,
            grad_norm=stats["grad"] / n_steps,
        )
