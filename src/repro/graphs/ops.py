"""Operation vocabulary for computation graphs.

The zoo builders emit nodes tagged with an :class:`OpType`.  Op types matter
in three places: node featurisation for the policy network (one-hot by
category), the hardware simulator's per-op efficiency factors, and human
readable graph dumps.
"""

from __future__ import annotations

import enum


class OpCategory(enum.IntEnum):
    """Coarse op classes used for featurisation and cost perturbation."""

    DENSE_COMPUTE = 0   # matmul / conv style, systolic-array friendly
    ELEMENTWISE = 1     # add, mul, activation functions
    REDUCTION = 2       # softmax, norm statistics, pooling
    DATA_MOVEMENT = 3   # reshape, transpose, concat, slice
    MEMORY = 4          # embedding lookups, parameter reads
    CONTROL = 5         # inputs, constants, outputs


class OpType(enum.IntEnum):
    """Concrete operation types emitted by the model zoo."""

    INPUT = 0
    CONSTANT = 1
    OUTPUT = 2

    MATMUL = 10
    CONV2D = 11
    DEPTHWISE_CONV = 12
    EINSUM = 13

    BIAS_ADD = 20
    ADD = 21
    MUL = 22
    RELU = 23
    GELU = 24
    TANH = 25
    SIGMOID = 26
    SCALE = 27

    SOFTMAX = 30
    LAYER_NORM = 31
    BATCH_NORM = 32
    MAX_POOL = 33
    AVG_POOL = 34
    REDUCE_MEAN = 35
    REDUCE_VAR = 36

    RESHAPE = 40
    TRANSPOSE = 41
    CONCAT = 42
    SLICE = 43
    BROADCAST = 44

    EMBEDDING = 50
    GATHER = 51


_CATEGORY_OF: dict[OpType, OpCategory] = {
    OpType.INPUT: OpCategory.CONTROL,
    OpType.CONSTANT: OpCategory.CONTROL,
    OpType.OUTPUT: OpCategory.CONTROL,
    OpType.MATMUL: OpCategory.DENSE_COMPUTE,
    OpType.CONV2D: OpCategory.DENSE_COMPUTE,
    OpType.DEPTHWISE_CONV: OpCategory.DENSE_COMPUTE,
    OpType.EINSUM: OpCategory.DENSE_COMPUTE,
    OpType.BIAS_ADD: OpCategory.ELEMENTWISE,
    OpType.ADD: OpCategory.ELEMENTWISE,
    OpType.MUL: OpCategory.ELEMENTWISE,
    OpType.RELU: OpCategory.ELEMENTWISE,
    OpType.GELU: OpCategory.ELEMENTWISE,
    OpType.TANH: OpCategory.ELEMENTWISE,
    OpType.SIGMOID: OpCategory.ELEMENTWISE,
    OpType.SCALE: OpCategory.ELEMENTWISE,
    OpType.SOFTMAX: OpCategory.REDUCTION,
    OpType.LAYER_NORM: OpCategory.REDUCTION,
    OpType.BATCH_NORM: OpCategory.REDUCTION,
    OpType.MAX_POOL: OpCategory.REDUCTION,
    OpType.AVG_POOL: OpCategory.REDUCTION,
    OpType.REDUCE_MEAN: OpCategory.REDUCTION,
    OpType.REDUCE_VAR: OpCategory.REDUCTION,
    OpType.RESHAPE: OpCategory.DATA_MOVEMENT,
    OpType.TRANSPOSE: OpCategory.DATA_MOVEMENT,
    OpType.CONCAT: OpCategory.DATA_MOVEMENT,
    OpType.SLICE: OpCategory.DATA_MOVEMENT,
    OpType.BROADCAST: OpCategory.DATA_MOVEMENT,
    OpType.EMBEDDING: OpCategory.MEMORY,
    OpType.GATHER: OpCategory.MEMORY,
}


def category_of(op: "OpType | int") -> OpCategory:
    """Return the :class:`OpCategory` of an op type."""
    return _CATEGORY_OF[OpType(op)]


N_CATEGORIES = len(OpCategory)
