"""Incremental construction of :class:`CompGraph` instances.

The builder is the single mutation point in the IR: zoo generators append
nodes and edges through it and call :meth:`GraphBuilder.build` to freeze the
result into an immutable, validated graph.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.graphs.graph import CompGraph
from repro.graphs.ops import OpType


class GraphBuilder:
    """Accumulates nodes and edges, then freezes them into a ``CompGraph``.

    Example
    -------
    >>> b = GraphBuilder("toy")
    >>> x = b.add_node("x", OpType.INPUT, compute_us=0.0, output_bytes=1024)
    >>> y = b.add_node("y", OpType.RELU, compute_us=2.0, output_bytes=1024,
    ...                inputs=[x])
    >>> g = b.build()
    >>> g.n_nodes, g.n_edges
    (2, 1)
    """

    def __init__(self, name: str = "graph"):
        self.name = name
        self._names: list[str] = []
        self._op_types: list[int] = []
        self._compute_us: list[float] = []
        self._output_bytes: list[float] = []
        self._param_bytes: list[float] = []
        self._src: list[int] = []
        self._dst: list[int] = []
        self._edge_set: set[tuple[int, int]] = set()

    @property
    def n_nodes(self) -> int:
        """Number of nodes added so far."""
        return len(self._names)

    def add_node(
        self,
        name: str,
        op_type: OpType,
        compute_us: float = 0.0,
        output_bytes: float = 0.0,
        param_bytes: float = 0.0,
        inputs: "Sequence[int] | None" = None,
    ) -> int:
        """Append a node and edges from each id in ``inputs``; return its id."""
        if compute_us < 0 or output_bytes < 0 or param_bytes < 0:
            raise ValueError("node costs must be non-negative")
        node_id = len(self._names)
        self._names.append(name)
        self._op_types.append(int(op_type))
        self._compute_us.append(float(compute_us))
        self._output_bytes.append(float(output_bytes))
        self._param_bytes.append(float(param_bytes))
        if inputs is not None:
            for src in inputs:
                self.add_edge(src, node_id)
        return node_id

    def add_edge(self, src: int, dst: int) -> None:
        """Add a dependency edge ``src -> dst`` (duplicates are ignored)."""
        if not (0 <= src < len(self._names)):
            raise ValueError(f"unknown source node {src}")
        if not (0 <= dst < len(self._names)):
            raise ValueError(f"unknown destination node {dst}")
        if src == dst:
            raise ValueError("self loops are not allowed")
        key = (src, dst)
        if key in self._edge_set:
            return
        self._edge_set.add(key)
        self._src.append(src)
        self._dst.append(dst)

    def add_chain(
        self,
        specs: Iterable[tuple],
        inputs: "Sequence[int] | None" = None,
    ) -> list[int]:
        """Add a linear chain of nodes.

        ``specs`` yields ``(name, op_type, compute_us, output_bytes[, param_bytes])``
        tuples; each node consumes the previous one (the first consumes
        ``inputs``).  Returns the list of created node ids.
        """
        ids: list[int] = []
        prev: "Sequence[int] | None" = inputs
        for spec in specs:
            name, op_type, compute_us, output_bytes = spec[:4]
            param_bytes = spec[4] if len(spec) > 4 else 0.0
            nid = self.add_node(
                name,
                op_type,
                compute_us=compute_us,
                output_bytes=output_bytes,
                param_bytes=param_bytes,
                inputs=prev,
            )
            ids.append(nid)
            prev = [nid]
        return ids

    def build(self) -> CompGraph:
        """Freeze the accumulated nodes/edges into an immutable graph."""
        if not self._names:
            raise ValueError("cannot build an empty graph")
        return CompGraph(
            names=tuple(self._names),
            op_types=np.array(self._op_types, dtype=np.int64),
            compute_us=np.array(self._compute_us, dtype=np.float64),
            output_bytes=np.array(self._output_bytes, dtype=np.float64),
            param_bytes=np.array(self._param_bytes, dtype=np.float64),
            src=np.array(self._src, dtype=np.int64),
            dst=np.array(self._dst, dtype=np.int64),
            name=self.name,
        )
