"""Convolutional network graph families.

Three families cover the structural variety of the paper's CV workloads:
plain VGG-style stacks, ResNet-style residual stages, and Inception-style
multi-branch blocks.  All builders track spatial dimensions and channel
counts so compute/memory costs follow real convolution arithmetic.
"""

from __future__ import annotations

from repro.graphs.builders import GraphBuilder
from repro.graphs.graph import CompGraph
from repro.graphs.ops import OpType
from repro.graphs.zoo.common import tensor_bytes, us_from_bytes, us_from_flops


def _conv_block(
    b: GraphBuilder,
    prefix: str,
    inp: int,
    hw: int,
    c_in: int,
    c_out: int,
    kernel: int = 3,
    stride: int = 1,
    with_bn: bool = True,
    with_relu: bool = True,
) -> tuple[int, int]:
    """Append conv [+ batchnorm] [+ relu]; return (last node id, new hw)."""
    out_hw = max(1, hw // stride)
    flops = 2.0 * out_hw * out_hw * kernel * kernel * c_in * c_out
    out_bytes = tensor_bytes(out_hw, out_hw, c_out)
    params = tensor_bytes(kernel, kernel, c_in, c_out)
    node = b.add_node(
        f"{prefix}/conv{kernel}x{kernel}",
        OpType.CONV2D,
        compute_us=us_from_flops(flops),
        output_bytes=out_bytes,
        param_bytes=params,
        inputs=[inp],
    )
    if with_bn:
        node = b.add_node(
            f"{prefix}/bn",
            OpType.BATCH_NORM,
            compute_us=us_from_bytes(out_bytes),
            output_bytes=out_bytes,
            param_bytes=tensor_bytes(c_out, 2),
            inputs=[node],
        )
    if with_relu:
        node = b.add_node(
            f"{prefix}/relu",
            OpType.RELU,
            compute_us=us_from_bytes(out_bytes),
            output_bytes=out_bytes,
            inputs=[node],
        )
    return node, out_hw


def _classifier_head(b: GraphBuilder, inp: int, hw: int, channels: int, classes: int) -> int:
    """Global average pool + dense classifier + softmax."""
    pooled_bytes = tensor_bytes(channels)
    pool = b.add_node(
        "head/avg_pool",
        OpType.AVG_POOL,
        compute_us=us_from_bytes(tensor_bytes(hw, hw, channels)),
        output_bytes=pooled_bytes,
        inputs=[inp],
    )
    fc = b.add_node(
        "head/fc",
        OpType.MATMUL,
        compute_us=us_from_flops(2.0 * channels * classes),
        output_bytes=tensor_bytes(classes),
        param_bytes=tensor_bytes(channels, classes),
        inputs=[pool],
    )
    sm = b.add_node(
        "head/softmax",
        OpType.SOFTMAX,
        compute_us=us_from_bytes(tensor_bytes(classes)),
        output_bytes=tensor_bytes(classes),
        inputs=[fc],
    )
    return b.add_node("head/output", OpType.OUTPUT, output_bytes=tensor_bytes(classes), inputs=[sm])


def build_cnn(
    depth: int = 8,
    base_channels: int = 32,
    image_hw: int = 64,
    classes: int = 100,
    name: str = "cnn",
) -> CompGraph:
    """Plain VGG-style CNN: ``depth`` conv blocks with periodic downsampling.

    Parameters
    ----------
    depth:
        Number of conv/bn/relu blocks (>= 1).
    base_channels:
        Channels of the first stage; doubled at each downsampling.
    image_hw:
        Input spatial resolution (square).
    classes:
        Output classes of the classifier head.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    b = GraphBuilder(name)
    node = b.add_node("input", OpType.INPUT, output_bytes=tensor_bytes(image_hw, image_hw, 3))
    hw, c_in = image_hw, 3
    channels = base_channels
    for i in range(depth):
        stride = 2 if (i % 2 == 1 and hw > 4) else 1
        node, hw = _conv_block(b, f"block{i}", node, hw, c_in, channels, stride=stride)
        c_in = channels
        if stride == 2:
            channels = min(channels * 2, 512)
    _classifier_head(b, node, hw, c_in, classes)
    return b.build()


def build_residual_cnn(
    stages: int = 3,
    blocks_per_stage: int = 2,
    base_channels: int = 32,
    image_hw: int = 64,
    classes: int = 100,
    name: str = "resnet",
) -> CompGraph:
    """ResNet-style CNN: stages of residual blocks with projection shortcuts."""
    if stages < 1 or blocks_per_stage < 1:
        raise ValueError("stages and blocks_per_stage must be >= 1")
    b = GraphBuilder(name)
    node = b.add_node("input", OpType.INPUT, output_bytes=tensor_bytes(image_hw, image_hw, 3))
    node, hw = _conv_block(b, "stem", node, image_hw, 3, base_channels, kernel=7, stride=2)
    c_in = base_channels
    for s in range(stages):
        c_out = base_channels * (2**s)
        for k in range(blocks_per_stage):
            stride = 2 if (k == 0 and s > 0 and hw > 4) else 1
            prefix = f"stage{s}/block{k}"
            shortcut = node
            branch, new_hw = _conv_block(b, f"{prefix}/a", node, hw, c_in, c_out, stride=stride)
            branch, _ = _conv_block(b, f"{prefix}/b", branch, new_hw, c_out, c_out, with_relu=False)
            if stride != 1 or c_in != c_out:
                shortcut, _ = _conv_block(
                    b, f"{prefix}/proj", shortcut, hw, c_in, c_out,
                    kernel=1, stride=stride, with_relu=False,
                )
            out_bytes = tensor_bytes(new_hw, new_hw, c_out)
            add = b.add_node(
                f"{prefix}/add",
                OpType.ADD,
                compute_us=us_from_bytes(out_bytes),
                output_bytes=out_bytes,
                inputs=[branch, shortcut],
            )
            node = b.add_node(
                f"{prefix}/relu",
                OpType.RELU,
                compute_us=us_from_bytes(out_bytes),
                output_bytes=out_bytes,
                inputs=[add],
            )
            hw, c_in = new_hw, c_out
    _classifier_head(b, node, hw, c_in, classes)
    return b.build()


def build_inception_cnn(
    blocks: int = 3,
    branches: int = 3,
    base_channels: int = 32,
    image_hw: int = 64,
    classes: int = 100,
    name: str = "inception",
) -> CompGraph:
    """Inception-style CNN: blocks of parallel conv branches concatenated."""
    if blocks < 1 or branches < 1:
        raise ValueError("blocks and branches must be >= 1")
    b = GraphBuilder(name)
    node = b.add_node("input", OpType.INPUT, output_bytes=tensor_bytes(image_hw, image_hw, 3))
    node, hw = _conv_block(b, "stem", node, image_hw, 3, base_channels, stride=2)
    c_in = base_channels
    for blk in range(blocks):
        branch_channels = max(8, c_in // branches)
        outs = []
        for br in range(branches):
            kernel = (1, 3, 5, 3)[br % 4]
            out, _ = _conv_block(
                b, f"block{blk}/branch{br}", node, hw, c_in, branch_channels, kernel=kernel
            )
            outs.append(out)
        c_out = branch_channels * branches
        cat_bytes = tensor_bytes(hw, hw, c_out)
        node = b.add_node(
            f"block{blk}/concat",
            OpType.CONCAT,
            compute_us=us_from_bytes(cat_bytes),
            output_bytes=cat_bytes,
            inputs=outs,
        )
        if blk % 2 == 1 and hw > 4:
            hw = hw // 2
            pool_bytes = tensor_bytes(hw, hw, c_out)
            node = b.add_node(
                f"block{blk}/pool",
                OpType.MAX_POOL,
                compute_us=us_from_bytes(pool_bytes),
                output_bytes=pool_bytes,
                inputs=[node],
            )
        c_in = c_out
    _classifier_head(b, node, hw, c_in, classes)
    return b.build()
