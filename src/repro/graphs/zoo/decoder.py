"""GPT-style decoder-only transformer graphs.

Structurally a sibling of :mod:`repro.graphs.zoo.transformer` with a causal
attention pattern and no pooler — useful for testing policy transfer from
encoder-style graphs to a related-but-different architecture family.
"""

from __future__ import annotations

from repro.graphs.builders import GraphBuilder
from repro.graphs.graph import CompGraph
from repro.graphs.ops import OpType
from repro.graphs.zoo.common import tensor_bytes, us_from_bytes, us_from_flops
from repro.graphs.zoo.transformer import _layer_norm


def build_decoder(
    layers: int = 6,
    hidden: int = 512,
    heads: int = 8,
    seq: int = 256,
    vocab: "int | None" = None,
    name: str = "decoder",
) -> CompGraph:
    """Decoder-only (GPT-style) transformer at op granularity.

    Parameters
    ----------
    layers, hidden, heads, seq:
        Standard decoder hyper-parameters; FFN width is ``4 * hidden``.
    vocab:
        Vocabulary size; defaults to ``30 * hidden`` (GPT-2-like ratio).
    """
    if layers < 1 or heads < 1:
        raise ValueError("layers and heads must be >= 1")
    if hidden % heads != 0:
        raise ValueError("hidden must be divisible by heads")
    vocab = 30 * hidden if vocab is None else vocab
    d_head = hidden // heads
    intermediate = 4 * hidden
    hidden_bytes = tensor_bytes(seq, hidden)
    head_bytes = tensor_bytes(seq, d_head)
    # causal attention scores: lower-triangular half of the matrix
    score_bytes = tensor_bytes(seq, seq) / 2.0

    b = GraphBuilder(name)
    input_ids = b.add_node("input_ids", OpType.INPUT, output_bytes=tensor_bytes(seq))
    b.add_node("causal_mask", OpType.CONSTANT, output_bytes=tensor_bytes(seq))
    tok = b.add_node(
        "embeddings/token", OpType.EMBEDDING,
        compute_us=us_from_bytes(hidden_bytes), output_bytes=hidden_bytes,
        param_bytes=tensor_bytes(vocab, hidden), inputs=[input_ids],
    )
    pos = b.add_node(
        "embeddings/position", OpType.EMBEDDING,
        compute_us=us_from_bytes(hidden_bytes), output_bytes=hidden_bytes,
        param_bytes=tensor_bytes(seq, hidden),
    )
    node = b.add_node(
        "embeddings/add", OpType.ADD,
        compute_us=us_from_bytes(hidden_bytes), output_bytes=hidden_bytes,
        inputs=[tok, pos],
    )

    for layer in range(layers):
        p = f"layer{layer}"
        # pre-norm architecture
        normed = _layer_norm(b, f"{p}/ln1", node, hidden_bytes, hidden)
        qkv: dict[str, int] = {}
        for kind in ("q", "k", "v"):
            mm = b.add_node(
                f"{p}/attn/{kind}_matmul", OpType.MATMUL,
                compute_us=us_from_flops(2.0 * seq * hidden * hidden),
                output_bytes=hidden_bytes, param_bytes=tensor_bytes(hidden, hidden),
                inputs=[normed],
            )
            qkv[kind] = b.add_node(
                f"{p}/attn/{kind}_reshape", OpType.RESHAPE,
                compute_us=us_from_bytes(hidden_bytes) * 0.25,
                output_bytes=hidden_bytes, inputs=[mm],
            )
        heads_out = []
        for h in range(heads):
            hp = f"{p}/attn/head{h}"
            scores = b.add_node(
                f"{hp}/causal_scores", OpType.EINSUM,
                compute_us=us_from_flops(1.0 * seq * seq * d_head),  # causal half
                output_bytes=score_bytes, inputs=[qkv["q"], qkv["k"]],
            )
            softmax = b.add_node(
                f"{hp}/softmax", OpType.SOFTMAX,
                compute_us=us_from_bytes(score_bytes), output_bytes=score_bytes,
                inputs=[scores],
            )
            heads_out.append(
                b.add_node(
                    f"{hp}/context", OpType.EINSUM,
                    compute_us=us_from_flops(1.0 * seq * seq * d_head),
                    output_bytes=head_bytes, inputs=[softmax, qkv["v"]],
                )
            )
        concat = b.add_node(
            f"{p}/attn/concat", OpType.CONCAT,
            compute_us=us_from_bytes(hidden_bytes) * 0.25,
            output_bytes=hidden_bytes, inputs=heads_out,
        )
        proj = b.add_node(
            f"{p}/attn/proj", OpType.MATMUL,
            compute_us=us_from_flops(2.0 * seq * hidden * hidden),
            output_bytes=hidden_bytes, param_bytes=tensor_bytes(hidden, hidden),
            inputs=[concat],
        )
        node = b.add_node(
            f"{p}/attn/residual", OpType.ADD,
            compute_us=us_from_bytes(hidden_bytes), output_bytes=hidden_bytes,
            inputs=[proj, node],
        )

        normed2 = _layer_norm(b, f"{p}/ln2", node, hidden_bytes, hidden)
        inter_bytes = tensor_bytes(seq, intermediate)
        inter = b.add_node(
            f"{p}/ffn/up", OpType.MATMUL,
            compute_us=us_from_flops(2.0 * seq * hidden * intermediate),
            output_bytes=inter_bytes, param_bytes=tensor_bytes(hidden, intermediate),
            inputs=[normed2],
        )
        gelu = b.add_node(
            f"{p}/ffn/gelu", OpType.GELU,
            compute_us=us_from_bytes(inter_bytes), output_bytes=inter_bytes,
            inputs=[inter],
        )
        down = b.add_node(
            f"{p}/ffn/down", OpType.MATMUL,
            compute_us=us_from_flops(2.0 * seq * hidden * intermediate),
            output_bytes=hidden_bytes, param_bytes=tensor_bytes(intermediate, hidden),
            inputs=[gelu],
        )
        node = b.add_node(
            f"{p}/ffn/residual", OpType.ADD,
            compute_us=us_from_bytes(hidden_bytes), output_bytes=hidden_bytes,
            inputs=[down, node],
        )

    node = _layer_norm(b, "final_ln", node, hidden_bytes, hidden)
    logits_bytes = tensor_bytes(seq, vocab)
    logits = b.add_node(
        "lm_head", OpType.MATMUL,
        compute_us=us_from_flops(2.0 * seq * hidden * vocab),
        output_bytes=logits_bytes, param_bytes=tensor_bytes(hidden, vocab),
        inputs=[node],
    )
    b.add_node("output", OpType.OUTPUT, output_bytes=logits_bytes, inputs=[logits])
    return b.build()
