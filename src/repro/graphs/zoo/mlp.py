"""Multi-layer-perceptron graph families.

MLPs give the dataset graphs with long unbranched chains, complementing the
wide/branchy CNNs and the stateful RNNs.
"""

from __future__ import annotations

from typing import Sequence

from repro.graphs.builders import GraphBuilder
from repro.graphs.graph import CompGraph
from repro.graphs.ops import OpType
from repro.graphs.zoo.common import tensor_bytes, us_from_bytes, us_from_flops


def _dense_block(
    b: GraphBuilder,
    prefix: str,
    inp: int,
    d_in: int,
    d_out: int,
    activation: "OpType | None" = OpType.RELU,
) -> int:
    """matmul + bias [+ activation]; returns the last node id."""
    out_bytes = tensor_bytes(d_out)
    mm = b.add_node(
        f"{prefix}/matmul",
        OpType.MATMUL,
        compute_us=us_from_flops(2.0 * d_in * d_out),
        output_bytes=out_bytes,
        param_bytes=tensor_bytes(d_in, d_out),
        inputs=[inp],
    )
    node = b.add_node(
        f"{prefix}/bias",
        OpType.BIAS_ADD,
        compute_us=us_from_bytes(out_bytes),
        output_bytes=out_bytes,
        param_bytes=tensor_bytes(d_out),
        inputs=[mm],
    )
    if activation is not None:
        node = b.add_node(
            f"{prefix}/act",
            activation,
            compute_us=us_from_bytes(out_bytes),
            output_bytes=out_bytes,
            inputs=[node],
        )
    return node


def build_mlp(
    hidden_dims: "Sequence[int]" = (512, 512, 256),
    input_dim: int = 784,
    classes: int = 10,
    name: str = "mlp",
) -> CompGraph:
    """Plain feed-forward classifier with the given hidden widths."""
    if not hidden_dims:
        raise ValueError("hidden_dims must be non-empty")
    b = GraphBuilder(name)
    node = b.add_node("input", OpType.INPUT, output_bytes=tensor_bytes(input_dim))
    d_in = input_dim
    for i, d_out in enumerate(hidden_dims):
        node = _dense_block(b, f"layer{i}", node, d_in, d_out)
        d_in = d_out
    logits = _dense_block(b, "head", node, d_in, classes, activation=None)
    sm = b.add_node(
        "head/softmax",
        OpType.SOFTMAX,
        compute_us=us_from_bytes(tensor_bytes(classes)),
        output_bytes=tensor_bytes(classes),
        inputs=[logits],
    )
    b.add_node("head/output", OpType.OUTPUT, output_bytes=tensor_bytes(classes), inputs=[sm])
    return b.build()


def build_autoencoder(
    bottleneck: int = 32,
    input_dim: int = 784,
    depth: int = 3,
    name: str = "autoencoder",
) -> CompGraph:
    """Symmetric encoder/decoder MLP (bottleneck autoencoder)."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    b = GraphBuilder(name)
    inp = b.add_node("input", OpType.INPUT, output_bytes=tensor_bytes(input_dim))
    dims: list[int] = []
    d = input_dim
    for _ in range(depth):
        d = max(bottleneck, d // 2)
        dims.append(d)
    node = inp
    d_in = input_dim
    for i, d_out in enumerate(dims):
        node = _dense_block(b, f"enc{i}", node, d_in, d_out)
        d_in = d_out
    for i, d_out in enumerate(reversed(dims[:-1])):
        node = _dense_block(b, f"dec{i}", node, d_in, d_out)
        d_in = d_out
    recon = _dense_block(b, "dec_out", node, d_in, input_dim, activation=OpType.SIGMOID)
    out_bytes = tensor_bytes(input_dim)
    b.add_node(
        "head/output",
        OpType.OUTPUT,
        output_bytes=out_bytes,
        inputs=[recon],
    )
    return b.build()
