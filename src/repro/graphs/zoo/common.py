"""Shared cost arithmetic for zoo builders.

Compute latencies are canonicalised to microseconds on a single chiplet with
``REFERENCE_TOPS`` peak throughput; the hardware simulator perturbs these per
chip and per op category, so the graph itself stays platform independent.
"""

from __future__ import annotations

REFERENCE_TOPS = 4.0     # peak dense-compute throughput of one chiplet
BYTES_PER_ELEMENT = 2.0  # bf16 activations and parameters
ELEMENTWISE_GBPS = 400.0  # effective on-chip bandwidth for non-matmul ops


def us_from_flops(flops: float, efficiency: float = 0.5) -> float:
    """Latency in microseconds for a dense op of ``flops`` floating ops."""
    if flops < 0:
        raise ValueError("flops must be non-negative")
    return flops / (REFERENCE_TOPS * 1e12 * efficiency) * 1e6


def us_from_bytes(nbytes: float) -> float:
    """Latency in microseconds for a bandwidth-bound op touching ``nbytes``."""
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    return nbytes / (ELEMENTWISE_GBPS * 1e9) * 1e6


def tensor_bytes(*dims: int) -> float:
    """Byte size of a dense tensor with the given dimensions."""
    size = 1.0
    for d in dims:
        if d <= 0:
            raise ValueError("tensor dimensions must be positive")
        size *= d
    return size * BYTES_PER_ELEMENT
