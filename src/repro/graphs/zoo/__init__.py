"""Model zoo: parametric graph families and the pre-training dataset.

The zoo mirrors the paper's workload inventory:

* 87 "production" CV / NLP graphs (CNN and RNN families, tens to hundreds of
  nodes, no attention) split 66 / 5 / 16 into train / validation / test —
  see :func:`repro.graphs.zoo.dataset.build_dataset`.
* BERT-Large at op granularity (2138 nodes, ~340M parameters) — see
  :func:`repro.graphs.zoo.transformer.build_bert`.
"""

from repro.graphs.zoo.cnn import build_cnn, build_inception_cnn, build_residual_cnn
from repro.graphs.zoo.decoder import build_decoder
from repro.graphs.zoo.dataset import DatasetSplit, build_dataset
from repro.graphs.zoo.mlp import build_autoencoder, build_mlp
from repro.graphs.zoo.rnn import build_gru, build_lstm
from repro.graphs.zoo.transformer import build_bert
from repro.graphs.zoo.unet import build_mobilenet, build_unet

__all__ = [
    "build_cnn",
    "build_residual_cnn",
    "build_inception_cnn",
    "build_lstm",
    "build_gru",
    "build_mlp",
    "build_autoencoder",
    "build_bert",
    "build_decoder",
    "build_unet",
    "build_mobilenet",
    "build_dataset",
    "DatasetSplit",
]
