"""Op-level transformer (BERT) graph builder.

The paper evaluates on BERT with **2138 nodes and ~340M parameters (600 MB)**.
This builder lowers BERT-Large (24 layers, hidden 1024, 16 heads, sequence
512) to op granularity: per-head attention ops, fine-grained layer norms, and
the data-movement (reshape/transpose) staging ops that real XLA-level graphs
contain in large numbers.  ``target_nodes`` controls how many staging ops are
interleaved so the default graph lands on exactly 2138 nodes.
"""

from __future__ import annotations

from repro.graphs.builders import GraphBuilder
from repro.graphs.graph import CompGraph
from repro.graphs.ops import OpType
from repro.graphs.zoo.common import tensor_bytes, us_from_bytes, us_from_flops

#: ops per layer excluding staging: qkv (9) + 3*heads + concat/proj/bias/residual (4)
#: + attention layernorm (5) + ffn (6) + ffn layernorm (5)
_LAYER_BASE_OPS = 18 + 11
#: fixed ops outside the transformer stack with an unsharded embedding table:
#: embeddings (13) + pooler (4) + classifier (3)
_PERIPHERY_OPS = 20


def base_node_count(layers: int, heads: int, emb_shards: int = 8) -> int:
    """Node count of :func:`build_transformer` with no staging ops.

    Sharding the word-embedding table into ``emb_shards`` pieces replaces the
    single embedding node with ``emb_shards`` lookups plus ``emb_shards - 1``
    combining adds.
    """
    periphery = _PERIPHERY_OPS + (2 * emb_shards - 2 if emb_shards > 1 else 0)
    return layers * (_LAYER_BASE_OPS + 3 * heads) + periphery


def _layer_norm(b: GraphBuilder, prefix: str, inp: int, hidden_bytes: float, hidden: int) -> int:
    """Fine-grained layer norm: mean, variance, normalise, scale, shift."""
    stat_bytes = tensor_bytes(max(1, int(hidden_bytes // max(hidden, 1) // 2)))
    mean = b.add_node(
        f"{prefix}/mean", OpType.REDUCE_MEAN,
        compute_us=us_from_bytes(hidden_bytes), output_bytes=stat_bytes, inputs=[inp],
    )
    var = b.add_node(
        f"{prefix}/var", OpType.REDUCE_VAR,
        compute_us=us_from_bytes(hidden_bytes), output_bytes=stat_bytes, inputs=[inp],
    )
    norm = b.add_node(
        f"{prefix}/normalize", OpType.SCALE,
        compute_us=us_from_bytes(hidden_bytes), output_bytes=hidden_bytes,
        inputs=[inp, mean, var],
    )
    gamma = b.add_node(
        f"{prefix}/gamma", OpType.MUL,
        compute_us=us_from_bytes(hidden_bytes), output_bytes=hidden_bytes,
        param_bytes=tensor_bytes(hidden), inputs=[norm],
    )
    return b.add_node(
        f"{prefix}/beta", OpType.ADD,
        compute_us=us_from_bytes(hidden_bytes), output_bytes=hidden_bytes,
        param_bytes=tensor_bytes(hidden), inputs=[gamma],
    )


def _staging(b: GraphBuilder, prefix: str, inp: int, nbytes: float, count: int) -> int:
    """Append ``count`` data-movement (reshape) ops in a chain."""
    node = inp
    for i in range(count):
        node = b.add_node(
            f"{prefix}/stage{i}", OpType.RESHAPE,
            compute_us=us_from_bytes(nbytes) * 0.25, output_bytes=nbytes, inputs=[node],
        )
    return node


def build_transformer(
    layers: int = 24,
    hidden: int = 1024,
    heads: int = 16,
    seq: int = 512,
    intermediate: "int | None" = None,
    vocab: int = 30522,
    classes: int = 2,
    target_nodes: "int | None" = None,
    emb_shards: int = 8,
    name: str = "transformer",
) -> CompGraph:
    """Build an op-level encoder-only transformer graph.

    Parameters
    ----------
    layers, hidden, heads, seq, intermediate, vocab:
        Standard transformer hyper-parameters; ``intermediate`` defaults to
        ``4 * hidden``.
    classes:
        Output classes of the classification head.
    target_nodes:
        If given, interleave data-movement staging ops so the final graph has
        exactly this many nodes (must be >= the base op count).
    emb_shards:
        The word-embedding table is vocabulary-sharded into this many lookup
        nodes so no single node's parameters exceed a chiplet's SRAM (the
        production compiler shards large tables the same way).
    """
    if layers < 1 or heads < 1:
        raise ValueError("layers and heads must be >= 1")
    if hidden % heads != 0:
        raise ValueError("hidden must be divisible by heads")
    if emb_shards < 1:
        raise ValueError("emb_shards must be >= 1")
    intermediate = 4 * hidden if intermediate is None else intermediate
    base = base_node_count(layers, heads, emb_shards)
    if target_nodes is None:
        extra_total = 0
    else:
        if target_nodes < base:
            raise ValueError(f"target_nodes must be >= {base} for this configuration")
        extra_total = target_nodes - base
    extra_per_layer = extra_total // layers if layers else 0
    extra_remainder = extra_total - extra_per_layer * layers

    d_head = hidden // heads
    hidden_bytes = tensor_bytes(seq, hidden)
    head_bytes = tensor_bytes(seq, d_head)
    score_bytes = tensor_bytes(seq, seq)

    b = GraphBuilder(name)

    # ---------------- embeddings ----------------
    input_ids = b.add_node("input_ids", OpType.INPUT, output_bytes=tensor_bytes(seq))
    type_ids = b.add_node("token_type_ids", OpType.INPUT, output_bytes=tensor_bytes(seq))
    # The attention mask is a small constant, replicable on every chip.
    b.add_node("attention_mask", OpType.CONSTANT, output_bytes=tensor_bytes(seq))
    # Vocabulary-sharded word embedding: each shard looks up its slice of the
    # table and contributes a partial result; a balanced chain of adds merges
    # the partials (rows outside a shard's range contribute zeros).
    shard_vocab = (vocab + emb_shards - 1) // emb_shards
    shard_nodes = [
        b.add_node(
            f"embeddings/word_shard{s}", OpType.EMBEDDING,
            compute_us=us_from_bytes(hidden_bytes) / emb_shards,
            output_bytes=hidden_bytes,
            param_bytes=tensor_bytes(shard_vocab, hidden), inputs=[input_ids],
        )
        for s in range(emb_shards)
    ]
    word_emb = shard_nodes[0]
    for s, shard in enumerate(shard_nodes[1:]):
        word_emb = b.add_node(
            f"embeddings/word_combine{s}", OpType.ADD,
            compute_us=us_from_bytes(hidden_bytes), output_bytes=hidden_bytes,
            inputs=[word_emb, shard],
        )
    pos_emb = b.add_node(
        "embeddings/position", OpType.EMBEDDING,
        compute_us=us_from_bytes(hidden_bytes), output_bytes=hidden_bytes,
        param_bytes=tensor_bytes(seq, hidden),
    )
    type_emb = b.add_node(
        "embeddings/type", OpType.EMBEDDING,
        compute_us=us_from_bytes(hidden_bytes), output_bytes=hidden_bytes,
        param_bytes=tensor_bytes(2, hidden), inputs=[type_ids],
    )
    add1 = b.add_node(
        "embeddings/add_pos", OpType.ADD,
        compute_us=us_from_bytes(hidden_bytes), output_bytes=hidden_bytes,
        inputs=[word_emb, pos_emb],
    )
    add2 = b.add_node(
        "embeddings/add_type", OpType.ADD,
        compute_us=us_from_bytes(hidden_bytes), output_bytes=hidden_bytes,
        inputs=[add1, type_emb],
    )
    node = _layer_norm(b, "embeddings/ln", add2, hidden_bytes, hidden)

    # ---------------- transformer layers ----------------
    for layer in range(layers):
        extra = extra_per_layer + (1 if layer < extra_remainder else 0)
        p = f"layer{layer}"
        residual = node

        heads_out: list[int] = []
        qkv: dict[str, int] = {}
        for kind in ("q", "k", "v"):
            mm = b.add_node(
                f"{p}/attn/{kind}_matmul", OpType.MATMUL,
                compute_us=us_from_flops(2.0 * seq * hidden * hidden),
                output_bytes=hidden_bytes,
                param_bytes=tensor_bytes(hidden, hidden), inputs=[node],
            )
            bias = b.add_node(
                f"{p}/attn/{kind}_bias", OpType.BIAS_ADD,
                compute_us=us_from_bytes(hidden_bytes), output_bytes=hidden_bytes,
                param_bytes=tensor_bytes(hidden), inputs=[mm],
            )
            qkv[kind] = b.add_node(
                f"{p}/attn/{kind}_reshape", OpType.RESHAPE,
                compute_us=us_from_bytes(hidden_bytes) * 0.25,
                output_bytes=hidden_bytes, inputs=[bias],
            )
        for h in range(heads):
            hp = f"{p}/attn/head{h}"
            scores = b.add_node(
                f"{hp}/scores", OpType.EINSUM,
                compute_us=us_from_flops(2.0 * seq * seq * d_head),
                output_bytes=score_bytes, inputs=[qkv["q"], qkv["k"]],
            )
            softmax = b.add_node(
                f"{hp}/softmax", OpType.SOFTMAX,
                compute_us=us_from_bytes(score_bytes),
                output_bytes=score_bytes, inputs=[scores],
            )
            context = b.add_node(
                f"{hp}/context", OpType.EINSUM,
                compute_us=us_from_flops(2.0 * seq * seq * d_head),
                output_bytes=head_bytes, inputs=[softmax, qkv["v"]],
            )
            heads_out.append(context)
        concat = b.add_node(
            f"{p}/attn/concat", OpType.CONCAT,
            compute_us=us_from_bytes(hidden_bytes) * 0.25,
            output_bytes=hidden_bytes, inputs=heads_out,
        )
        proj = b.add_node(
            f"{p}/attn/proj", OpType.MATMUL,
            compute_us=us_from_flops(2.0 * seq * hidden * hidden),
            output_bytes=hidden_bytes,
            param_bytes=tensor_bytes(hidden, hidden), inputs=[concat],
        )
        proj_bias = b.add_node(
            f"{p}/attn/proj_bias", OpType.BIAS_ADD,
            compute_us=us_from_bytes(hidden_bytes), output_bytes=hidden_bytes,
            param_bytes=tensor_bytes(hidden), inputs=[proj],
        )
        attn_res = b.add_node(
            f"{p}/attn/residual", OpType.ADD,
            compute_us=us_from_bytes(hidden_bytes), output_bytes=hidden_bytes,
            inputs=[proj_bias, residual],
        )
        node = _layer_norm(b, f"{p}/attn/ln", attn_res, hidden_bytes, hidden)
        # First half of this layer's staging ops after attention.
        node = _staging(b, f"{p}/attn", node, hidden_bytes, extra // 2)

        ffn_residual = node
        inter_bytes = tensor_bytes(seq, intermediate)
        inter = b.add_node(
            f"{p}/ffn/intermediate", OpType.MATMUL,
            compute_us=us_from_flops(2.0 * seq * hidden * intermediate),
            output_bytes=inter_bytes,
            param_bytes=tensor_bytes(hidden, intermediate), inputs=[node],
        )
        inter_bias = b.add_node(
            f"{p}/ffn/intermediate_bias", OpType.BIAS_ADD,
            compute_us=us_from_bytes(inter_bytes), output_bytes=inter_bytes,
            param_bytes=tensor_bytes(intermediate), inputs=[inter],
        )
        gelu = b.add_node(
            f"{p}/ffn/gelu", OpType.GELU,
            compute_us=us_from_bytes(inter_bytes), output_bytes=inter_bytes,
            inputs=[inter_bias],
        )
        out = b.add_node(
            f"{p}/ffn/output", OpType.MATMUL,
            compute_us=us_from_flops(2.0 * seq * hidden * intermediate),
            output_bytes=hidden_bytes,
            param_bytes=tensor_bytes(intermediate, hidden), inputs=[gelu],
        )
        out_bias = b.add_node(
            f"{p}/ffn/output_bias", OpType.BIAS_ADD,
            compute_us=us_from_bytes(hidden_bytes), output_bytes=hidden_bytes,
            param_bytes=tensor_bytes(hidden), inputs=[out],
        )
        ffn_res = b.add_node(
            f"{p}/ffn/residual", OpType.ADD,
            compute_us=us_from_bytes(hidden_bytes), output_bytes=hidden_bytes,
            inputs=[out_bias, ffn_residual],
        )
        node = _layer_norm(b, f"{p}/ffn/ln", ffn_res, hidden_bytes, hidden)
        # Second half of this layer's staging ops after the FFN.
        node = _staging(b, f"{p}/ffn", node, hidden_bytes, extra - extra // 2)

    # ---------------- pooler + classifier ----------------
    cls_bytes = tensor_bytes(hidden)
    cls_slice = b.add_node(
        "pooler/cls_slice", OpType.SLICE,
        compute_us=us_from_bytes(cls_bytes), output_bytes=cls_bytes, inputs=[node],
    )
    pool_mm = b.add_node(
        "pooler/dense", OpType.MATMUL,
        compute_us=us_from_flops(2.0 * hidden * hidden),
        output_bytes=cls_bytes, param_bytes=tensor_bytes(hidden, hidden),
        inputs=[cls_slice],
    )
    pool_bias = b.add_node(
        "pooler/bias", OpType.BIAS_ADD,
        compute_us=us_from_bytes(cls_bytes), output_bytes=cls_bytes,
        param_bytes=tensor_bytes(hidden), inputs=[pool_mm],
    )
    pool_tanh = b.add_node(
        "pooler/tanh", OpType.TANH,
        compute_us=us_from_bytes(cls_bytes), output_bytes=cls_bytes, inputs=[pool_bias],
    )
    logits = b.add_node(
        "classifier/logits", OpType.MATMUL,
        compute_us=us_from_flops(2.0 * hidden * classes),
        output_bytes=tensor_bytes(classes), param_bytes=tensor_bytes(hidden, classes),
        inputs=[pool_tanh],
    )
    sm = b.add_node(
        "classifier/softmax", OpType.SOFTMAX,
        compute_us=us_from_bytes(tensor_bytes(classes)),
        output_bytes=tensor_bytes(classes), inputs=[logits],
    )
    b.add_node(
        "classifier/output", OpType.OUTPUT,
        output_bytes=tensor_bytes(classes), inputs=[sm],
    )
    return b.build()


def build_bert(
    layers: int = 24,
    hidden: int = 1024,
    heads: int = 16,
    seq: int = 512,
    target_nodes: "int | None" = 2138,
    name: str = "bert_large",
) -> CompGraph:
    """BERT-Large at op granularity, 2138 nodes by default (paper Section 5.1).

    The defaults reproduce the paper's workload: 24 layers, hidden 1024,
    16 heads, ~340M parameters.  Pass smaller ``layers``/``hidden`` (and
    ``target_nodes=None``) for a scaled-down variant in fast tests.
    """
    return build_transformer(
        layers=layers, hidden=hidden, heads=heads, seq=seq,
        target_nodes=target_nodes, name=name,
    )
