"""UNet-style encoder/decoder graphs with long-range skip connections.

UNets are the stress test for MCM partitioning: every encoder stage feeds
the matching decoder stage directly, so skip edges span half the graph.
Under the triangle constraint this forces encoder stage ``k`` and decoder
stage ``depth - k`` onto nearby chips — exactly the kind of structure a
contiguous heuristic handles poorly and a search method must discover.
"""

from __future__ import annotations

from repro.graphs.builders import GraphBuilder
from repro.graphs.graph import CompGraph
from repro.graphs.ops import OpType
from repro.graphs.zoo.common import tensor_bytes, us_from_bytes, us_from_flops


def _conv(b, prefix, inp, hw, c_in, c_out, kernel=3):
    flops = 2.0 * hw * hw * kernel * kernel * c_in * c_out
    out_bytes = tensor_bytes(hw, hw, c_out)
    conv = b.add_node(
        f"{prefix}/conv", OpType.CONV2D,
        compute_us=us_from_flops(flops), output_bytes=out_bytes,
        param_bytes=tensor_bytes(kernel, kernel, c_in, c_out), inputs=[inp],
    )
    return b.add_node(
        f"{prefix}/relu", OpType.RELU,
        compute_us=us_from_bytes(out_bytes), output_bytes=out_bytes, inputs=[conv],
    )


def build_unet(
    depth: int = 3,
    base_channels: int = 32,
    image_hw: int = 64,
    name: str = "unet",
) -> CompGraph:
    """Encoder/decoder CNN with skip connections across the bottleneck.

    Parameters
    ----------
    depth:
        Number of down/up-sampling stages (>= 1).
    base_channels:
        Channels of the first stage, doubled per downsampling.
    image_hw:
        Input spatial resolution (must survive ``depth`` halvings).
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if image_hw < 2**depth:
        raise ValueError("image_hw too small for this depth")
    b = GraphBuilder(name)
    node = b.add_node("input", OpType.INPUT, output_bytes=tensor_bytes(image_hw, image_hw, 3))

    skips: list[tuple[int, int, int]] = []  # (node, hw, channels)
    hw, c_in = image_hw, 3
    channels = base_channels
    # encoder
    for d in range(depth):
        node = _conv(b, f"enc{d}", node, hw, c_in, channels)
        skips.append((node, hw, channels))
        hw //= 2
        pooled = tensor_bytes(hw, hw, channels)
        node = b.add_node(
            f"enc{d}/pool", OpType.MAX_POOL,
            compute_us=us_from_bytes(pooled), output_bytes=pooled, inputs=[node],
        )
        c_in = channels
        channels *= 2
    # bottleneck
    node = _conv(b, "bottleneck", node, hw, c_in, channels)
    c_in = channels
    # decoder
    for d in reversed(range(depth)):
        skip_node, skip_hw, skip_channels = skips[d]
        hw = skip_hw
        up_bytes = tensor_bytes(hw, hw, c_in)
        node = b.add_node(
            f"dec{d}/upsample", OpType.BROADCAST,
            compute_us=us_from_bytes(up_bytes), output_bytes=up_bytes, inputs=[node],
        )
        cat_bytes = tensor_bytes(hw, hw, c_in + skip_channels)
        node = b.add_node(
            f"dec{d}/concat", OpType.CONCAT,
            compute_us=us_from_bytes(cat_bytes), output_bytes=cat_bytes,
            inputs=[node, skip_node],
        )
        node = _conv(b, f"dec{d}", node, hw, c_in + skip_channels, skip_channels)
        c_in = skip_channels
    out_bytes = tensor_bytes(image_hw, image_hw, 1)
    head = b.add_node(
        "head/conv1x1", OpType.CONV2D,
        compute_us=us_from_flops(2.0 * image_hw * image_hw * c_in),
        output_bytes=out_bytes, param_bytes=tensor_bytes(c_in, 1), inputs=[node],
    )
    b.add_node("head/output", OpType.OUTPUT, output_bytes=out_bytes, inputs=[head])
    return b.build()


def build_mobilenet(
    blocks: int = 8,
    base_channels: int = 32,
    image_hw: int = 96,
    classes: int = 100,
    name: str = "mobilenet",
) -> CompGraph:
    """MobileNet-style stack of depthwise-separable convolution blocks."""
    if blocks < 1:
        raise ValueError("blocks must be >= 1")
    b = GraphBuilder(name)
    node = b.add_node("input", OpType.INPUT, output_bytes=tensor_bytes(image_hw, image_hw, 3))
    hw = image_hw
    node = _conv(b, "stem", node, hw, 3, base_channels)
    c_in = base_channels
    for k in range(blocks):
        stride = 2 if (k % 3 == 2 and hw > 4) else 1
        c_out = min(c_in * (2 if stride == 2 else 1), 512)
        out_hw = hw // stride
        dw_bytes = tensor_bytes(out_hw, out_hw, c_in)
        dw = b.add_node(
            f"block{k}/depthwise", OpType.DEPTHWISE_CONV,
            compute_us=us_from_flops(2.0 * out_hw * out_hw * 9 * c_in),
            output_bytes=dw_bytes, param_bytes=tensor_bytes(3, 3, c_in), inputs=[node],
        )
        pw_bytes = tensor_bytes(out_hw, out_hw, c_out)
        pw = b.add_node(
            f"block{k}/pointwise", OpType.CONV2D,
            compute_us=us_from_flops(2.0 * out_hw * out_hw * c_in * c_out),
            output_bytes=pw_bytes, param_bytes=tensor_bytes(c_in, c_out), inputs=[dw],
        )
        node = b.add_node(
            f"block{k}/relu", OpType.RELU,
            compute_us=us_from_bytes(pw_bytes), output_bytes=pw_bytes, inputs=[pw],
        )
        hw, c_in = out_hw, c_out
    pooled = tensor_bytes(c_in)
    pool = b.add_node(
        "head/avg_pool", OpType.AVG_POOL,
        compute_us=us_from_bytes(tensor_bytes(hw, hw, c_in)),
        output_bytes=pooled, inputs=[node],
    )
    fc = b.add_node(
        "head/fc", OpType.MATMUL,
        compute_us=us_from_flops(2.0 * c_in * classes),
        output_bytes=tensor_bytes(classes), param_bytes=tensor_bytes(c_in, classes),
        inputs=[pool],
    )
    b.add_node("head/output", OpType.OUTPUT, output_bytes=tensor_bytes(classes), inputs=[fc])
    return b.build()
