"""The 87-graph pre-training dataset and its 66 / 5 / 16 split.

The paper pre-trains on 66 production CV/NLP graphs, validates on 5, and
tests on 16 — 87 graphs total, each with tens to hundreds of nodes and
**no attention mechanism** (making BERT out-of-distribution).  We reproduce
those properties with seeded parametric draws from the zoo families.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import CompGraph
from repro.graphs.zoo.cnn import build_cnn, build_inception_cnn, build_residual_cnn
from repro.graphs.zoo.mlp import build_autoencoder, build_mlp
from repro.graphs.zoo.rnn import build_gru, build_lstm
from repro.utils.rng import as_generator

#: dataset sizes from the paper (Section 5.1)
N_TOTAL = 87
N_TRAIN = 66
N_VALIDATION = 5
N_TEST = 16


@dataclass(frozen=True)
class DatasetSplit:
    """Train / validation / test partition of the zoo dataset."""

    train: tuple
    validation: tuple
    test: tuple

    @property
    def all_graphs(self) -> tuple:
        """All graphs in split order (train, validation, test)."""
        return self.train + self.validation + self.test


def _sample_graph(index: int, rng: np.random.Generator) -> CompGraph:
    """Draw one graph; the family cycles so every split mixes all families."""
    family = index % 7
    if family == 0:
        return build_cnn(
            depth=int(rng.integers(6, 16)),
            base_channels=int(rng.choice([48, 64, 96])),
            image_hw=int(rng.choice([64, 96, 128])),
            classes=int(rng.integers(10, 200)),
            name=f"cnn_{index}",
        )
    if family == 1:
        return build_residual_cnn(
            stages=int(rng.integers(2, 5)),
            blocks_per_stage=int(rng.integers(2, 5)),
            base_channels=int(rng.choice([48, 64, 96])),
            image_hw=int(rng.choice([64, 96])),
            classes=int(rng.integers(10, 200)),
            name=f"resnet_{index}",
        )
    if family == 2:
        return build_inception_cnn(
            blocks=int(rng.integers(2, 6)),
            branches=int(rng.integers(2, 5)),
            base_channels=int(rng.choice([48, 64, 96])),
            image_hw=int(rng.choice([64, 96])),
            classes=int(rng.integers(10, 200)),
            name=f"inception_{index}",
        )
    if family == 3:
        return build_lstm(
            steps=int(rng.integers(4, 16)),
            hidden_dim=int(rng.choice([512, 768, 1024])),
            input_dim=int(rng.choice([256, 512])),
            classes=int(rng.integers(10, 100)),
            name=f"lstm_{index}",
        )
    if family == 4:
        return build_gru(
            steps=int(rng.integers(4, 20)),
            hidden_dim=int(rng.choice([512, 768, 1024])),
            input_dim=int(rng.choice([256, 512])),
            classes=int(rng.integers(10, 100)),
            name=f"gru_{index}",
        )
    if family == 5:
        width = int(rng.choice([1024, 2048, 4096]))
        n_layers = int(rng.integers(6, 24))
        return build_mlp(
            hidden_dims=tuple(width for _ in range(n_layers)),
            input_dim=int(rng.choice([1024, 2048, 4096])),
            classes=int(rng.integers(10, 100)),
            name=f"mlp_{index}",
        )
    return build_autoencoder(
        bottleneck=int(rng.choice([64, 128, 256])),
        input_dim=int(rng.choice([2048, 4096, 8192])),
        depth=int(rng.integers(3, 7)),
        name=f"autoencoder_{index}",
    )


def build_dataset(
    seed: int = 0,
    n_total: int = N_TOTAL,
    n_train: int = N_TRAIN,
    n_validation: int = N_VALIDATION,
) -> DatasetSplit:
    """Generate the dataset and split it into train / validation / test.

    Parameters
    ----------
    seed:
        Seed controlling both graph parameters and the split shuffle.
    n_total, n_train, n_validation:
        Split sizes; the remainder is the test set.  Defaults reproduce the
        paper's 66 / 5 / 16.
    """
    if n_train + n_validation >= n_total:
        raise ValueError("n_train + n_validation must be < n_total")
    rng = as_generator(seed)
    graphs = [_sample_graph(i, rng) for i in range(n_total)]
    order = rng.permutation(n_total)
    train_idx = order[:n_train]
    val_idx = order[n_train : n_train + n_validation]
    test_idx = order[n_train + n_validation :]
    return DatasetSplit(
        train=tuple(graphs[i] for i in train_idx),
        validation=tuple(graphs[i] for i in val_idx),
        test=tuple(graphs[i] for i in test_idx),
    )
