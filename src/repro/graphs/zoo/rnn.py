"""Recurrent network graph families (unrolled LSTM / GRU).

The recurrent models are unrolled over time, matching how an ML compiler for
a dataflow accelerator sees them: one cluster of gate operations per step,
chained through the hidden/cell state.  Node counts scale linearly with the
number of steps, covering the paper's "tens to hundreds of nodes" regime.
"""

from __future__ import annotations

from repro.graphs.builders import GraphBuilder
from repro.graphs.graph import CompGraph
from repro.graphs.ops import OpType
from repro.graphs.zoo.common import tensor_bytes, us_from_bytes, us_from_flops


def _gate(
    b: GraphBuilder,
    prefix: str,
    x: int,
    h: int,
    input_dim: int,
    hidden_dim: int,
    activation: OpType,
) -> int:
    """One recurrent gate: x @ W + h @ U -> add -> activation."""
    out_bytes = tensor_bytes(hidden_dim)
    xw = b.add_node(
        f"{prefix}/xW",
        OpType.MATMUL,
        compute_us=us_from_flops(2.0 * input_dim * hidden_dim),
        output_bytes=out_bytes,
        param_bytes=tensor_bytes(input_dim, hidden_dim),
        inputs=[x],
    )
    hu = b.add_node(
        f"{prefix}/hU",
        OpType.MATMUL,
        compute_us=us_from_flops(2.0 * hidden_dim * hidden_dim),
        output_bytes=out_bytes,
        param_bytes=tensor_bytes(hidden_dim, hidden_dim),
        inputs=[h],
    )
    added = b.add_node(
        f"{prefix}/add",
        OpType.ADD,
        compute_us=us_from_bytes(out_bytes),
        output_bytes=out_bytes,
        inputs=[xw, hu],
    )
    return b.add_node(
        f"{prefix}/act",
        activation,
        compute_us=us_from_bytes(out_bytes),
        output_bytes=out_bytes,
        inputs=[added],
    )


def build_lstm(
    steps: int = 8,
    hidden_dim: int = 256,
    input_dim: int = 128,
    classes: int = 50,
    name: str = "lstm",
) -> CompGraph:
    """Unrolled single-layer LSTM followed by a dense classifier.

    Each step contains the four gates (input, forget, cell, output), the
    cell-state update, and the hidden-state emission — 14 ops per step.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    b = GraphBuilder(name)
    h = b.add_node("h0", OpType.INPUT, output_bytes=tensor_bytes(hidden_dim))
    c = b.add_node("c0", OpType.INPUT, output_bytes=tensor_bytes(hidden_dim))
    state_bytes = tensor_bytes(hidden_dim)
    for t in range(steps):
        x = b.add_node(f"x{t}", OpType.INPUT, output_bytes=tensor_bytes(input_dim))
        i_g = _gate(b, f"step{t}/i", x, h, input_dim, hidden_dim, OpType.SIGMOID)
        f_g = _gate(b, f"step{t}/f", x, h, input_dim, hidden_dim, OpType.SIGMOID)
        g_g = _gate(b, f"step{t}/g", x, h, input_dim, hidden_dim, OpType.TANH)
        o_g = _gate(b, f"step{t}/o", x, h, input_dim, hidden_dim, OpType.SIGMOID)
        fc = b.add_node(
            f"step{t}/f*c",
            OpType.MUL,
            compute_us=us_from_bytes(state_bytes),
            output_bytes=state_bytes,
            inputs=[f_g, c],
        )
        ig = b.add_node(
            f"step{t}/i*g",
            OpType.MUL,
            compute_us=us_from_bytes(state_bytes),
            output_bytes=state_bytes,
            inputs=[i_g, g_g],
        )
        c = b.add_node(
            f"step{t}/c",
            OpType.ADD,
            compute_us=us_from_bytes(state_bytes),
            output_bytes=state_bytes,
            inputs=[fc, ig],
        )
        tanh_c = b.add_node(
            f"step{t}/tanh_c",
            OpType.TANH,
            compute_us=us_from_bytes(state_bytes),
            output_bytes=state_bytes,
            inputs=[c],
        )
        h = b.add_node(
            f"step{t}/h",
            OpType.MUL,
            compute_us=us_from_bytes(state_bytes),
            output_bytes=state_bytes,
            inputs=[o_g, tanh_c],
        )
    fc_out = b.add_node(
        "head/fc",
        OpType.MATMUL,
        compute_us=us_from_flops(2.0 * hidden_dim * classes),
        output_bytes=tensor_bytes(classes),
        param_bytes=tensor_bytes(hidden_dim, classes),
        inputs=[h],
    )
    sm = b.add_node(
        "head/softmax",
        OpType.SOFTMAX,
        compute_us=us_from_bytes(tensor_bytes(classes)),
        output_bytes=tensor_bytes(classes),
        inputs=[fc_out],
    )
    b.add_node("head/output", OpType.OUTPUT, output_bytes=tensor_bytes(classes), inputs=[sm])
    return b.build()


def build_gru(
    steps: int = 8,
    hidden_dim: int = 256,
    input_dim: int = 128,
    classes: int = 50,
    name: str = "gru",
) -> CompGraph:
    """Unrolled single-layer GRU followed by a dense classifier."""
    if steps < 1:
        raise ValueError("steps must be >= 1")
    b = GraphBuilder(name)
    h = b.add_node("h0", OpType.INPUT, output_bytes=tensor_bytes(hidden_dim))
    state_bytes = tensor_bytes(hidden_dim)
    for t in range(steps):
        x = b.add_node(f"x{t}", OpType.INPUT, output_bytes=tensor_bytes(input_dim))
        z_g = _gate(b, f"step{t}/z", x, h, input_dim, hidden_dim, OpType.SIGMOID)
        r_g = _gate(b, f"step{t}/r", x, h, input_dim, hidden_dim, OpType.SIGMOID)
        rh = b.add_node(
            f"step{t}/r*h",
            OpType.MUL,
            compute_us=us_from_bytes(state_bytes),
            output_bytes=state_bytes,
            inputs=[r_g, h],
        )
        n_g = _gate(b, f"step{t}/n", x, rh, input_dim, hidden_dim, OpType.TANH)
        zh = b.add_node(
            f"step{t}/z*h",
            OpType.MUL,
            compute_us=us_from_bytes(state_bytes),
            output_bytes=state_bytes,
            inputs=[z_g, h],
        )
        zn = b.add_node(
            f"step{t}/(1-z)*n",
            OpType.MUL,
            compute_us=us_from_bytes(state_bytes),
            output_bytes=state_bytes,
            inputs=[z_g, n_g],
        )
        h = b.add_node(
            f"step{t}/h",
            OpType.ADD,
            compute_us=us_from_bytes(state_bytes),
            output_bytes=state_bytes,
            inputs=[zh, zn],
        )
    fc_out = b.add_node(
        "head/fc",
        OpType.MATMUL,
        compute_us=us_from_flops(2.0 * hidden_dim * classes),
        output_bytes=tensor_bytes(classes),
        param_bytes=tensor_bytes(hidden_dim, classes),
        inputs=[h],
    )
    sm = b.add_node(
        "head/softmax",
        OpType.SOFTMAX,
        compute_us=us_from_bytes(tensor_bytes(classes)),
        output_bytes=tensor_bytes(classes),
        inputs=[fc_out],
    )
    b.add_node("head/output", OpType.OUTPUT, output_bytes=tensor_bytes(classes), inputs=[sm])
    return b.build()
