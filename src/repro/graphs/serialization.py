"""Save/load computation graphs (.npz format).

Lets users export zoo graphs or import their own compiler dumps without
writing builder code: node attribute arrays plus edge arrays, with names
stored as a fixed-width unicode array.
"""

from __future__ import annotations

import os

import numpy as np

from repro.graphs.graph import CompGraph

_FORMAT_VERSION = 1


def save_graph(graph: CompGraph, path: str) -> None:
    """Write ``graph`` to ``path`` as a compressed ``.npz``."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        name=np.str_(graph.name),
        names=np.array(graph.names, dtype=np.str_),
        op_types=graph.op_types,
        compute_us=graph.compute_us,
        output_bytes=graph.output_bytes,
        param_bytes=graph.param_bytes,
        src=graph.src,
        dst=graph.dst,
    )


def load_graph(path: str) -> CompGraph:
    """Load a graph written by :func:`save_graph`."""
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported graph format version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        return CompGraph(
            names=tuple(str(n) for n in data["names"]),
            op_types=data["op_types"].astype(np.int64),
            compute_us=data["compute_us"].astype(np.float64),
            output_bytes=data["output_bytes"].astype(np.float64),
            param_bytes=data["param_bytes"].astype(np.float64),
            src=data["src"].astype(np.int64),
            dst=data["dst"].astype(np.int64),
            name=str(data["name"]),
        )


def graph_to_dict(graph: CompGraph) -> dict:
    """JSON-serialisable canonical form of a graph (the wire format).

    The serving HTTP endpoint ships graphs as this dict.  Floats pass
    through Python's JSON encoder, whose ``repr``-based shortest-roundtrip
    encoding preserves ``float64`` payloads exactly — so content
    fingerprints (:mod:`repro.serve.fingerprint`) are stable across the
    wire, same as across ``save_graph``/``load_graph``.
    """
    return {
        "format_version": _FORMAT_VERSION,
        "name": graph.name,
        "names": list(graph.names),
        "op_types": graph.op_types.astype(np.int64).tolist(),
        "compute_us": graph.compute_us.astype(np.float64).tolist(),
        "output_bytes": graph.output_bytes.astype(np.float64).tolist(),
        "param_bytes": graph.param_bytes.astype(np.float64).tolist(),
        "src": graph.src.astype(np.int64).tolist(),
        "dst": graph.dst.astype(np.int64).tolist(),
    }


def graph_from_dict(payload: dict) -> CompGraph:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    version = int(payload.get("format_version", _FORMAT_VERSION))
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported graph format version {version} "
            f"(expected {_FORMAT_VERSION})"
        )
    return CompGraph(
        names=tuple(str(n) for n in payload["names"]),
        op_types=np.asarray(payload["op_types"], dtype=np.int64),
        compute_us=np.asarray(payload["compute_us"], dtype=np.float64),
        output_bytes=np.asarray(payload["output_bytes"], dtype=np.float64),
        param_bytes=np.asarray(payload["param_bytes"], dtype=np.float64),
        src=np.asarray(payload["src"], dtype=np.int64),
        dst=np.asarray(payload["dst"], dtype=np.int64),
        name=str(payload.get("name", "graph")),
    )
