"""Computation-graph intermediate representation and model zoo.

The IR is deliberately close to what an ML compiler sees after lowering: a
directed acyclic graph of tensor operations, where every node carries a
compute-latency estimate, the byte size of its output tensor, and the byte
size of any parameters that must be resident on the chip executing it.
"""

from repro.graphs.builders import GraphBuilder
from repro.graphs.graph import CompGraph
from repro.graphs.ops import OpCategory, OpType

__all__ = ["CompGraph", "GraphBuilder", "OpType", "OpCategory"]
