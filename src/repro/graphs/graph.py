"""The :class:`CompGraph` computation-graph container.

Storage is vectorised: node attributes are NumPy arrays indexed by node id,
edges are parallel ``src``/``dst`` arrays plus CSR-style adjacency indices.
Graphs are immutable once constructed (build them with
:class:`repro.graphs.GraphBuilder`), which lets downstream components cache
derived quantities such as topological order and depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.ops import OpType, category_of


def _build_csr(n_nodes: int, keys: np.ndarray, values: np.ndarray):
    """Group ``values`` by ``keys`` (both length-E) into CSR (indptr, data)."""
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    data = values[order]
    counts = np.bincount(sorted_keys, minlength=n_nodes)
    indptr = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, data


@dataclass(frozen=True)
class CompGraph:
    """An immutable DAG of tensor operations.

    Parameters
    ----------
    names:
        Human readable node names, one per node.
    op_types:
        ``(N,)`` integer array of :class:`repro.graphs.OpType` values.
    compute_us:
        ``(N,)`` float array: estimated compute latency of each node in
        microseconds on one chiplet.
    output_bytes:
        ``(N,)`` float array: size of each node's output tensor in bytes.
    param_bytes:
        ``(N,)`` float array: parameter bytes that must be resident on the
        chip executing the node.
    src, dst:
        ``(E,)`` integer arrays defining directed edges ``src[i] -> dst[i]``.
    name:
        Optional graph-level name (e.g. ``"bert_large"``).
    """

    names: tuple
    op_types: np.ndarray
    compute_us: np.ndarray
    output_bytes: np.ndarray
    param_bytes: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    name: str = "graph"
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Construction / validation
    # ------------------------------------------------------------------
    def __post_init__(self):
        n = len(self.names)
        for attr in ("op_types", "compute_us", "output_bytes", "param_bytes"):
            arr = getattr(self, attr)
            if arr.shape != (n,):
                raise ValueError(f"{attr} must have shape ({n},), got {arr.shape}")
        if self.src.shape != self.dst.shape:
            raise ValueError("src and dst must have equal shapes")
        if self.src.size:
            if self.src.min() < 0 or self.src.max() >= n:
                raise ValueError("edge source out of range")
            if self.dst.min() < 0 or self.dst.max() >= n:
                raise ValueError("edge destination out of range")
            if np.any(self.src == self.dst):
                raise ValueError("self loops are not allowed")
        if np.any(self.compute_us < 0):
            raise ValueError("compute_us must be non-negative")
        if np.any(self.output_bytes < 0):
            raise ValueError("output_bytes must be non-negative")
        if np.any(self.param_bytes < 0):
            raise ValueError("param_bytes must be non-negative")
        # Topological order doubles as the acyclicity check.
        self.topological_order()

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of operations in the graph."""
        return len(self.names)

    @property
    def n_edges(self) -> int:
        """Number of dependency edges."""
        return int(self.src.size)

    def __len__(self) -> int:
        return self.n_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompGraph(name={self.name!r}, nodes={self.n_nodes}, "
            f"edges={self.n_edges}, params={self.total_param_bytes() / 2**20:.1f}MiB)"
        )

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def _out_csr(self):
        if "out_csr" not in self._cache:
            self._cache["out_csr"] = _build_csr(self.n_nodes, self.src, self.dst)
        return self._cache["out_csr"]

    def _in_csr(self):
        if "in_csr" not in self._cache:
            self._cache["in_csr"] = _build_csr(self.n_nodes, self.dst, self.src)
        return self._cache["in_csr"]

    def successors(self, node: int) -> np.ndarray:
        """Node ids with an edge ``node -> id``."""
        indptr, data = self._out_csr()
        return data[indptr[node] : indptr[node + 1]]

    def predecessors(self, node: int) -> np.ndarray:
        """Node ids with an edge ``id -> node``."""
        indptr, data = self._in_csr()
        return data[indptr[node] : indptr[node + 1]]

    def out_degree(self) -> np.ndarray:
        """``(N,)`` array of out-degrees."""
        return np.bincount(self.src, minlength=self.n_nodes)

    def in_degree(self) -> np.ndarray:
        """``(N,)`` array of in-degrees."""
        return np.bincount(self.dst, minlength=self.n_nodes)

    # ------------------------------------------------------------------
    # Order / depth
    # ------------------------------------------------------------------
    def topological_order(self) -> np.ndarray:
        """A topological order of node ids (Kahn's algorithm, cached).

        Raises ``ValueError`` if the graph contains a cycle.
        """
        if "topo" in self._cache:
            return self._cache["topo"]
        n = self.n_nodes
        indeg = self.in_degree().copy()
        out_indptr, out_data = self._out_csr()
        order = np.empty(n, dtype=np.int64)
        frontier = list(np.flatnonzero(indeg == 0))
        k = 0
        while frontier:
            u = frontier.pop()
            order[k] = u
            k += 1
            for v in out_data[out_indptr[u] : out_indptr[u + 1]]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    frontier.append(int(v))
        if k != n:
            raise ValueError("graph contains a cycle")
        self._cache["topo"] = order
        return order

    def random_topological_order(self, rng) -> np.ndarray:
        """A uniformly perturbed linear extension of the DAG.

        Kahn's algorithm with random priorities: every prefix respects the
        partial order, while ties are broken randomly so repeated calls
        explore different linear extensions.
        """
        import heapq

        n = self.n_nodes
        priority = rng.random(n)
        indeg = self.in_degree().copy()
        out_indptr, out_data = self._out_csr()
        heap = [(priority[u], int(u)) for u in np.flatnonzero(indeg == 0)]
        heapq.heapify(heap)
        order = np.empty(n, dtype=np.int64)
        k = 0
        while heap:
            _, u = heapq.heappop(heap)
            order[k] = u
            k += 1
            for v in out_data[out_indptr[u] : out_indptr[u + 1]]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    heapq.heappush(heap, (priority[v], int(v)))
        if k != n:
            raise ValueError("graph contains a cycle")
        return order

    def compute_position(self) -> np.ndarray:
        """Cumulative compute fraction of each node along a topological order.

        Measures "how far through the pipeline" each op sits, in (0, 1]; a
        balanced contiguous split onto ``C`` chips puts node ``u`` near chip
        ``floor(position[u] * C)``.
        """
        if "position" not in self._cache:
            order = self.topological_order()
            cum = np.cumsum(self.compute_us[order])
            total = max(float(cum[-1]), 1e-12)
            position = np.empty(self.n_nodes)
            position[order] = cum / total
            self._cache["position"] = position
        return self._cache["position"]

    def depth(self) -> np.ndarray:
        """Longest path length (in edges) from any source to each node."""
        if "depth" in self._cache:
            return self._cache["depth"]
        depth = np.zeros(self.n_nodes, dtype=np.int64)
        in_indptr, in_data = self._in_csr()
        for u in self.topological_order():
            preds = in_data[in_indptr[u] : in_indptr[u + 1]]
            if preds.size:
                depth[u] = depth[preds].max() + 1
        self._cache["depth"] = depth
        return depth

    def critical_path_us(self) -> np.ndarray:
        """Longest weighted path (compute microseconds) ending at each node."""
        if "cp" in self._cache:
            return self._cache["cp"]
        cp = self.compute_us.astype(np.float64).copy()
        in_indptr, in_data = self._in_csr()
        for u in self.topological_order():
            preds = in_data[in_indptr[u] : in_indptr[u + 1]]
            if preds.size:
                cp[u] += cp[preds].max()
        self._cache["cp"] = cp
        return cp

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_compute_us(self) -> float:
        """Total compute latency summed over all nodes."""
        return float(self.compute_us.sum())

    def total_param_bytes(self) -> float:
        """Total parameter bytes across all nodes."""
        return float(self.param_bytes.sum())

    def edge_bytes(self) -> np.ndarray:
        """``(E,)`` array: bytes transferred along each edge.

        The tensor transferred on an edge is the source node's output.
        """
        return self.output_bytes[self.src]

    def op_categories(self) -> np.ndarray:
        """``(N,)`` array of :class:`OpCategory` values, cached."""
        if "cat" not in self._cache:
            self._cache["cat"] = np.array(
                [int(category_of(int(t))) for t in self.op_types], dtype=np.int64
            )
        return self._cache["cat"]

    def is_replicable(self) -> np.ndarray:
        """Boolean mask of nodes replicable on every chip (pure constants).

        Real MCM compilers materialise small constants (attention masks,
        scaling factors) on every chiplet instead of streaming them across
        the ring; edges out of replicable nodes are exempt from the static
        placement constraints.
        """
        if "replicable" not in self._cache:
            self._cache["replicable"] = np.asarray(self.op_types) == int(OpType.CONSTANT)
        return self._cache["replicable"]

    # ------------------------------------------------------------------
    # Interop / export
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` with node attributes."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for i in range(self.n_nodes):
            g.add_node(
                i,
                name=self.names[i],
                op_type=OpType(int(self.op_types[i])),
                compute_us=float(self.compute_us[i]),
                output_bytes=float(self.output_bytes[i]),
                param_bytes=float(self.param_bytes[i]),
            )
        g.add_edges_from(zip(self.src.tolist(), self.dst.tolist()))
        return g

    def summary(self) -> str:
        """Human readable multi-line description of the graph."""
        lines = [
            f"graph {self.name}: {self.n_nodes} nodes, {self.n_edges} edges",
            f"  total compute: {self.total_compute_us() / 1e3:.2f} ms",
            f"  total params:  {self.total_param_bytes() / 2**20:.1f} MiB",
            f"  max depth:     {int(self.depth().max()) if self.n_nodes else 0}",
        ]
        return "\n".join(lines)
