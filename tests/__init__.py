"""Test package."""
