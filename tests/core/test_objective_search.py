"""Tests for search under the latency objective and feature guards."""

import numpy as np
import pytest

from repro.core.baselines import RandomSearch
from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.hardware.analytical import AnalyticalCostModel
from repro.rl.features import featurize
from repro.rl.ppo import PPOConfig
from tests.conftest import random_dag


class TestLatencySearch:
    def test_random_search_on_latency(self, roomy_package):
        g = random_dag(8, 25)
        env = PartitionEnvironment(
            g, AnalyticalCostModel(roomy_package), 4, objective="latency"
        )
        result = RandomSearch(rng=0).search(env, 12)
        assert result.best_improvement > 0
        # the all-on-one-chip partition minimises latency on small graphs;
        # search should find something at least as good as the baseline
        single = env.evaluate(np.zeros(g.n_nodes, dtype=int))
        assert single.improvement >= 1.0

    def test_rl_search_on_latency(self, roomy_package):
        g = random_dag(8, 20)
        env = PartitionEnvironment(
            g, AnalyticalCostModel(roomy_package), 4, objective="latency"
        )
        cfg = RLPartitionerConfig(
            hidden=8, n_sage_layers=1,
            ppo=PPOConfig(n_rollouts=4, n_minibatches=1, n_epochs=1),
        )
        result = RLPartitioner(4, config=cfg, rng=0).search(env, 8)
        assert result.best_improvement > 0


class TestFeatureGuard:
    def test_mismatched_features_rejected(self, roomy_package):
        g1, g2 = random_dag(1, 10), random_dag(2, 20)
        env = PartitionEnvironment(g1, AnalyticalCostModel(roomy_package), 4)
        cfg = RLPartitionerConfig(hidden=8, n_sage_layers=1)
        p = RLPartitioner(4, config=cfg, rng=0)
        with pytest.raises(ValueError, match="features"):
            p.search(env, 2, features=featurize(g2))
