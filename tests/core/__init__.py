"""Test package."""
