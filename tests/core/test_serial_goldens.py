"""Golden regression: the serial search path is bit-for-bit frozen.

The parallel subsystem (PR 2) refactored the search inner loop into
``RLPartitioner._draw_batch`` / ``draw_window`` and fused the Adam update.
These goldens pin the exact serial trajectory (improvements, best, final
weights) captured on the PR-1 code immediately before the refactor: any
change to RNG consumption order, operation order, or arithmetic in the
serial path shows up here as a hard failure.

The values are a function of this repo's pinned numpy/BLAS environment; if
that environment is ever upgraded, regenerate them with the snippet in each
test (run on the pre-change commit).
"""

import numpy as np

from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.core.pretrain import PretrainConfig, pretrain
from repro.graphs.zoo import build_dataset
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.package import MCMPackage
from repro.rl.ppo import PPOConfig
from repro.solver.strategies import sample_partition

N_CHIPS = 4

GOLDEN_SEARCH_IMPROVEMENTS = [
    0.4346292390016788, 0.5418714202014963, 0.39205293332034485,
    0.6225017835463983, 0.4343799105344472, 0.4346292390016788,
    0.4343799105344472, 0.5418714202014963, 0.4343799105344472,
    0.39205293332034485, 0.39205293332034485, 0.39205293332034485,
    0.5403247621589977, 0.39205293332034485, 0.6225017835463983,
    0.4343799105344472, 0.4341308679616664, 0.4341308679616664,
    0.39205293332034485, 0.4343799105344472, 0.391242655235837,
    0.39205293332034485, 0.4341308679616664, 0.39205293332034485,
    0.4341308679616664,
]
GOLDEN_SEARCH_BEST = 0.6225017835463983
GOLDEN_SEARCH_WEIGHT_L1 = 845.0066569629125
GOLDEN_PRETRAIN_WEIGHT_L1 = 872.2428446572112
GOLDEN_SOLVER8_SUM = 570
GOLDEN_SOLVER8_HEAD = [5, 6, 6, 5, 7, 7, 7, 7, 7, 7, 7, 7]


def _weight_l1(partitioner) -> float:
    state = partitioner.state_dict()
    return float(sum(np.abs(state[k]).sum() for k in sorted(state)))


def _config():
    return RLPartitionerConfig(
        hidden=32,
        n_sage_layers=2,
        ppo=PPOConfig(n_rollouts=10, n_minibatches=2, n_epochs=3),
    )


def _env(graph):
    package = MCMPackage(n_chips=N_CHIPS)
    return PartitionEnvironment(graph, AnalyticalCostModel(package), N_CHIPS)


class TestSerialGoldens:
    def test_training_search_trajectory(self):
        graph = build_dataset(seed=0).train[0]
        partitioner = RLPartitioner(N_CHIPS, config=_config(), rng=123)
        result = partitioner.search(_env(graph), 25, train=True)
        assert result.improvements.tolist() == GOLDEN_SEARCH_IMPROVEMENTS
        assert result.best_improvement == GOLDEN_SEARCH_BEST
        assert _weight_l1(partitioner) == GOLDEN_SEARCH_WEIGHT_L1

    def test_pretrain_final_weights(self):
        graphs = list(build_dataset(seed=0).train[:3])
        partitioner = RLPartitioner(N_CHIPS, config=_config(), rng=7)
        checkpoints = pretrain(
            partitioner,
            graphs,
            _env,
            PretrainConfig(total_samples=40, n_checkpoints=4, samples_per_graph=10),
        )
        assert [c.step for c in checkpoints] == [10, 20, 30, 40]
        assert _weight_l1(partitioner) == GOLDEN_PRETRAIN_WEIGHT_L1

    def test_solver_sample_stream_at_8_chips(self):
        graph = build_dataset(seed=0).train[1]
        probs = np.full((graph.n_nodes, 8), 1.0 / 8)
        out = sample_partition(graph, probs, 8, rng=42)
        assert int(out.sum()) == GOLDEN_SOLVER8_SUM
        assert out[:12].tolist() == GOLDEN_SOLVER8_HEAD
