"""Tests for the pre-training pipeline and deployment helpers."""

import numpy as np
import pytest

from repro.core.environment import PartitionEnvironment
from repro.core.finetune import fine_tune_search, zero_shot_search
from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.core.pretrain import Checkpoint, PretrainConfig, pretrain, select_checkpoint
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.package import MCMPackage
from repro.rl.ppo import PPOConfig
from tests.conftest import random_dag


@pytest.fixture
def setup(roomy_package):
    graphs = [random_dag(s, 15) for s in range(3)]

    def env_factory(g):
        return PartitionEnvironment(g, AnalyticalCostModel(roomy_package), 4)

    cfg = RLPartitionerConfig(
        hidden=8, n_sage_layers=1,
        ppo=PPOConfig(n_rollouts=4, n_minibatches=1, n_epochs=1),
    )
    partitioner = RLPartitioner(4, config=cfg, rng=0)
    return graphs, env_factory, partitioner


class TestPretrain:
    def test_checkpoint_cadence(self, setup):
        graphs, env_factory, partitioner = setup
        cfg = PretrainConfig(total_samples=24, n_checkpoints=3, samples_per_graph=4)
        ckpts = pretrain(partitioner, graphs, env_factory, cfg)
        assert len(ckpts) == 3
        assert [c.step for c in ckpts] == [8, 16, 24]

    def test_progress_callback(self, setup):
        graphs, env_factory, partitioner = setup
        seen = []
        cfg = PretrainConfig(total_samples=8, n_checkpoints=1, samples_per_graph=4)
        pretrain(partitioner, graphs, env_factory, cfg, progress=lambda s, r: seen.append(s))
        assert seen == [4, 8]

    def test_rejects_empty_graphs(self, setup):
        _, env_factory, partitioner = setup
        with pytest.raises(ValueError):
            pretrain(partitioner, [], env_factory)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            PretrainConfig(total_samples=0)


class TestSelectCheckpoint:
    def test_scores_and_picks_best(self, setup):
        graphs, env_factory, partitioner = setup
        cfg = PretrainConfig(total_samples=8, n_checkpoints=2, samples_per_graph=4)
        ckpts = pretrain(partitioner, graphs, env_factory, cfg)
        best = select_checkpoint(
            ckpts, partitioner, graphs[:1], env_factory, zero_shot_samples=2
        )
        assert best in ckpts
        assert all(c.score is not None for c in ckpts)
        assert best.score == max(c.score for c in ckpts)

    def test_finetune_scoring(self, setup):
        graphs, env_factory, partitioner = setup
        cfg = PretrainConfig(total_samples=8, n_checkpoints=1, samples_per_graph=4)
        ckpts = pretrain(partitioner, graphs, env_factory, cfg)
        best = select_checkpoint(
            ckpts, partitioner, graphs[:1], env_factory,
            zero_shot_samples=2, finetune_samples=4,
        )
        assert best.score is not None

    def test_rejects_empty(self, setup):
        graphs, env_factory, partitioner = setup
        with pytest.raises(ValueError):
            select_checkpoint([], partitioner, graphs, env_factory)
        with pytest.raises(ValueError):
            select_checkpoint(
                [Checkpoint(step=0, state=partitioner.state_dict())],
                partitioner, [], env_factory,
            )


class TestDeployment:
    def test_zero_shot_does_not_train(self, setup):
        graphs, env_factory, partitioner = setup
        state = partitioner.state_dict()
        env = env_factory(graphs[0])
        result = zero_shot_search(partitioner, state, env, 4)
        assert result.n_samples == 4
        for key, arr in partitioner.state_dict().items():
            np.testing.assert_array_equal(arr, state[key])

    def test_fine_tune_trains(self, setup):
        graphs, env_factory, partitioner = setup
        state = partitioner.state_dict()
        env = env_factory(graphs[0])
        result = fine_tune_search(partitioner, state, env, 8)
        assert result.n_samples == 8
        changed = any(
            not np.allclose(arr, state[key])
            for key, arr in partitioner.state_dict().items()
        )
        assert changed
