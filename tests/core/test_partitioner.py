"""Tests for the RL partitioner (policy + solver + PPO)."""

import numpy as np
import pytest

from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.hardware.analytical import AnalyticalCostModel
from repro.rl.ppo import PPOConfig
from repro.solver.constraints import validate_partition
from tests.conftest import random_dag


@pytest.fixture
def small_env(roomy_package):
    g = random_dag(5, 25)
    return PartitionEnvironment(g, AnalyticalCostModel(roomy_package), 4)


def _partitioner(**kwargs):
    cfg = RLPartitionerConfig(
        hidden=16,
        n_sage_layers=2,
        ppo=PPOConfig(n_rollouts=5, n_minibatches=1, n_epochs=2),
        **kwargs,
    )
    return RLPartitioner(4, config=cfg, rng=0)


class TestSearch:
    def test_all_samples_valid_with_solver(self, small_env):
        p = _partitioner()
        result = p.search(small_env, 10)
        assert np.all(result.improvements > 0)
        assert validate_partition(
            small_env.graph, result.best_assignment, 4
        ).ok

    def test_without_solver_mostly_invalid(self, small_env):
        p = _partitioner()
        result = p.search(small_env, 10, use_solver=False)
        # untrained policy on 4 chips: valid partitions are overwhelmingly
        # unlikely (the paper's Section 5.1 observation)
        assert (result.improvements == 0).mean() >= 0.8

    def test_sample_mode(self, small_env):
        p = _partitioner(solver_mode="sample")
        result = p.search(small_env, 6)
        assert np.all(result.improvements > 0)

    def test_train_false_freezes_weights(self, small_env):
        p = _partitioner()
        before = [w.data.copy() for w in p.policy.parameters()]
        p.search(small_env, 6, train=False)
        for b, w in zip(before, p.policy.parameters()):
            np.testing.assert_array_equal(b, w.data)

    def test_train_true_updates_weights(self, small_env):
        p = _partitioner()
        before = [w.data.copy() for w in p.policy.parameters()]
        p.search(small_env, 6, train=True)  # >= one PPO buffer (5 rollouts)
        assert any(
            not np.allclose(b, w.data)
            for b, w in zip(before, p.policy.parameters())
        )

    def test_chip_count_mismatch_rejected(self, roomy_package):
        g = random_dag(0, 10)
        env = PartitionEnvironment(g, AnalyticalCostModel(roomy_package), 3)
        with pytest.raises(ValueError):
            _partitioner().search(env, 4)

    def test_rejects_zero_samples(self, small_env):
        with pytest.raises(ValueError):
            _partitioner().search(small_env, 0)


class TestCheckpointing:
    def test_state_roundtrip(self, small_env):
        p1 = _partitioner()
        p1.search(small_env, 5)
        state = p1.state_dict()
        p2 = _partitioner()
        p2.load_state_dict(state)
        a = p1.policy.forward_batch(
            __import__("repro.rl.features", fromlist=["featurize"]).featurize(
                small_env.graph
            ),
            np.zeros((1, small_env.graph.n_nodes), dtype=int),
        ).probs
        b = p2.policy.forward_batch(
            __import__("repro.rl.features", fromlist=["featurize"]).featurize(
                small_env.graph
            ),
            np.zeros((1, small_env.graph.n_nodes), dtype=int),
        ).probs
        np.testing.assert_allclose(a, b)


class TestProposeBest:
    def test_returns_valid_partition(self, small_env):
        p = _partitioner()
        assignment, improvement = p.propose_best(small_env, n_samples=3)
        assert validate_partition(small_env.graph, assignment, 4).ok
        assert improvement > 0


class TestConfig:
    def test_rejects_bad_solver_mode(self):
        with pytest.raises(ValueError):
            RLPartitionerConfig(solver_mode="magic")
