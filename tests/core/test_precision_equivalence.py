"""float32 backend equivalence: the fast path must track float64 end to end.

Acceptance contract for the precision seam: float32 is *not* required to be
bitwise-identical to float64 (fusion changes summation order), but over a
full training window it must stay inside the FLOAT32 backend tolerances —
bounded weight drift, the same improvements trajectory, and the *same
chosen partitions* — so a deployment can flip precision for speed without
changing what the partitioner returns.
"""

import numpy as np
import pytest

from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.graphs.zoo import build_cnn, build_lstm, build_mlp
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.package import MCMPackage
from repro.rl.features import featurize
from repro.rl.policy import PartitionPolicy
from repro.rl.ppo import PPOConfig

N_CHIPS = 4

#: Full-window drift bound on weights (max abs, both nets cast to float64).
#: Measured ~2e-7 after 60 training samples at this config; the bound
#: leaves three orders of magnitude of headroom while still catching any
#: genuinely divergent kernel (a wrong fused gradient drifts past 1e-2
#: within a handful of updates).
WEIGHT_DRIFT_BOUND = 1e-4


def _env(graph):
    package = MCMPackage(n_chips=N_CHIPS)
    return PartitionEnvironment(graph, AnalyticalCostModel(package), N_CHIPS)


def _partitioner(precision, rng=7):
    cfg = RLPartitionerConfig(
        hidden=32,
        n_sage_layers=2,
        ppo=PPOConfig(n_rollouts=10, n_minibatches=2, n_epochs=3),
        precision=precision,
    )
    return RLPartitioner(N_CHIPS, config=cfg, rng=rng)


class TestConfigSurface:
    def test_default_precision_is_float64(self):
        assert RLPartitionerConfig().precision == "float64"

    def test_unknown_precision_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="precision"):
            RLPartitionerConfig(precision="float16")

    def test_policy_dtype_follows_config(self):
        for precision, dtype in [("float64", np.float64), ("float32", np.float32)]:
            partitioner = _partitioner(precision)
            for value in partitioner.state_dict().values():
                assert value.dtype == np.dtype(dtype)


class TestInitEquivalence:
    def test_same_seed_gives_identical_initial_weights(self):
        """Init draws come from the same float64 RNG stream at both
        precisions and are cast after, so the float32 net starts at
        exactly the float64 weights rounded to float32."""
        p64, p32 = _partitioner("float64", rng=3), _partitioner("float32", rng=3)
        s64, s32 = p64.state_dict(), p32.state_dict()
        assert set(s64) == set(s32)
        for key in s64:
            np.testing.assert_array_equal(s64[key].astype(np.float32), s32[key])


class TestZeroShotEquivalence:
    @pytest.mark.parametrize(
        "builder", [build_mlp, build_cnn, build_lstm], ids=["mlp", "cnn", "lstm"]
    )
    def test_argmax_partitions_identical_across_precisions(self, builder):
        """Greedy (argmax) partitions from a fresh policy are identical at
        both precisions on the zoo graphs — the probability matrices agree
        to ~1e-7, far inside any argmax decision boundary here."""
        feats = featurize(builder())
        p64 = PartitionPolicy(N_CHIPS, hidden=32, n_sage_layers=2, rng=11)
        p32 = PartitionPolicy(
            N_CHIPS, hidden=32, n_sage_layers=2, rng=11, backend="float32"
        )
        n = len(feats.node_features)
        prev = np.zeros((1, n), dtype=np.int64)
        out64 = p64.forward_batch(feats, prev)
        out32 = p32.forward_batch(feats, prev)
        assert out32.log_probs.data.dtype == np.dtype(np.float32)
        np.testing.assert_array_equal(
            out64.probs[0].argmax(axis=1), out32.probs[0].argmax(axis=1)
        )
        np.testing.assert_allclose(out32.probs, out64.probs, rtol=5e-2, atol=1e-4)


class TestTrainingWindowEquivalence:
    @pytest.fixture(scope="class")
    def searched(self):
        p64, p32 = _partitioner("float64"), _partitioner("float32")
        r64 = p64.search(_env(build_mlp()), 60)
        r32 = p32.search(_env(build_mlp()), 60)
        return p64, p32, r64, r32

    def test_same_best_partition_and_improvement(self, searched):
        _, _, r64, r32 = searched
        np.testing.assert_array_equal(r64.best_assignment, r32.best_assignment)
        assert r32.best_improvement == pytest.approx(r64.best_improvement, rel=1e-6)

    def test_improvements_trajectory_matches(self, searched):
        """The per-sample improvement sequence (the paper's learning curve)
        is driven by cost-model evaluations of sampled partitions; float32
        probability perturbations are too small to flip any draw over this
        window, so the trajectories coincide."""
        _, _, r64, r32 = searched
        np.testing.assert_allclose(r32.improvements, r64.improvements, atol=1e-9)

    def test_weight_drift_bounded_over_full_window(self, searched):
        p64, p32, _, _ = searched
        s64, s32 = p64.state_dict(), p32.state_dict()
        drift = max(
            float(np.max(np.abs(s64[k].astype(np.float64) - s32[k].astype(np.float64))))
            for k in s64
        )
        assert drift < WEIGHT_DRIFT_BOUND

    def test_float32_search_returns_valid_partition(self, searched):
        _, _, _, r32 = searched
        assignment = r32.best_assignment
        assert assignment is not None
        assert assignment.shape == (len(build_mlp()),)
        assert assignment.min() >= 0 and assignment.max() < N_CHIPS
        assert np.isfinite(r32.best_improvement) and r32.best_improvement > 0
