"""Tests for the baseline partitioners and SearchResult."""

import numpy as np
import pytest

from repro.core.baselines import (
    RandomSearch,
    SearchResult,
    SimulatedAnnealing,
    greedy_partition,
)
from repro.core.environment import PartitionEnvironment
from repro.hardware.analytical import AnalyticalCostModel
from repro.solver.constraints import validate_partition
from tests.conftest import random_dag


class TestSearchResult:
    def test_best_so_far_monotone(self):
        res = SearchResult(
            improvements=np.array([1.0, 0.5, 2.0, 1.5]),
            best_assignment=None,
            best_improvement=2.0,
        )
        np.testing.assert_array_equal(res.best_so_far(), [1.0, 1.0, 2.0, 2.0])

    def test_samples_to_reach(self):
        res = SearchResult(
            improvements=np.array([1.0, 1.2, 1.8, 1.9]),
            best_assignment=None,
            best_improvement=1.9,
        )
        assert res.samples_to_reach(1.5) == 3
        assert res.samples_to_reach(1.0) == 1
        assert res.samples_to_reach(5.0) is None

    def test_n_samples(self):
        res = SearchResult(np.zeros(7), None, 0.0)
        assert res.n_samples == 7


class TestGreedyPartition:
    def test_valid_on_zoo_like_dags(self):
        for seed in range(5):
            g = random_dag(seed, 40)
            y = greedy_partition(g, 5)
            assert validate_partition(g, y, 5).ok

    def test_balances_node_count(self, chain_graph):
        y = greedy_partition(chain_graph, 2)
        counts = np.bincount(y, minlength=2)
        assert counts[0] == counts[1]

    def test_leaves_compute_headroom(self, chain_graph):
        # The production heuristic ignores per-op cost, so compute loads
        # are imbalanced on graphs with skewed costs (search can beat it).
        y = greedy_partition(chain_graph, 2)
        loads = np.bincount(y, weights=chain_graph.compute_us, minlength=2)
        assert loads.max() / loads.sum() > 0.55


class TestRandomSearch:
    def test_curve_and_validity(self, chain_graph, roomy_package):
        env = PartitionEnvironment(
            chain_graph, AnalyticalCostModel(roomy_package), 4
        )
        result = RandomSearch(rng=0).search(env, 12)
        assert result.n_samples == 12
        assert result.best_improvement > 0
        assert validate_partition(chain_graph, result.best_assignment, 4).ok
        assert env.n_samples == 12

    def test_deterministic(self, chain_graph, roomy_package):
        def run():
            env = PartitionEnvironment(
                chain_graph, AnalyticalCostModel(roomy_package), 4
            )
            return RandomSearch(rng=3).search(env, 8).improvements

        np.testing.assert_array_equal(run(), run())

    def test_rejects_zero_samples(self, chain_graph, roomy_package):
        env = PartitionEnvironment(
            chain_graph, AnalyticalCostModel(roomy_package), 4
        )
        with pytest.raises(ValueError):
            RandomSearch(rng=0).search(env, 0)


class TestSimulatedAnnealing:
    def test_finds_valid_improvements(self, roomy_package):
        g = random_dag(7, 30)
        env = PartitionEnvironment(g, AnalyticalCostModel(roomy_package), 4)
        result = SimulatedAnnealing(rng=0).search(env, 15)
        assert result.best_improvement > 0
        assert validate_partition(g, result.best_assignment, 4).ok

    def test_accepts_schedule_params(self):
        sa = SimulatedAnnealing(
            perturb_fraction=0.5, initial_temperature=0.1, cooling=0.9
        )
        assert sa.perturb_fraction == 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"perturb_fraction": 0.0},
            {"perturb_fraction": 1.5},
            {"initial_temperature": 0.0},
            {"cooling": 1.5},
        ],
    )
    def test_rejects_bad_schedule(self, kwargs):
        with pytest.raises(ValueError):
            SimulatedAnnealing(**kwargs)
