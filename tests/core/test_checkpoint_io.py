"""Tests for checkpoint persistence and the UnconstrainedRL wrapper."""

import numpy as np
import pytest

from repro.core.baselines import UnconstrainedRL
from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.core.pretrain import Checkpoint, load_checkpoints, save_checkpoints
from repro.hardware.analytical import AnalyticalCostModel
from repro.rl.ppo import PPOConfig
from tests.conftest import random_dag


class TestCheckpointIO:
    def test_roundtrip(self, tmp_path):
        cfg = RLPartitionerConfig(hidden=8, n_sage_layers=1)
        p = RLPartitioner(3, config=cfg, rng=0)
        ckpts = [
            Checkpoint(step=10, state=p.state_dict(), score=1.5),
            Checkpoint(step=20, state=p.state_dict()),
        ]
        path = str(tmp_path / "ckpts.pkl")
        save_checkpoints(ckpts, path)
        loaded = load_checkpoints(path)
        assert [c.step for c in loaded] == [10, 20]
        assert loaded[0].score == 1.5
        assert loaded[1].score is None
        for key, arr in ckpts[0].state.items():
            np.testing.assert_array_equal(loaded[0].state[key], arr)

    def test_loaded_state_restores_policy(self, tmp_path):
        cfg = RLPartitionerConfig(hidden=8, n_sage_layers=1)
        p1 = RLPartitioner(3, config=cfg, rng=0)
        path = str(tmp_path / "c.pkl")
        save_checkpoints([Checkpoint(step=1, state=p1.state_dict())], path)
        p2 = RLPartitioner(3, config=cfg, rng=7)
        p2.load_state_dict(load_checkpoints(path)[0].state)
        for a, b in zip(p1.policy.parameters(), p2.policy.parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_creates_directories(self, tmp_path):
        cfg = RLPartitionerConfig(hidden=8, n_sage_layers=1)
        p = RLPartitioner(2, config=cfg, rng=0)
        path = str(tmp_path / "deep" / "dir" / "c.pkl")
        save_checkpoints([Checkpoint(step=1, state=p.state_dict())], path)
        assert len(load_checkpoints(path)) == 1


class TestUnconstrainedRL:
    def test_wraps_partitioner_without_solver(self, roomy_package):
        g = random_dag(6, 20)
        env = PartitionEnvironment(g, AnalyticalCostModel(roomy_package), 4)
        cfg = RLPartitionerConfig(
            hidden=8, n_sage_layers=1,
            ppo=PPOConfig(n_rollouts=4, n_minibatches=1, n_epochs=1),
        )
        arm = UnconstrainedRL(RLPartitioner(4, config=cfg, rng=0))
        result = arm.search(env, 8)
        assert result.n_samples == 8
        assert result.metadata["use_solver"] is False
        # untrained policy: essentially all samples invalid (paper §5.1)
        assert (result.improvements == 0).mean() >= 0.75
