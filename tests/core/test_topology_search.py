"""End-to-end search across interconnect topologies."""

import numpy as np
import pytest

from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.core.baselines import RandomSearch, SimulatedAnnealing
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.package import MCMPackage
from repro.hardware.simulator import PipelineSimulator
from repro.hardware.topology import BiRing, Crossbar, Mesh2D, UniRing
from repro.rl.features import N_FEATURES, N_TOPO_FEATURES, featurize
from repro.rl.ppo import PPOConfig
from repro.solver.constraints import validate_partition
from tests.conftest import random_dag


def _env(graph, topology, objective="throughput", simulator=False):
    package = MCMPackage(n_chips=topology.n_chips, topology=topology)
    model = PipelineSimulator(package) if simulator else AnalyticalCostModel(package)
    return PartitionEnvironment(
        graph, model, topology.n_chips, objective=objective
    )


def _partitioner(topology, rng=0):
    cfg = RLPartitionerConfig(
        hidden=16,
        n_sage_layers=2,
        ppo=PPOConfig(n_rollouts=8, n_minibatches=2, n_epochs=2),
    )
    return RLPartitioner(topology.n_chips, config=cfg, rng=rng, topology=topology)


TOPOLOGIES = [BiRing(4), Mesh2D(2, 2), Crossbar(4)]


class TestRLSearchAcrossTopologies:
    @pytest.mark.parametrize("topology", TOPOLOGIES, ids=lambda t: t.name)
    def test_search_finds_valid_partition_with_improvement(self, topology):
        graph = random_dag(0, 16)
        env = _env(graph, topology)
        result = _partitioner(topology).search(env, 16, train=True)
        assert result.best_assignment is not None
        assert result.best_improvement > 0
        report = validate_partition(
            graph, result.best_assignment, topology.n_chips, topology=topology
        )
        assert report.ok

    def test_one_policy_runs_on_every_platform(self):
        """Topology-conditioned features share a width, so one set of
        weights trains and deploys across interconnects."""
        graph = random_dag(1, 12)
        partitioner = _partitioner(UniRing(4), rng=7)
        state = partitioner.state_dict()
        for topology in TOPOLOGIES:
            env = _env(graph, topology)
            partitioner.load_state_dict(state)
            result = partitioner.search(env, 8, train=False)
            assert result.best_improvement > 0

    def test_legacy_partitioner_rejects_foreign_topology(self):
        graph = random_dag(2, 10)
        env = _env(graph, Mesh2D(2, 2))
        legacy = RLPartitioner(4, rng=0)  # no topology: uni-ring only
        with pytest.raises(ValueError, match="topology-conditioned"):
            legacy.search(env, 4)

    def test_chip_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="topology is for"):
            RLPartitioner(4, rng=0, topology=BiRing(5))

    def test_simulator_platform_on_mesh(self):
        graph = random_dag(4, 14)
        topology = Mesh2D(2, 2)
        env = _env(graph, topology, simulator=True)
        result = _partitioner(topology, rng=3).search(env, 12, train=False)
        assert result.best_improvement > 0


class TestCrossPlatformConsistency:
    def test_conditioned_partitioner_rejects_legacy_environment(self):
        """A non-ring partitioner on an environment that validates legacy
        uni-ring semantics must raise, not train on all-invalid rollouts."""

        class _BareModel:
            def evaluate(self, graph, assignment):  # no .package attribute
                package = MCMPackage(n_chips=4)
                return AnalyticalCostModel(package).evaluate(graph, assignment)

        graph = random_dag(3, 10)
        env = PartitionEnvironment(graph, _BareModel(), 4)
        assert env.topology is None
        with pytest.raises(ValueError, match="legacy uni-ring semantics"):
            _partitioner(Mesh2D(2, 2)).search(env, 4)

    def test_legacy_features_rejected_by_conditioned_partitioner(self):
        """Width mismatches fail with a clear error, not a deep shape crash."""
        graph = random_dag(4, 10)
        topology = Mesh2D(2, 2)
        env = _env(graph, topology)
        legacy_feats = featurize(graph)  # no topology columns
        with pytest.raises(ValueError, match="width"):
            _partitioner(topology).search(env, 4, features=legacy_feats)

    def test_parallel_featurizes_with_the_env_topology(self):
        """parallel_search must condition features on the environment's
        platform, exactly like the serial path — a partitioner constructed
        for another interconnect follows the env."""
        from repro.parallel import ParallelConfig, parallel_search

        graph = random_dag(0, 12)
        mesh = Mesh2D(2, 2)
        env = _env(graph, mesh)
        cfg = ParallelConfig(n_workers=1, seed=9)
        auto = parallel_search(
            _partitioner(BiRing(4), rng=1), env, 8, train=False, config=cfg
        )
        explicit = parallel_search(
            _partitioner(BiRing(4), rng=1),
            env,
            8,
            train=False,
            config=cfg,
            features=featurize(graph, mesh),
        )
        assert auto.improvements.tolist() == explicit.improvements.tolist()


class TestParallelAcrossTopologies:
    def test_pool_matches_inline_on_mesh(self):
        """The parallel schedule stays worker-count invariant off the ring."""
        from repro.parallel import ParallelConfig, parallel_search

        topology = Mesh2D(2, 2)
        graph = random_dag(0, 16)
        env = _env(graph, topology)
        runs = []
        for workers in (1, 2):
            partitioner = _partitioner(topology, rng=0)
            result = parallel_search(
                partitioner,
                env,
                16,
                config=ParallelConfig(n_workers=workers, seed=5),
            )
            runs.append(result.improvements.tolist())
        assert runs[0] == runs[1]
        assert max(runs[0]) > 0


class TestBaselinesAcrossTopologies:
    @pytest.mark.parametrize("topology", [BiRing(3), Crossbar(3)], ids=lambda t: t.name)
    def test_random_search(self, topology):
        env = _env(random_dag(5, 10), topology)
        result = RandomSearch(rng=0).search(env, 6)
        assert result.best_improvement > 0

    def test_simulated_annealing_on_mesh(self):
        topology = Mesh2D(2, 2)
        env = _env(random_dag(6, 10), topology)
        result = SimulatedAnnealing(rng=0).search(env, 6)
        assert result.best_improvement > 0


class TestEnvironmentTopology:
    def test_env_derives_topology_from_package(self):
        topology = BiRing(4)
        env = _env(random_dag(7, 8), topology)
        assert env.topology == topology

    def test_static_reasons_differ_by_platform(self):
        graph = random_dag(8, 8)
        backward = np.zeros(graph.n_nodes, dtype=np.int64)
        backward[graph.topological_order()[0]] = 1  # first node above the rest
        ring_env = _env(graph, UniRing(2))
        sample = ring_env.evaluate(backward)
        assert not sample.result.valid
        assert "acyclic_dataflow" in sample.result.failure_reason
        # On the bi-ring the same assignment is statically fine.
        bi_env = _env(graph, BiRing(2))
        assert bi_env.evaluate(backward).result.valid

    def test_explicit_topology_mismatch_raises(self):
        graph = random_dag(9, 8)
        package = MCMPackage(n_chips=4)
        with pytest.raises(ValueError, match="topology is for"):
            PartitionEnvironment(
                graph, AnalyticalCostModel(package), 4, topology=BiRing(5)
            )


class TestTopologyFeatures:
    def test_legacy_width_unchanged(self):
        graph = random_dag(10, 9)
        assert featurize(graph).node_features.shape[1] == N_FEATURES

    def test_conditioned_width_constant_across_platforms(self):
        graph = random_dag(10, 9)
        widths = {
            featurize(graph, t).node_features.shape[1]
            for t in [UniRing(4)] + TOPOLOGIES
        }
        assert widths == {N_FEATURES + N_TOPO_FEATURES}

    def test_descriptor_distinguishes_platforms(self):
        # 6 chips: at 4 chips a 2x2 mesh *is* the 4-cycle bi-ring, so the
        # descriptors legitimately coincide there.
        graph = random_dag(10, 9)
        rows = {
            t.name: tuple(featurize(graph, t).node_features[0, N_FEATURES:])
            for t in [UniRing(6), BiRing(6), Mesh2D(2, 3), Crossbar(6)]
        }
        assert len(set(rows.values())) == len(rows)
        # Total-order flag: set exactly for the uni-ring.
        assert rows["uniring"][-1] == 1.0
        assert all(v[-1] == 0.0 for k, v in rows.items() if k != "uniring")

    def test_descriptor_broadcast_to_every_node(self):
        graph = random_dag(11, 7)
        feats = featurize(graph, Mesh2D(2, 2)).node_features
        np.testing.assert_array_equal(
            feats[:, N_FEATURES:], np.tile(feats[0, N_FEATURES:], (graph.n_nodes, 1))
        )
