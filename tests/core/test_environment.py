"""Tests for the partition environment."""

import numpy as np
import pytest

from repro.core.baselines import greedy_partition
from repro.core.environment import PartitionEnvironment
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.package import MCMPackage


@pytest.fixture
def env(chain_graph, roomy_package):
    return PartitionEnvironment(
        chain_graph, AnalyticalCostModel(roomy_package), roomy_package.n_chips
    )


class TestBaseline:
    def test_default_baseline_is_greedy(self, chain_graph, roomy_package):
        env = PartitionEnvironment(
            chain_graph, AnalyticalCostModel(roomy_package), 4
        )
        expected = greedy_partition(chain_graph, 4)
        np.testing.assert_array_equal(env.baseline_assignment, expected)
        assert env.baseline_throughput > 0

    def test_custom_baseline(self, chain_graph, roomy_package):
        env = PartitionEnvironment(
            chain_graph,
            AnalyticalCostModel(roomy_package),
            4,
            baseline_assignment=np.zeros(10, dtype=int),
        )
        assert env.baseline_throughput == pytest.approx(
            1e6 / chain_graph.total_compute_us()
        )

    def test_invalid_baseline_rejected(self, chain_graph, roomy_package):
        backward = np.zeros(10, dtype=int)
        backward[:5] = 1
        with pytest.raises(ValueError):
            PartitionEnvironment(
                chain_graph,
                AnalyticalCostModel(roomy_package),
                4,
                baseline_assignment=backward,
            )


class TestEvaluate:
    def test_improvement_relative_to_baseline(self, env):
        sample = env.evaluate(env.baseline_assignment)
        assert sample.improvement == pytest.approx(1.0)

    def test_invalid_static_gets_zero(self, env):
        skipped = np.zeros(10, dtype=int)
        skipped[5:] = 2  # chip 1 skipped
        sample = env.evaluate(skipped)
        assert sample.improvement == 0.0
        assert not sample.result.valid
        assert sample.result.failure_reason.startswith("static:")

    def test_static_check_can_be_disabled(self, chain_graph, roomy_package):
        env = PartitionEnvironment(
            chain_graph,
            AnalyticalCostModel(roomy_package),
            4,
            check_static=False,
        )
        skipped = np.zeros(10, dtype=int)
        skipped[5:] = 2
        sample = env.evaluate(skipped)
        # the analytical model itself has no notion of skipping
        assert sample.result.valid

    def test_sample_counter(self, env):
        assert env.n_samples == 0
        env.evaluate(env.baseline_assignment)
        env.evaluate(env.baseline_assignment)
        assert env.n_samples == 2

    def test_reward_is_improvement(self, env):
        sample = env.evaluate(env.baseline_assignment)
        assert env.reward(sample) == sample.improvement
