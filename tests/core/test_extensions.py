"""Tests for extension features: latency objective, hill climbing, epsilon."""

import numpy as np
import pytest

from repro.core.baselines import HillClimbing, random_baseline_partition
from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitionerConfig
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.simulator import PipelineSimulator
from repro.solver.constraints import validate_partition
from tests.conftest import random_dag


class TestLatencyObjective:
    def test_latency_fields_populated(self, chain_graph, roomy_package):
        model = AnalyticalCostModel(roomy_package)
        res = model.evaluate(chain_graph, np.zeros(10, dtype=int))
        assert np.isfinite(res.latency_us)
        # single chip: latency equals the stage time
        assert res.latency_us == pytest.approx(res.runtime_us)

    def test_pipelining_trades_latency_for_throughput(self, chain_graph, roomy_package):
        model = AnalyticalCostModel(roomy_package)
        single = model.evaluate(chain_graph, np.zeros(10, dtype=int))
        split = np.zeros(10, dtype=int)
        split[5:] = 1
        dual = model.evaluate(chain_graph, split)
        assert dual.throughput > single.throughput
        assert dual.latency_us > single.latency_us  # transfers add latency

    def test_simulator_latency(self, chain_graph, roomy_package):
        sim = PipelineSimulator(roomy_package)
        split = np.zeros(10, dtype=int)
        split[5:] = 1
        res = sim.evaluate(chain_graph, split)
        assert res.latency_us >= res.chip_latency_us.sum() - 1e-9

    def test_latency_environment(self, chain_graph, roomy_package):
        env = PartitionEnvironment(
            chain_graph,
            AnalyticalCostModel(roomy_package),
            4,
            objective="latency",
        )
        sample = env.evaluate(env.baseline_assignment)
        assert sample.improvement == pytest.approx(1.0)
        # everything on one chip: lower latency than the pipelined baseline
        single = env.evaluate(np.zeros(10, dtype=int))
        assert single.improvement > 1.0

    def test_rejects_unknown_objective(self, chain_graph, roomy_package):
        with pytest.raises(ValueError):
            PartitionEnvironment(
                chain_graph,
                AnalyticalCostModel(roomy_package),
                4,
                objective="power",
            )


class TestHillClimbing:
    def test_improves_over_greedy_start(self, roomy_package):
        g = random_dag(9, 30)
        env = PartitionEnvironment(g, AnalyticalCostModel(roomy_package), 4)
        result = HillClimbing(rng=0).search(env, 40)
        assert result.best_improvement >= 1.0 or result.best_improvement > 0
        assert result.n_samples == 40

    def test_best_assignment_valid_when_found(self, roomy_package):
        g = random_dag(10, 25)
        env = PartitionEnvironment(g, AnalyticalCostModel(roomy_package), 4)
        result = HillClimbing(rng=1).search(env, 40)
        if result.best_assignment is not None and result.best_improvement > 0:
            assert validate_partition(g, result.best_assignment, 4).ok

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            HillClimbing(restart_after=0)


class TestExploreEps:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            RLPartitionerConfig(explore_eps=1.0)
        assert RLPartitionerConfig(explore_eps=0.0).explore_eps == 0.0


class TestRandomBaseline:
    def test_is_valid_and_deterministic(self):
        g = random_dag(11, 30)
        a = random_baseline_partition(g, 4, seed=5)
        b = random_baseline_partition(g, 4, seed=5)
        np.testing.assert_array_equal(a, b)
        assert validate_partition(g, a, 4).ok
