"""Tests for the Equation 6 autoregressive proposal mode."""

import numpy as np
import pytest

from repro.rl.features import featurize
from repro.rl.policy import PartitionPolicy
from tests.conftest import random_dag


@pytest.fixture
def setup():
    g = random_dag(2, 12)
    feats = featurize(g)
    policy = PartitionPolicy(n_chips=3, hidden=8, n_sage_layers=1, rng=0)
    return g, feats, policy


class TestAutoregressive:
    def test_shapes(self, setup):
        g, feats, policy = setup
        assignment, probs = policy.propose_autoregressive(feats, rng=0)
        assert assignment.shape == (12,)
        assert probs.shape == (12, 3)
        assert assignment.min() >= 0 and assignment.max() < 3

    def test_probs_are_distributions(self, setup):
        g, feats, policy = setup
        _, probs = policy.propose_autoregressive(feats, rng=0)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_deterministic_given_seed(self, setup):
        g, feats, policy = setup
        a, _ = policy.propose_autoregressive(feats, rng=42)
        b, _ = policy.propose_autoregressive(feats, rng=42)
        np.testing.assert_array_equal(a, b)

    def test_custom_order(self, setup):
        g, feats, policy = setup
        order = np.arange(12)[::-1]
        assignment, _ = policy.propose_autoregressive(feats, rng=0, order=order)
        assert assignment.shape == (12,)

    def test_rejects_bad_order(self, setup):
        g, feats, policy = setup
        with pytest.raises(ValueError):
            policy.propose_autoregressive(feats, rng=0, order=np.zeros(12, dtype=int))

    def test_earlier_decisions_condition_later_ones(self, setup):
        """The distribution of a late node differs across runs whose early
        decisions differ (true sequential conditioning)."""
        g, feats, policy = setup
        rows = []
        for seed in range(6):
            _, probs = policy.propose_autoregressive(feats, rng=seed)
            rows.append(probs[-1])
        rows = np.array(rows)
        assert rows.std(axis=0).max() > 1e-6
