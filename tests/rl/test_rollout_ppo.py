"""Tests for the rollout buffer and PPO trainer."""

import numpy as np
import pytest

from repro.rl.features import featurize
from repro.rl.policy import PartitionPolicy
from repro.rl.ppo import PPOConfig, PPOTrainer
from repro.rl.rollout import Rollout, RolloutBuffer
from tests.conftest import random_dag


def _rollout(n=5, reward=1.0, seed=0):
    rng = np.random.default_rng(seed)
    return Rollout(
        conditioning=rng.integers(0, 3, n),
        candidate=rng.integers(0, 3, n),
        repaired=rng.integers(0, 3, n),
        log_prob=np.log(np.full(n, 1 / 3)),
        value=0.5,
        reward=reward,
    )


class TestRolloutBuffer:
    def test_add_and_len(self):
        buf = RolloutBuffer()
        buf.add(_rollout())
        assert len(buf) == 1
        buf.clear()
        assert len(buf) == 0

    def test_advantages_centered(self):
        buf = RolloutBuffer()
        for r in [0.0, 1.0, 2.0, 3.0]:
            buf.add(_rollout(reward=r))
        adv = buf.advantages()
        assert adv.mean() == pytest.approx(0.0, abs=1e-9)
        assert adv.std() == pytest.approx(1.0, rel=1e-3)

    def test_advantages_unnormalized(self):
        buf = RolloutBuffer()
        buf.add(_rollout(reward=2.0))
        adv = buf.advantages(normalize=False)
        assert adv[0] == pytest.approx(1.5)  # reward 2.0 - value 0.5

    def test_minibatch_partition(self):
        buf = RolloutBuffer()
        for k in range(10):
            buf.add(_rollout(seed=k))
        rng = np.random.default_rng(0)
        batches = buf.minibatch_indices(4, rng)
        all_idx = np.concatenate(batches)
        assert sorted(all_idx.tolist()) == list(range(10))

    def test_empty_advantages(self):
        assert RolloutBuffer().advantages().size == 0


class TestPPOConfig:
    def test_paper_defaults(self):
        cfg = PPOConfig()
        assert cfg.n_rollouts == 20
        assert cfg.n_minibatches == 4
        assert cfg.n_epochs == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_rollouts": 0},
            {"n_minibatches": 21},
            {"clip_ratio": 0.0},
            {"clip_ratio": 1.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            PPOConfig(**kwargs)


class TestPPOTrainer:
    def _setup(self, n_nodes=8, n_chips=3):
        g = random_dag(2, n_nodes)
        feats = featurize(g)
        policy = PartitionPolicy(
            n_chips=n_chips, hidden=16, n_sage_layers=2, rng=0
        )
        cfg = PPOConfig(n_rollouts=6, n_minibatches=2, n_epochs=2)
        trainer = PPOTrainer(policy, cfg, rng=0)
        return g, feats, policy, trainer

    def _fill_buffer(self, policy, feats, rewards):
        buf = RolloutBuffer()
        rng = np.random.default_rng(0)
        for r in rewards:
            candidate, conditioning, probs = policy.propose(feats, rng=rng)
            n = feats.n_nodes
            buf.add(
                Rollout(
                    conditioning=conditioning,
                    candidate=candidate,
                    repaired=candidate,
                    log_prob=np.log(probs[np.arange(n), candidate] + 1e-12),
                    value=0.0,
                    reward=r,
                )
            )
        return buf

    def test_update_returns_stats(self):
        g, feats, policy, trainer = self._setup()
        buf = self._fill_buffer(policy, feats, [1.0, 2.0, 1.5, 0.5, 1.2, 0.8])
        stats = trainer.update(feats, buf)
        assert np.isfinite(stats.policy_loss)
        assert np.isfinite(stats.value_loss)
        assert stats.entropy > 0
        assert stats.mean_reward == pytest.approx(1.1666, rel=1e-3)

    def test_update_changes_parameters(self):
        g, feats, policy, trainer = self._setup()
        before = [p.data.copy() for p in policy.parameters()]
        buf = self._fill_buffer(policy, feats, [1.0, 2.0, 1.5, 0.5, 1.2, 0.8])
        trainer.update(feats, buf)
        changed = any(
            not np.allclose(b, p.data) for b, p in zip(before, policy.parameters())
        )
        assert changed

    def test_empty_buffer_rejected(self):
        g, feats, policy, trainer = self._setup()
        with pytest.raises(ValueError):
            trainer.update(feats, RolloutBuffer())

    def test_rewarded_actions_gain_probability(self):
        """Nodes rewarded for a specific placement must drift toward it."""
        g, feats, policy, trainer = self._setup(n_nodes=6, n_chips=2)
        n = feats.n_nodes
        target = np.zeros(n, dtype=int)  # always reward all-chip-0

        def reward_of(candidate):
            return float((candidate == target).mean())

        rng = np.random.default_rng(1)
        for _ in range(18):
            buf = RolloutBuffer()
            for _ in range(6):
                candidate, conditioning, probs = policy.propose(feats, rng=rng)
                buf.add(
                    Rollout(
                        conditioning=conditioning,
                        candidate=candidate,
                        repaired=candidate,
                        log_prob=np.log(probs[np.arange(n), candidate] + 1e-12),
                        value=0.0,
                        reward=reward_of(candidate),
                    )
                )
            trainer.update(feats, buf)
        out = policy.forward_batch(feats, np.zeros((1, n), dtype=int))
        mean_p_target = out.probs[0, np.arange(n), target].mean()
        assert mean_p_target > 0.55
