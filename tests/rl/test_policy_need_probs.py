"""``forward_batch(need_probs=False)``: the PPO-update fast path."""

import numpy as np

from repro.rl.features import featurize
from repro.rl.policy import PartitionPolicy
from tests.conftest import random_dag


class TestNeedProbs:
    def test_probs_skipped_but_differentiable_outputs_identical(self):
        graph = random_dag(1, 14)
        feats = featurize(graph)
        policy = PartitionPolicy(n_chips=3, hidden=16, n_sage_layers=2, rng=0)
        conditioning = np.random.default_rng(0).integers(0, 3, size=(4, 14))
        with_probs = policy.forward_batch(feats, conditioning)
        without = policy.forward_batch(feats, conditioning, need_probs=False)
        assert without.probs is None
        np.testing.assert_array_equal(
            with_probs.log_probs.data, without.log_probs.data
        )
        np.testing.assert_array_equal(
            with_probs.values.data, without.values.data
        )

    def test_default_still_materialises_probs(self):
        graph = random_dag(2, 10)
        feats = featurize(graph)
        policy = PartitionPolicy(n_chips=2, hidden=8, n_sage_layers=1, rng=0)
        out = policy.forward_batch(feats, np.zeros((2, 10), dtype=np.int64))
        assert out.probs is not None
        assert out.probs.shape == (2, 10, 2)
        np.testing.assert_allclose(out.probs.sum(axis=2), 1.0, atol=1e-9)
