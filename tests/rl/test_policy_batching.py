"""Equivalence tests for the batched/cached policy hot path.

The vectorised ``forward_batch`` and the encoder cache are pure
restructurings: these tests pin them to the original per-row semantics
(bitwise where the maths is identical, allclose where accumulation order
may differ) and prove the cache invalidates on every weight mutation.
"""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.optim import SGD
from repro.nn.tensor import Tensor
from repro.rl.features import featurize
from repro.rl.policy import PartitionPolicy
from tests.conftest import random_dag


@pytest.fixture
def policy():
    return PartitionPolicy(n_chips=4, hidden=32, n_sage_layers=2, rng=0)


def _forward_batch_reference(policy, features, prev_placements):
    """The original per-``k`` loop implementation of ``forward_batch``."""
    n = features.n_nodes
    states = policy._as_state(prev_placements)
    r = states.shape[0]
    h = policy.encode(features, use_cache=False)
    agg = features.agg_matrix
    blocks = [
        F.concat([h, Tensor(states[k]), Tensor(agg @ states[k])], axis=1)
        for k in range(r)
    ]
    stacked = F.concat(blocks, axis=0) if r > 1 else blocks[0]
    logits = policy._policy_head(stacked)
    log_probs = F.log_softmax(logits, axis=-1)

    pooled = F.mean(h, axis=0, keepdims=True)
    usage = states.mean(axis=1)
    pooled_rows = F.concat([pooled] * r, axis=0) if r > 1 else pooled
    value_in = F.concat([pooled_rows, Tensor(usage)], axis=1)
    values = policy.value_out(F.relu(policy.value_hidden(value_in)))
    values = F.reshape(values, (r,))
    probs = np.exp(log_probs.data).reshape(r, n, policy.n_chips)
    return log_probs.data, values.data, probs


class TestForwardBatchVectorization:
    @pytest.mark.parametrize("r", [1, 2, 5])
    def test_matches_per_row_loop_bitwise(self, policy, r):
        g = random_dag(3, 23)
        feats = featurize(g)
        rng = np.random.default_rng(0)
        prev = rng.integers(0, 4, (r, g.n_nodes))
        out = policy.forward_batch(feats, prev)
        ref_lp, ref_values, ref_probs = _forward_batch_reference(policy, feats, prev)
        np.testing.assert_array_equal(out.log_probs.data, ref_lp)
        np.testing.assert_array_equal(out.values.data, ref_values)
        np.testing.assert_array_equal(out.probs, ref_probs)

    def test_soft_states_match(self, policy):
        g = random_dag(7, 12)
        feats = featurize(g)
        rng = np.random.default_rng(1)
        soft = rng.random((3, g.n_nodes, 4))
        soft /= soft.sum(axis=2, keepdims=True)
        out = policy.forward_batch(feats, soft)
        ref_lp, ref_values, _ = _forward_batch_reference(policy, feats, soft)
        np.testing.assert_array_equal(out.log_probs.data, ref_lp)
        np.testing.assert_array_equal(out.values.data, ref_values)


class TestEncodeCache:
    def test_cached_matches_uncached(self, policy, diamond_graph):
        feats = featurize(diamond_graph)
        cached = policy.encode(feats)
        uncached = policy.encode(feats, use_cache=False)
        np.testing.assert_array_equal(cached.data, uncached.data)

    def test_cache_hit_returns_same_tensor(self, policy, diamond_graph):
        feats = featurize(diamond_graph)
        assert policy.encode(feats) is policy.encode(feats)

    def test_distinct_features_get_distinct_entries(self, policy):
        f1 = featurize(random_dag(0, 9))
        f2 = featurize(random_dag(1, 9))
        h1 = policy.encode(f1)
        h2 = policy.encode(f2)
        assert h1 is not h2
        assert policy.encode(f1) is h1

    def test_invalidated_by_optimizer_step(self, policy, diamond_graph):
        feats = featurize(diamond_graph)
        before = policy.encode(feats)
        opt = SGD(policy.parameters(), lr=0.1)
        loss = F.mean(policy.encode(feats))
        policy.zero_grad()
        loss.backward()
        opt.step()
        after = policy.encode(feats)
        assert after is not before
        np.testing.assert_array_equal(
            after.data, policy.encode(feats, use_cache=False).data
        )

    def test_invalidated_by_load_state_dict(self, diamond_graph):
        feats = featurize(diamond_graph)
        a = PartitionPolicy(n_chips=4, hidden=16, n_sage_layers=2, rng=0)
        b = PartitionPolicy(n_chips=4, hidden=16, n_sage_layers=2, rng=1)
        stale = a.encode(feats)
        a.load_state_dict(b.state_dict())
        fresh = a.encode(feats)
        assert fresh is not stale
        np.testing.assert_array_equal(fresh.data, b.encode(feats, use_cache=False).data)

    def test_version_counter_monotone(self, policy):
        v0 = policy.weights_version()
        opt = SGD(policy.parameters(), lr=0.1)
        for p in policy.parameters():
            p.grad = np.ones_like(p.data)
        opt.step()
        assert policy.weights_version() > v0


class TestProposeBatch:
    def test_single_candidate_matches_propose(self, policy, diamond_graph):
        feats = featurize(diamond_graph)
        batch = policy.propose_batch(feats, 1, rng=11)
        candidate, conditioning, probs = policy.propose(feats, rng=11)
        np.testing.assert_array_equal(batch.candidates[0], candidate)
        np.testing.assert_array_equal(batch.conditionings[0], conditioning)
        np.testing.assert_array_equal(batch.probs[0], probs)

    def test_shapes(self, policy):
        g = random_dag(5, 17)
        feats = featurize(g)
        batch = policy.propose_batch(feats, 6, rng=0)
        assert batch.candidates.shape == (6, 17)
        assert batch.conditionings.shape == (6, 17)
        assert batch.probs.shape == (6, 17, 4)
        assert batch.values.shape == (6,)

    def test_values_match_dedicated_value_pass(self, policy):
        """The threaded values equal a fresh evaluation at the conditioning
        placement (the old ``_value_of`` round-trip), for ``T >= 2``."""
        g = random_dag(9, 14)
        feats = featurize(g)
        batch = policy.propose_batch(feats, 3, rng=2)
        for k in range(3):
            out = policy.forward_batch(feats, batch.conditionings[k][None, :])
            np.testing.assert_allclose(
                batch.values[k], float(out.values.data[0]), rtol=1e-12
            )

    def test_rejects_zero_candidates(self, policy, diamond_graph):
        with pytest.raises(ValueError):
            policy.propose_batch(featurize(diamond_graph), 0, rng=0)
