"""Tests for policy architecture variants and the refinement loop."""

import numpy as np
import pytest

from repro.rl.features import featurize
from repro.rl.policy import PartitionPolicy
from tests.conftest import random_dag


class TestArchitectureVariants:
    @pytest.mark.parametrize("n_sage_layers", [1, 3, 8])
    def test_sage_depths(self, n_sage_layers, diamond_graph):
        policy = PartitionPolicy(
            n_chips=3, hidden=8, n_sage_layers=n_sage_layers, rng=0
        )
        out = policy.forward_batch(featurize(diamond_graph), np.zeros((1, 5), dtype=int))
        assert out.probs.shape == (1, 5, 3)

    @pytest.mark.parametrize("n_policy_layers", [1, 2, 3])
    def test_head_depths(self, n_policy_layers, diamond_graph):
        policy = PartitionPolicy(
            n_chips=3, hidden=8, n_sage_layers=1,
            n_policy_layers=n_policy_layers, rng=0,
        )
        out = policy.forward_batch(featurize(diamond_graph), np.zeros((1, 5), dtype=int))
        assert np.isfinite(out.probs).all()

    def test_paper_default_shape(self):
        """Defaults follow Section 5.1: 8 SAGE layers x 128, 2-layer head."""
        policy = PartitionPolicy(n_chips=4)
        assert len(policy.sage_layers) == 8
        assert policy.sage_layers[0].w_self.shape[1] == 128
        assert len(policy.policy_layers) == 2

    def test_parameter_count_scales_with_width(self):
        small = PartitionPolicy(n_chips=4, hidden=16, n_sage_layers=2, rng=0)
        large = PartitionPolicy(n_chips=4, hidden=64, n_sage_layers=2, rng=0)
        count = lambda p: sum(w.data.size for w in p.parameters())
        assert count(large) > count(small) * 4


class TestRefinementLoop:
    @pytest.mark.parametrize("iters", [1, 2, 4])
    def test_refine_iters(self, iters, diamond_graph):
        policy = PartitionPolicy(
            n_chips=3, hidden=8, n_sage_layers=1, refine_iters=iters, rng=0
        )
        candidate, conditioning, probs = policy.propose(featurize(diamond_graph), rng=0)
        assert candidate.shape == (5,)
        assert probs.shape == (5, 3)

    def test_single_iter_conditions_on_nothing(self, diamond_graph):
        policy = PartitionPolicy(
            n_chips=3, hidden=8, n_sage_layers=1, refine_iters=1, rng=0
        )
        _, conditioning, _ = policy.propose(featurize(diamond_graph), rng=0)
        np.testing.assert_array_equal(conditioning, 0)

    def test_refinement_uses_previous_round(self):
        """With T=2 the conditioning equals the first-round sample, which
        must influence the final distribution."""
        g = random_dag(4, 15)
        feats = featurize(g)
        policy = PartitionPolicy(n_chips=4, hidden=16, n_sage_layers=2,
                                 refine_iters=2, rng=0)
        candidate, conditioning, _ = policy.propose(feats, rng=3)
        # conditioning is a real placement (not the zero vector) with
        # overwhelming probability on 15 nodes x 4 chips
        assert conditioning.max() > 0
