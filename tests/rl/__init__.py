"""Test package."""
