"""Tests for featurisation and the partition policy network."""

import numpy as np
import pytest

from repro.rl.features import N_FEATURES, featurize
from repro.rl.policy import PartitionPolicy
from tests.conftest import random_dag


class TestFeaturize:
    def test_shapes(self, diamond_graph):
        feats = featurize(diamond_graph)
        assert feats.node_features.shape == (5, N_FEATURES)
        assert feats.n_nodes == 5

    def test_features_finite(self):
        g = random_dag(0, 40)
        feats = featurize(g)
        assert np.isfinite(feats.node_features).all()

    def test_position_feature_monotone_on_chain(self, chain_graph):
        feats = featurize(chain_graph)
        position = feats.node_features[:, 4]
        assert np.all(np.diff(position) > 0)

    def test_onehot_category(self, diamond_graph):
        feats = featurize(diamond_graph)
        onehot = feats.node_features[:, 8:]
        np.testing.assert_allclose(onehot.sum(axis=1), 1.0)

    def test_scale_invariance(self, chain_graph):
        """Features must not change when all costs are scaled uniformly."""
        from dataclasses import replace

        scaled = replace(
            chain_graph,
            compute_us=chain_graph.compute_us * 1000.0,
            output_bytes=chain_graph.output_bytes * 1000.0,
            _cache={},
        )
        a = featurize(chain_graph).node_features
        b = featurize(scaled).node_features
        np.testing.assert_allclose(a, b, atol=1e-9)


class TestPolicyForward:
    @pytest.fixture
    def policy(self):
        return PartitionPolicy(n_chips=4, hidden=16, n_sage_layers=2, rng=0)

    def test_forward_batch_shapes(self, policy, diamond_graph):
        feats = featurize(diamond_graph)
        prev = np.zeros((3, 5), dtype=int)
        out = policy.forward_batch(feats, prev)
        assert out.log_probs.shape == (15, 4)
        assert out.values.shape == (3,)
        assert out.probs.shape == (3, 5, 4)

    def test_probs_are_distributions(self, policy, diamond_graph):
        feats = featurize(diamond_graph)
        out = policy.forward_batch(feats, np.zeros((1, 5), dtype=int))
        np.testing.assert_allclose(out.probs.sum(axis=-1), 1.0)

    def test_state_conditioning_changes_output(self, policy, diamond_graph):
        feats = featurize(diamond_graph)
        a = policy.forward_batch(feats, np.zeros((1, 5), dtype=int)).probs
        b = policy.forward_batch(feats, np.full((1, 5), 3)).probs
        assert not np.allclose(a, b)

    def test_propose_returns_valid_shapes(self, policy, diamond_graph):
        feats = featurize(diamond_graph)
        candidate, conditioning, probs = policy.propose(feats, rng=0)
        assert candidate.shape == (5,)
        assert conditioning.shape == (5,)
        assert probs.shape == (5, 4)
        assert candidate.min() >= 0 and candidate.max() < 4

    def test_propose_deterministic_given_seed(self, policy, diamond_graph):
        feats = featurize(diamond_graph)
        a, _, _ = policy.propose(feats, rng=5)
        b, _, _ = policy.propose(feats, rng=5)
        np.testing.assert_array_equal(a, b)

    def test_refine_iters_validated(self):
        with pytest.raises(ValueError):
            PartitionPolicy(n_chips=2, refine_iters=0)

    def test_soft_state_accepted(self, policy, diamond_graph):
        feats = featurize(diamond_graph)
        soft = np.full((2, 5, 4), 0.25)
        out = policy.forward_batch(feats, soft)
        assert out.probs.shape == (2, 5, 4)

    def test_transfers_across_graphs(self, policy):
        """The same policy evaluates graphs of different sizes."""
        for seed, n in [(0, 10), (1, 25)]:
            g = random_dag(seed, n)
            out = policy.forward_batch(featurize(g), np.zeros((1, n), dtype=int))
            assert out.probs.shape == (1, n, 4)

    def test_gradients_flow_to_all_parameters(self, policy, diamond_graph):
        from repro.nn import functional as F

        feats = featurize(diamond_graph)
        out = policy.forward_batch(feats, np.zeros((2, 5), dtype=int))
        loss = F.add(F.mean(out.log_probs), F.mean(out.values))
        loss.backward()
        with_grad = [p for p in policy.parameters() if p.grad is not None]
        assert len(with_grad) == len(policy.parameters())
