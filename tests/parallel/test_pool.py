"""Unit tests for the worker-pool primitives."""

import numpy as np
import pytest

from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.package import MCMPackage
from repro.parallel import (
    InlineExecutor,
    ParallelConfig,
    ReplayTask,
    ShardTask,
    WorkerHarness,
    WorkerPool,
    fork_available,
    task_rng,
)
from repro.parallel.search import shard_sizes, window_sizes
from repro.rl.features import featurize
from repro.rl.ppo import PPOConfig
from tests.conftest import random_dag

N_CHIPS = 3


def _tiny_partitioner(rng=0):
    cfg = RLPartitionerConfig(
        hidden=16,
        n_sage_layers=2,
        ppo=PPOConfig(n_rollouts=6, n_minibatches=2, n_epochs=2),
    )
    return RLPartitioner(N_CHIPS, config=cfg, rng=rng)


@pytest.fixture
def env():
    graph = random_dag(3, 16)
    package = MCMPackage(n_chips=N_CHIPS)
    return PartitionEnvironment(graph, AnalyticalCostModel(package), N_CHIPS)


class TestScheduling:
    def test_shard_sizes_near_even(self):
        assert shard_sizes(20, 4) == [5, 5, 5, 5]
        assert shard_sizes(10, 4) == [3, 3, 2, 2]
        assert shard_sizes(3, 4) == [1, 1, 1]  # no empty shards
        assert shard_sizes(1, 4) == [1]

    def test_shard_sizes_rejects_empty(self):
        with pytest.raises(ValueError):
            shard_sizes(0, 4)

    def test_window_sizes(self):
        assert window_sizes(50, 20) == [20, 20, 10]
        assert window_sizes(40, 20) == [20, 20]
        assert window_sizes(7, 20) == [7]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(n_workers=0)
        with pytest.raises(ValueError):
            ParallelConfig(n_shards=0)
        with pytest.raises(ValueError):
            ParallelConfig(timeout=0)


class TestTaskRng:
    def test_same_key_same_stream(self):
        a = task_rng((7, 0, 1, 2)).random(4)
        b = task_rng((7, 0, 1, 2)).random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        a = task_rng((7, 0, 1, 2)).random(4)
        b = task_rng((7, 0, 1, 3)).random(4)
        assert not np.array_equal(a, b)


class TestInlineExecutor:
    def test_shard_roundtrip(self, env):
        partitioner = _tiny_partitioner()
        feats = featurize(env.graph)
        ex = InlineExecutor(partitioner, [env], [feats])
        ex.broadcast_weights(partitioner.state_dict())
        ex.submit(
            0,
            "shard",
            ShardTask(
                task_id=(0, 0), graph_idx=0, size=4, train=True,
                use_solver=True, seed=(1, 0, 0, 0),
            ),
        )
        kind, result = ex.recv_any()
        assert kind == "shard"
        assert result.task_id == (0, 0)
        assert len(result.rollouts) == 4
        assert result.improvements.shape == (4,)

    def test_recv_without_submit_raises(self, env):
        ex = InlineExecutor(_tiny_partitioner(), [env], [featurize(env.graph)])
        with pytest.raises(RuntimeError):
            ex.recv_any()

    def test_replay_restore_requires_broadcast(self, env):
        partitioner = _tiny_partitioner()
        harness = WorkerHarness(
            partitioner, [env], [featurize(env.graph)], copy_weights=True
        )
        with pytest.raises(RuntimeError, match="broadcast"):
            harness.run_replay(
                ReplayTask(
                    task_id=(0, 0), graph_idx=0, n_samples=2,
                    seed=(1, 1, 0, 0), state=partitioner.state_dict(),
                    restore=True,
                )
            )

    def test_replay_restore_returns_train_weights(self, env):
        partitioner = _tiny_partitioner()
        feats = featurize(env.graph)
        harness = WorkerHarness(partitioner, [env], [feats], copy_weights=True)
        train_state = partitioner.state_dict()
        harness.load_weights(train_state)
        other = _tiny_partitioner(rng=9)
        harness.run_replay(
            ReplayTask(
                task_id=(0, 0), graph_idx=0, n_samples=2,
                seed=(1, 1, 0, 0), state=other.state_dict(), restore=True,
            )
        )
        restored = partitioner.state_dict()
        for key, value in train_state.items():
            np.testing.assert_array_equal(restored[key], value)


@pytest.mark.skipif(not fork_available(), reason="fork start method required")
class TestWorkerPool:
    def test_worker_error_propagates(self, env):
        partitioner = _tiny_partitioner()
        feats = featurize(env.graph)
        with WorkerPool(partitioner, [env], [feats], n_workers=1) as pool:
            pool.submit(
                0,
                "shard",
                ShardTask(
                    task_id=(0, 0), graph_idx=5, size=2, train=False,
                    use_solver=True, seed=(1, 0, 0, 0),
                ),
            )
            with pytest.raises(RuntimeError, match="worker failed"):
                pool.recv_any()

    def test_timeout_fails_fast(self, env):
        partitioner = _tiny_partitioner()
        feats = featurize(env.graph)
        pool = WorkerPool(partitioner, [env], [feats], n_workers=1, timeout=0.4)
        try:
            with pytest.raises(TimeoutError):
                pool.recv_any()  # nothing submitted: must not hang
        finally:
            pool.close(force=True)

    def test_close_idempotent(self, env):
        partitioner = _tiny_partitioner()
        feats = featurize(env.graph)
        pool = WorkerPool(partitioner, [env], [feats], n_workers=2)
        pool.close()
        pool.close()
