"""Tests for the concurrent training + validation ``Pretrainer``."""

import numpy as np
import pytest

from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.core.pretrain import PretrainConfig
from repro.graphs.zoo import build_dataset
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.package import MCMPackage
from repro.parallel import (
    ParallelConfig,
    Pretrainer,
    fork_available,
    parallel_pretrain,
    parallel_select_checkpoint,
)
from repro.rl.ppo import PPOConfig

N_CHIPS = 4

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="fork start method required"
)


@pytest.fixture(scope="module")
def graphs():
    return list(build_dataset(seed=0).train[:3])


def _env(graph):
    package = MCMPackage(n_chips=N_CHIPS)
    return PartitionEnvironment(graph, AnalyticalCostModel(package), N_CHIPS)


def _partitioner(rng=11):
    cfg = RLPartitionerConfig(
        hidden=32,
        n_sage_layers=2,
        ppo=PPOConfig(n_rollouts=10, n_minibatches=2, n_epochs=3),
    )
    return RLPartitioner(N_CHIPS, config=cfg, rng=rng)


CFG = PretrainConfig(total_samples=40, n_checkpoints=4, samples_per_graph=10)


class TestPretrainer:
    def test_all_checkpoints_scored_and_best_selected(self, graphs):
        report = Pretrainer(
            _partitioner(), graphs[:2], graphs[2:], _env, config=CFG,
            parallel=ParallelConfig(n_workers=2, seed=7), zero_shot_samples=3,
        ).run()
        assert len(report.checkpoints) == 4
        assert all(c.score is not None for c in report.checkpoints)
        assert report.best is report.checkpoints[
            int(np.argmax([c.score for c in report.checkpoints]))
        ]

    def test_concurrent_validation_does_not_perturb_training(self, graphs):
        """Interleaved validation replays must leave the training
        trajectory identical to a training-only run with the same seed."""
        only_train = parallel_pretrain(
            _partitioner(), graphs[:2], _env, CFG,
            parallel=ParallelConfig(n_workers=2, seed=7),
        )
        report = Pretrainer(
            _partitioner(), graphs[:2], graphs[2:], _env, config=CFG,
            parallel=ParallelConfig(n_workers=2, seed=7), zero_shot_samples=3,
        ).run()
        assert [c.step for c in only_train] == [
            c.step for c in report.checkpoints
        ]
        for a, b in zip(only_train, report.checkpoints):
            for key in a.state:
                np.testing.assert_array_equal(a.state[key], b.state[key])

    def test_scores_match_post_hoc_validation(self, graphs):
        """Concurrent scores equal a separate validation pass with the same
        root seed (same spawn keys, same checkpoint states)."""
        report = Pretrainer(
            _partitioner(), graphs[:2], graphs[2:], _env, config=CFG,
            parallel=ParallelConfig(n_workers=2, seed=7), zero_shot_samples=3,
        ).run()
        ckpts = parallel_pretrain(
            _partitioner(), graphs[:2], _env, CFG,
            parallel=ParallelConfig(n_workers=2, seed=7),
        )
        parallel_select_checkpoint(
            ckpts, _partitioner(3), graphs[2:], _env, zero_shot_samples=3,
            config=ParallelConfig(n_workers=2, seed=7),
        )
        assert [c.score for c in report.checkpoints] == [c.score for c in ckpts]

    def test_inline_matches_pool(self, graphs):
        reports = [
            Pretrainer(
                _partitioner(), graphs[:2], graphs[2:], _env, config=CFG,
                parallel=ParallelConfig(n_workers=w, seed=7),
                zero_shot_samples=2,
            ).run()
            for w in (1, 2)
        ]
        assert [c.score for c in reports[0].checkpoints] == [
            c.score for c in reports[1].checkpoints
        ]
        assert reports[0].best.step == reports[1].best.step

    def test_rejects_empty_splits(self, graphs):
        with pytest.raises(ValueError):
            Pretrainer(_partitioner(), [], graphs[2:], _env)
        with pytest.raises(ValueError):
            Pretrainer(_partitioner(), graphs[:2], [], _env)
