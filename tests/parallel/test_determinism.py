"""Determinism of the parallel subsystem (the PR's satellite guarantee).

The contract: with a fixed seed, a pooled run (``--workers 2``) reproduces
the serial run of the same schedule — the in-process fallback
(``n_workers=1``) — bit for bit: same seeds, shards merged in deterministic
worker order, identical improvements trajectory, identical final weights.
"""

import numpy as np
import pytest

from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.core.pretrain import PretrainConfig
from repro.graphs.zoo import build_dataset
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.package import MCMPackage
from repro.parallel import (
    ParallelConfig,
    fork_available,
    parallel_pretrain,
    parallel_search,
    parallel_select_checkpoint,
)
from repro.rl.ppo import PPOConfig

N_CHIPS = 4

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="fork start method required"
)


@pytest.fixture(scope="module")
def graphs():
    return list(build_dataset(seed=0).train[:3])


def _env(graph):
    package = MCMPackage(n_chips=N_CHIPS)
    return PartitionEnvironment(graph, AnalyticalCostModel(package), N_CHIPS)


def _partitioner(rng=5):
    cfg = RLPartitionerConfig(
        hidden=32,
        n_sage_layers=2,
        ppo=PPOConfig(n_rollouts=10, n_minibatches=2, n_epochs=3),
    )
    return RLPartitioner(N_CHIPS, config=cfg, rng=rng)


def _weights_equal(a: RLPartitioner, b: RLPartitioner) -> bool:
    sa, sb = a.state_dict(), b.state_dict()
    return all(np.array_equal(sa[k], sb[k]) for k in sa)


class TestSearchDeterminism:
    def test_two_workers_reproduce_serial_fallback(self, graphs):
        serial_p, pooled_p = _partitioner(), _partitioner()
        serial = parallel_search(
            serial_p, _env(graphs[0]), 25,
            config=ParallelConfig(n_workers=1, seed=99),
        )
        pooled = parallel_search(
            pooled_p, _env(graphs[0]), 25,
            config=ParallelConfig(n_workers=2, seed=99),
        )
        np.testing.assert_array_equal(serial.improvements, pooled.improvements)
        assert serial.best_improvement == pooled.best_improvement
        np.testing.assert_array_equal(
            serial.best_assignment, pooled.best_assignment
        )
        assert _weights_equal(serial_p, pooled_p)

    def test_synchronous_schedule_matches_too(self, graphs):
        serial_p, pooled_p = _partitioner(), _partitioner()
        cfg = dict(seed=99, pipeline=False)
        serial = parallel_search(
            serial_p, _env(graphs[0]), 25,
            config=ParallelConfig(n_workers=1, **cfg),
        )
        pooled = parallel_search(
            pooled_p, _env(graphs[0]), 25,
            config=ParallelConfig(n_workers=2, **cfg),
        )
        np.testing.assert_array_equal(serial.improvements, pooled.improvements)
        assert _weights_equal(serial_p, pooled_p)

    def test_repeated_pooled_run_is_reproducible(self, graphs):
        results = [
            parallel_search(
                _partitioner(), _env(graphs[0]), 15,
                config=ParallelConfig(n_workers=2, seed=4),
            )
            for _ in range(2)
        ]
        np.testing.assert_array_equal(
            results[0].improvements, results[1].improvements
        )

    def test_zero_shot_mode(self, graphs):
        serial = parallel_search(
            _partitioner(), _env(graphs[0]), 12, train=False,
            config=ParallelConfig(n_workers=1, seed=11),
        )
        pooled = parallel_search(
            _partitioner(), _env(graphs[0]), 12, train=False,
            config=ParallelConfig(n_workers=2, seed=11),
        )
        np.testing.assert_array_equal(serial.improvements, pooled.improvements)
        assert serial.metadata["trained"] is False

    def test_pool_keeps_env_sample_counter(self, graphs):
        env = _env(graphs[0])
        parallel_search(
            _partitioner(), env, 15, config=ParallelConfig(n_workers=2, seed=4)
        )
        assert env.n_samples == 15


class TestPretrainDeterminism:
    def test_two_workers_reproduce_serial_fallback(self, graphs):
        cfg = PretrainConfig(
            total_samples=40, n_checkpoints=4, samples_per_graph=10
        )
        serial_p, pooled_p = _partitioner(11), _partitioner(11)
        serial = parallel_pretrain(
            serial_p, graphs, _env, cfg,
            parallel=ParallelConfig(n_workers=1, seed=7),
        )
        pooled = parallel_pretrain(
            pooled_p, graphs, _env, cfg,
            parallel=ParallelConfig(n_workers=2, seed=7),
        )
        assert [c.step for c in serial] == [c.step for c in pooled]
        for a, b in zip(serial, pooled):
            for key in a.state:
                np.testing.assert_array_equal(a.state[key], b.state[key])
        assert _weights_equal(serial_p, pooled_p)

    def test_select_checkpoint_fanout_matches_serial_fallback(self, graphs):
        cfg = PretrainConfig(
            total_samples=30, n_checkpoints=3, samples_per_graph=10
        )
        ckpts_a = parallel_pretrain(
            _partitioner(11), graphs, _env, cfg,
            parallel=ParallelConfig(n_workers=1, seed=7),
        )
        ckpts_b = parallel_pretrain(
            _partitioner(11), graphs, _env, cfg,
            parallel=ParallelConfig(n_workers=2, seed=7),
        )
        best_a = parallel_select_checkpoint(
            ckpts_a, _partitioner(2), graphs[:2], _env, zero_shot_samples=3,
            config=ParallelConfig(n_workers=1, seed=3),
        )
        best_b = parallel_select_checkpoint(
            ckpts_b, _partitioner(2), graphs[:2], _env, zero_shot_samples=3,
            config=ParallelConfig(n_workers=2, seed=3),
        )
        assert [c.score for c in ckpts_a] == [c.score for c in ckpts_b]
        assert (best_a.step, best_a.score) == (best_b.step, best_b.score)

    def test_select_checkpoint_final_weights_executor_invariant(self, graphs):
        """Both executors must leave the caller's partitioner holding the
        last evaluated checkpoint (the serial semantics) — not a state that
        depends on whether the run was pooled or inline."""
        cfg = PretrainConfig(
            total_samples=20, n_checkpoints=2, samples_per_graph=10
        )
        ckpts = parallel_pretrain(
            _partitioner(11), graphs[:2], _env, cfg,
            parallel=ParallelConfig(n_workers=1, seed=7),
        )
        for workers in (1, 2):
            scorer = _partitioner(2)
            parallel_select_checkpoint(
                ckpts, scorer, graphs[:2], _env, zero_shot_samples=2,
                config=ParallelConfig(n_workers=workers, seed=3),
            )
            state = scorer.state_dict()
            for key, value in ckpts[-1].state.items():
                np.testing.assert_array_equal(state[key], value)
