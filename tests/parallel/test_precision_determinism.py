"""Worker-count invariance holds on the float32 backend too.

The fused float32 kernels change summation order versus float64, but they
are still deterministic functions of their inputs — so the parallel
subsystem's contract (``--workers 2`` reproduces the in-process serial
fallback bit for bit) must survive a precision flip unchanged.
"""

import numpy as np
import pytest

from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.graphs.zoo import build_dataset
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.package import MCMPackage
from repro.parallel import ParallelConfig, fork_available, parallel_search
from repro.rl.ppo import PPOConfig

N_CHIPS = 4

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="fork start method required"
)


@pytest.fixture(scope="module")
def graph():
    return build_dataset(seed=0).train[0]


def _env(graph):
    package = MCMPackage(n_chips=N_CHIPS)
    return PartitionEnvironment(graph, AnalyticalCostModel(package), N_CHIPS)


def _partitioner(rng=5):
    cfg = RLPartitionerConfig(
        hidden=32,
        n_sage_layers=2,
        ppo=PPOConfig(n_rollouts=10, n_minibatches=2, n_epochs=3),
        precision="float32",
    )
    return RLPartitioner(N_CHIPS, config=cfg, rng=rng)


def _weights_equal(a: RLPartitioner, b: RLPartitioner) -> bool:
    sa, sb = a.state_dict(), b.state_dict()
    return all(np.array_equal(sa[k], sb[k]) for k in sa)


class TestFloat32SearchDeterminism:
    @pytest.mark.parametrize("pipeline", [True, False], ids=["pipelined", "sync"])
    def test_two_workers_reproduce_serial_fallback(self, graph, pipeline):
        serial_p, pooled_p = _partitioner(), _partitioner()
        serial = parallel_search(
            serial_p,
            _env(graph),
            25,
            config=ParallelConfig(n_workers=1, seed=99, pipeline=pipeline),
        )
        pooled = parallel_search(
            pooled_p,
            _env(graph),
            25,
            config=ParallelConfig(n_workers=2, seed=99, pipeline=pipeline),
        )
        np.testing.assert_array_equal(serial.improvements, pooled.improvements)
        assert serial.best_improvement == pooled.best_improvement
        np.testing.assert_array_equal(serial.best_assignment, pooled.best_assignment)
        assert _weights_equal(serial_p, pooled_p)

    def test_weights_stay_float32_through_the_pool(self, graph):
        """Shards serialise and merge state across process boundaries; the
        merged weights must come back in the run's precision, not promoted
        to float64 by the transport."""
        partitioner = _partitioner()
        parallel_search(
            partitioner,
            _env(graph),
            25,
            config=ParallelConfig(n_workers=2, seed=99),
        )
        for value in partitioner.state_dict().values():
            assert value.dtype == np.dtype(np.float32)
