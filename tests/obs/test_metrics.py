"""Metrics registry: typed primitives, histogram accuracy, bounded memory."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    latency_summary,
    prometheus_from_snapshot,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("reqs")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_thread_safety(self):
        c = Counter("reqs")

        def work():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("inflight")
        g.set(3.0)
        g.inc()
        g.dec(2.0)
        assert g.value == 2.0

    def test_callback_wins(self):
        g = Gauge("size", fn=lambda: 42.0)
        g.set(7.0)  # ignored: the callback is authoritative
        assert g.value == 42.0


class TestHistogramAccuracy:
    """Streaming percentiles must stay within the log-bucket error bound.

    Bucket growth is 2**(1/16), so a bucket's geometric midpoint is within
    ~2.2% of any value in it; we assert a 5% relative error ceiling against
    exact np.percentile to leave room for interpolation differences.
    """

    REL_ERR = 0.05

    @pytest.mark.parametrize(
        "name,values",
        [
            ("uniform", np.random.default_rng(0).uniform(0.1, 100, 20_000)),
            ("lognormal", np.random.default_rng(1).lognormal(0.0, 2.0, 20_000)),
            # Adversarial: heavy tail spanning 9 decades.
            ("heavy_tail", np.random.default_rng(2).pareto(0.5, 20_000) + 1e-3),
            # Adversarial: bimodal with a 1000x gap between modes (40/60
            # split so every tested percentile falls *inside* a mode — the
            # gap itself has no well-defined percentile to agree on).
            (
                "bimodal",
                np.concatenate(
                    [
                        np.random.default_rng(3).normal(1.0, 0.05, 8_000),
                        np.random.default_rng(4).normal(1000.0, 10.0, 12_000),
                    ]
                ).clip(min=1e-6),
            ),
            # Adversarial: constant stream (every value one bucket).
            ("constant", np.full(5_000, 3.7)),
        ],
    )
    def test_percentile_error_bounds(self, name, values):
        hist = Histogram(f"lat_{name}")
        for v in values:
            hist.observe(float(v))
        for q in (50, 95, 99):
            exact = float(np.percentile(values, q))
            approx = hist.percentile(q)
            assert approx == pytest.approx(exact, rel=self.REL_ERR), (
                f"{name} p{q}: approx {approx} vs exact {exact}"
            )

    def test_min_max_exact(self):
        hist = Histogram("h")
        values = [0.5, 12.0, 7.3, 0.9]
        for v in values:
            hist.observe(v)
        s = hist.summary()
        assert s["min"] == 0.5 and s["max"] == 12.0
        assert s["count"] == 4
        assert s["mean"] == pytest.approx(np.mean(values))

    def test_zero_and_negative_go_to_underflow_bucket(self):
        hist = Histogram("h")
        hist.observe(0.0)
        hist.observe(-5.0)
        hist.observe(1.0)
        assert hist.count == 3
        assert hist.percentile(1) <= 1e-9

    def test_empty_summary_is_none_filled(self):
        s = Histogram("h").summary()
        assert s["count"] == 0
        assert s["p50"] is None and s["p95"] is None and s["p99"] is None


class TestHistogramBoundedMemory:
    def test_one_million_observations_bounded_buckets(self):
        hist = Histogram("big")
        rng = np.random.default_rng(7)
        # 1M observations across 12 decades: bucket count must stay bounded
        # by the value *range*, never the observation count.
        for chunk in range(100):
            values = rng.lognormal(mean=chunk % 10, sigma=3.0, size=10_000)
            for v in values:
                hist.observe(float(v))
        assert hist.count == 1_000_000
        # 16 buckets/octave; 12 decades ~ 40 octaves -> ~640 buckets max.
        assert hist.n_buckets < 1_000


class TestHistogramMerge:
    def _filled(self, name, seed, n=2_000):
        h = Histogram(name)
        for v in np.random.default_rng(seed).lognormal(0, 1.5, n):
            h.observe(float(v))
        return h

    def test_merge_matches_union(self):
        a, b = self._filled("a", 0), self._filled("b", 1)
        merged = a.merge(b)
        assert merged.count == a.count + b.count
        assert merged.sum == pytest.approx(a.sum + b.sum)
        va = np.random.default_rng(0).lognormal(0, 1.5, 2_000)
        vb = np.random.default_rng(1).lognormal(0, 1.5, 2_000)
        exact = float(np.percentile(np.concatenate([va, vb]), 95))
        assert merged.percentile(95) == pytest.approx(exact, rel=0.05)

    def test_merge_associative(self):
        a, b, c = (self._filled(n, s) for n, s in (("a", 0), ("b", 1), ("c", 2)))
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.count == right.count
        assert left.sum == pytest.approx(right.sum)
        for q in (50, 95, 99):
            assert left.percentile(q) == pytest.approx(right.percentile(q))

    def test_merge_leaves_operands_untouched(self):
        a, b = self._filled("a", 0, n=100), self._filled("b", 1, n=50)
        a.merge(b)
        assert a.count == 100 and b.count == 50


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_render_prometheus_text(self):
        reg = MetricsRegistry(namespace="repro")
        reg.counter("requests_total").inc(3)
        reg.gauge("in_flight").set(2)
        h = reg.histogram("latency_ms")
        for v in (1.0, 2.0, 400.0):
            h.observe(v)
        text = reg.render()
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 3" in text
        assert "repro_in_flight 2" in text
        assert 'le="+Inf"' in text
        assert "repro_latency_ms_count 3" in text
        # Cumulative buckets: the +Inf bucket carries the full count.
        inf_line = [
            l for l in text.splitlines() if 'le="+Inf"' in l and "latency_ms" in l
        ][0]
        assert inf_line.endswith(" 3")


class TestSnapshotFlattening:
    def test_numeric_leaves_become_gauges(self):
        snap = {
            "cache": {"hits": 10, "hit_rate": 0.5, "name": "lru"},
            "pool": {"size": 2},
            "flag": True,
            "none": None,
        }
        text = prometheus_from_snapshot(snap, prefix="repro")
        assert "repro_cache_hits 10" in text
        assert "repro_cache_hit_rate 0.5" in text
        assert "repro_pool_size 2" in text
        assert "name" not in text and "none" not in text

    def test_output_is_parseable_lines(self):
        text = prometheus_from_snapshot({"a": {"b": 1}}, prefix="p")
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name, value = line.rsplit(" ", 1)
            float(value)


class TestLatencySummary:
    def test_shape_and_values(self):
        values = [1.0, 2.0, 3.0, 4.0, 100.0]
        s = latency_summary(values)
        assert s["n"] == 5
        assert s["p50_ms"] == pytest.approx(np.percentile(values, 50))
        assert s["p99_ms"] == pytest.approx(np.percentile(values, 99))
        assert s["mean_ms"] == pytest.approx(np.mean(values))
        json.dumps(s)

    def test_empty_is_none_filled(self):
        s = latency_summary([])
        assert s["n"] == 0 and s["p50_ms"] is None
