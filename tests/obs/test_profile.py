"""PhaseTimer: accumulation, shares, JSONL log, zero-perturbation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs.profile import NULL_PHASE, PhaseTimer


class TestPhaseTimer:
    def test_add_accumulates_seconds_and_counts(self):
        timer = PhaseTimer()
        timer.add("solver", 0.5)
        timer.add("solver", 0.25)
        timer.add("rollout", 1.0)
        assert timer.seconds() == {"solver": 0.75, "rollout": 1.0}
        assert timer.counts() == {"solver": 2, "rollout": 1}

    def test_phase_context_manager_times_block(self):
        timer = PhaseTimer()
        with timer.phase("encoder"):
            sum(range(1_000))
        secs = timer.seconds()
        assert secs["encoder"] > 0.0
        assert timer.counts()["encoder"] == 1

    def test_shares_include_other_remainder(self):
        timer = PhaseTimer()
        timer.add("solver", 0.3)
        timer.add("rollout", 0.2)
        shares = timer.shares(elapsed_s=1.0)
        assert shares["solver"] == pytest.approx(0.3)
        assert shares["rollout"] == pytest.approx(0.2)
        assert shares["other"] == pytest.approx(0.5)

    def test_other_clamped_at_zero_when_phases_nest(self):
        # Nested phases can attribute more than the wall clock; "other"
        # must clamp instead of going negative.
        timer = PhaseTimer()
        timer.add("outer", 0.9)
        timer.add("inner", 0.9)
        shares = timer.shares(elapsed_s=1.0)
        assert shares["other"] == 0.0

    def test_shares_zero_elapsed(self):
        timer = PhaseTimer()
        timer.add("solver", 0.1)
        assert timer.shares(elapsed_s=0.0) == {"solver": 0.0}

    def test_breakdown_shape(self):
        timer = PhaseTimer()
        timer.add("ppo_update", 0.125)
        info = timer.breakdown(elapsed_s=0.5)
        assert set(info) == {"elapsed_s", "seconds", "counts", "shares"}
        assert info["elapsed_s"] == 0.5
        assert info["seconds"] == {"ppo_update": 0.125}
        assert info["counts"] == {"ppo_update": 1}
        assert info["shares"]["ppo_update"] == pytest.approx(0.25)
        json.dumps(info)

    def test_reset_clears_state(self):
        timer = PhaseTimer()
        timer.add("solver", 1.0)
        timer.reset()
        assert timer.seconds() == {} and timer.counts() == {}

    def test_log_event_appends_jsonl(self, tmp_path):
        path = tmp_path / "profile.jsonl"
        timer = PhaseTimer(log_path=str(path))
        timer.add("solver", 0.1)
        timer.log_event("window", window=0, **timer.breakdown(elapsed_s=1.0))
        timer.log_event("window", window=1, **timer.breakdown(elapsed_s=1.0))
        rows = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(rows) == 2
        assert rows[0]["event"] == "window" and rows[0]["window"] == 0
        assert rows[1]["shares"]["solver"] == pytest.approx(0.1)

    def test_log_event_without_path_is_noop(self):
        PhaseTimer().log_event("window", window=0)  # must not raise

    def test_format_renders_each_phase(self):
        timer = PhaseTimer()
        timer.add("solver", 0.2)
        timer.add("rollout", 0.1)
        text = timer.format(elapsed_s=1.0)
        assert "phase breakdown" in text
        assert "solver" in text and "rollout" in text and "other" in text

    def test_null_phase_is_reusable_noop(self):
        for _ in range(3):
            with NULL_PHASE as p:
                assert p is NULL_PHASE


class TestZeroPerturbation:
    """Attaching a profiler must not move a single sample.

    The hook sites only wrap existing call boundaries and PhaseTimer never
    touches an RNG, so two searches from the same seed must produce
    bit-identical assignments and improvements with and without profiling.
    """

    def _search(self, profiler):
        from repro.core.environment import PartitionEnvironment
        from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
        from repro.graphs.zoo import build_mlp
        from repro.hardware.analytical import AnalyticalCostModel
        from repro.hardware.package import MCMPackage
        from repro.rl.ppo import PPOConfig

        cfg = RLPartitionerConfig(
            hidden=16,
            n_sage_layers=2,
            ppo=PPOConfig(n_rollouts=5, n_minibatches=1, n_epochs=2),
        )
        partitioner = RLPartitioner(4, config=cfg, rng=0)
        if profiler is not None:
            partitioner.profiler = profiler
        env = PartitionEnvironment(
            build_mlp(), AnalyticalCostModel(MCMPackage(n_chips=4)), 4
        )
        return partitioner.search(env, 10)

    def test_search_identical_with_profiler_attached(self):
        base = self._search(None)
        timer = PhaseTimer()
        profiled = self._search(timer)
        np.testing.assert_array_equal(
            base.best_assignment, profiled.best_assignment
        )
        np.testing.assert_array_equal(
            base.improvements, profiled.improvements
        )
        # And the profiler actually saw the loop's phases.
        counts = timer.counts()
        assert counts.get("solver", 0) > 0
        assert counts.get("rollout", 0) > 0
        assert counts.get("encoder", 0) > 0
