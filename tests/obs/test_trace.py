"""Tracing: span trees, deterministic sampling, JSONL sink, HTTP propagation."""

from __future__ import annotations

import glob
import json
import os
import time

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    TRACE_HEADER,
    Trace,
    Tracer,
    activate,
    current_trace,
    deactivate,
    span,
    trace_id_should_sample,
)


def _read_traces(trace_dir) -> list:
    rows = []
    for path in glob.glob(os.path.join(str(trace_dir), "*.jsonl")):
        with open(path, encoding="utf-8") as fh:
            rows.extend(json.loads(line) for line in fh)
    return rows


def _wait_for_trace(service, trace_dir, trace_id, timeout=10.0) -> list:
    """Poll for ``trace_id`` in the JSONL sink.

    The server finishes the trace *after* sending the reply, so the client
    can observe the response before ``finish()`` has even enqueued — a
    plain flush-then-read races on slow machines.
    """
    deadline = time.time() + timeout
    while time.time() < deadline:
        service.tracer.flush(timeout=1.0)
        rows = [r for r in _read_traces(trace_dir) if r["trace_id"] == trace_id]
        if rows:
            return rows
        time.sleep(0.02)
    return []


class TestSampling:
    def test_deterministic_for_same_id(self):
        for trace_id in ("abc123", "deadbeef", "x" * 16):
            first = trace_id_should_sample(trace_id, 0.5)
            assert all(
                trace_id_should_sample(trace_id, 0.5) == first for _ in range(5)
            )

    def test_extremes(self):
        assert trace_id_should_sample("anything", 1.0)
        assert not trace_id_should_sample("anything", 0.0)

    def test_rate_roughly_honoured(self):
        ids = [f"trace-{k}" for k in range(2_000)]
        kept = sum(trace_id_should_sample(i, 0.25) for i in ids)
        assert 0.18 < kept / len(ids) < 0.32

    def test_no_rng_module_involved(self):
        # The decision is a pure hash: seeding NumPy/random differently
        # must not change it (zero-perturbation rule).
        import random

        import numpy as np

        decision = trace_id_should_sample("fixed-id", 0.5)
        random.seed(123)
        np.random.seed(123)
        assert trace_id_should_sample("fixed-id", 0.5) == decision


class TestTraceSpans:
    def test_parent_child_linkage(self):
        trace = Trace("t1", sampled=True, service="svc")
        child = trace.start_span("outer")
        with child:
            inner = span("inner-implicit")
            inner.end()
        spans = {s.span_id: s for s in trace.spans()}
        assert trace.root.span_id == "s0"
        assert spans[child.span_id].parent_id == "s0"
        # span() inside `with child` parents to child, not to the root.
        assert spans[inner.span_id].parent_id == child.span_id

    def test_auto_parent_defaults_to_root(self):
        trace = Trace("t2", sampled=True)
        sp = trace.start_span("direct")
        assert sp.parent_id == "s0"

    def test_end_is_idempotent(self):
        trace = Trace("t3", sampled=True)
        sp = trace.start_span("op")
        sp.end()
        first = sp.dur_ms
        time.sleep(0.002)
        sp.end()
        assert sp.dur_ms == first

    def test_to_dict_shape(self):
        trace = Trace("t4", sampled=True, service="router")
        sp = trace.start_span("op", shard="s1")
        sp.end(outcome="ok")
        trace.root.end()
        d = trace.to_dict()
        assert d["trace_id"] == "t4" and d["service"] == "router"
        names = [s["name"] for s in d["spans"]]
        assert names == ["request", "op"]
        op = d["spans"][1]
        assert op["attrs"] == {"shard": "s1", "outcome": "ok"}
        assert op["dur_ms"] >= 0
        json.dumps(d)

    def test_exception_recorded_on_span(self):
        trace = Trace("t5", sampled=True)
        with pytest.raises(ValueError):
            with trace.start_span("boom"):
                raise ValueError("nope")
        sp = trace.spans()[-1]
        assert sp.attrs["error"] == "ValueError"
        assert sp.dur_ms is not None


class TestContext:
    def test_span_without_active_trace_is_null(self):
        assert current_trace() is None
        assert span("anything") is NULL_SPAN

    def test_activate_deactivate(self):
        trace = Trace("t6", sampled=True)
        token = activate(trace)
        try:
            assert current_trace() is trace
            sp = span("op")
            assert sp is not NULL_SPAN
            sp.end()
        finally:
            deactivate(token)
        assert current_trace() is None

    def test_activate_none_is_noop(self):
        token = activate(None)
        assert token is None
        deactivate(token)  # must not raise


class TestTracer:
    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(trace_dir=None)
        assert not tracer.enabled
        assert tracer.start() is None
        assert tracer.finish(None) is False
        tracer.flush()
        tracer.close()

    def test_writes_sampled_trace_as_jsonl(self, tmp_path):
        tracer = Tracer(trace_dir=str(tmp_path), sample=1.0, service="svc")
        trace = tracer.start()
        trace.start_span("op").end()
        assert tracer.finish(trace, status=200)
        assert tracer.flush(timeout=5.0)
        rows = _read_traces(tmp_path)
        assert len(rows) == 1
        assert rows[0]["trace_id"] == trace.trace_id
        assert rows[0]["spans"][0]["attrs"]["status"] == 200
        tracer.close()

    def test_sample_zero_drops(self, tmp_path):
        tracer = Tracer(trace_dir=str(tmp_path), sample=0.0)
        trace = tracer.start()
        assert not trace.sampled
        assert not tracer.finish(trace)
        tracer.close()
        assert _read_traces(tmp_path) == []

    def test_client_supplied_id_forces_sampling(self, tmp_path):
        tracer = Tracer(trace_dir=str(tmp_path), sample=0.0)
        trace = tracer.start(trace_id="client-id-1")
        assert trace.sampled and trace.trace_id == "client-id-1"
        assert tracer.finish(trace)
        tracer.close()
        assert _read_traces(tmp_path)[0]["trace_id"] == "client-id-1"

    def test_slow_request_force_written(self, tmp_path):
        tracer = Tracer(trace_dir=str(tmp_path), sample=0.0, slow_ms=0.5)
        trace = tracer.start()
        assert not trace.sampled
        time.sleep(0.003)
        assert tracer.finish(trace)  # 3ms >= 0.5ms threshold
        tracer.close()
        rows = _read_traces(tmp_path)
        assert len(rows) == 1 and rows[0]["dur_ms"] >= 0.5

    def test_close_drains_queue(self, tmp_path):
        tracer = Tracer(trace_dir=str(tmp_path), sample=1.0)
        for _ in range(20):
            tracer.finish(tracer.start())
        tracer.close()
        assert len(_read_traces(tmp_path)) == 20

    def test_finish_after_close_drops(self, tmp_path):
        tracer = Tracer(trace_dir=str(tmp_path), sample=1.0)
        tracer.close()
        assert not tracer.finish(tracer.start())

    def test_sink_failure_never_raises(self, tmp_path):
        missing = tmp_path / "gone"
        tracer = Tracer(trace_dir=str(missing), sample=1.0)
        import shutil

        shutil.rmtree(missing)
        tracer.finish(tracer.start())
        tracer.close()  # swallows the OSError, never propagates


class TestHTTPPropagation:
    @pytest.fixture
    def server(self, tmp_path):
        from repro.graphs.zoo import build_mlp
        from repro.serve import (
            PartitionServer,
            PartitionService,
            ServiceConfig,
        )

        service = PartitionService(
            ServiceConfig(
                default_samples=4, seed=0, trace_dir=str(tmp_path / "traces")
            )
        )
        server = PartitionServer(
            service, graph_resolver=lambda name: build_mlp()
        ).start()
        yield server, service, tmp_path / "traces"
        server.shutdown()
        service.close()

    def test_header_echoed_and_trace_written(self, server):
        srv, service, trace_dir = server
        import urllib.request

        body = json.dumps({"graph": "mlp", "chips": 4}).encode()
        req = urllib.request.Request(
            f"http://{srv.host}:{srv.port}/partition",
            data=body,
            headers={
                "Content-Type": "application/json",
                TRACE_HEADER: "e2e-test-trace-01",
            },
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            assert resp.headers[TRACE_HEADER] == "e2e-test-trace-01"
            json.loads(resp.read())
        ours = _wait_for_trace(service, trace_dir, "e2e-test-trace-01")
        assert len(ours) == 1
        names = {s["name"] for s in ours[0]["spans"]}
        assert "request" in names
        assert "cache.lookup" in names
        assert "search.replay_batch" in names
        # Every non-root span links to a span in the same trace.
        ids = {s["span_id"] for s in ours[0]["spans"]}
        for s in ours[0]["spans"]:
            if s["span_id"] != "s0":
                assert s["parent_id"] in ids

    def test_client_helper_sends_trace_id(self, server):
        srv, service, trace_dir = server
        from repro.serve import request_partition

        reply = request_partition(
            {"graph": "mlp", "chips": 4},
            host=srv.host,
            port=srv.port,
            trace_id="helper-trace-02",
        )
        assert "assignment" in reply
        assert _wait_for_trace(service, trace_dir, "helper-trace-02")

    def test_prometheus_endpoint(self, server):
        srv, service, _ = server
        from repro.serve import request_partition

        import urllib.request

        request_partition(
            {"graph": "mlp", "chips": 4}, host=srv.host, port=srv.port
        )
        with urllib.request.urlopen(
            f"http://{srv.host}:{srv.port}/metrics?format=prometheus", timeout=30
        ) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode()
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 1" in text
        assert "repro_cache_hits" in text

    def test_json_metrics_unchanged_by_format_param(self, server):
        srv, service, _ = server
        import urllib.request

        with urllib.request.urlopen(
            f"http://{srv.host}:{srv.port}/metrics", timeout=30
        ) as resp:
            snap = json.loads(resp.read())
        # The default /metrics stays the plain-JSON dict existing consumers
        # parse; format=prometheus is opt-in and does not change it.
        assert "requests_total" in snap and "latency_ms" in snap
        assert set(snap["latency_ms"]) >= {"cached", "warm", "cold"}
