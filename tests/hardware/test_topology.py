"""Tests for the pluggable interconnect topologies."""

import numpy as np
import pytest

from repro.hardware.package import MCMPackage
from repro.hardware.topology import (
    BiRing,
    Crossbar,
    Mesh2D,
    Topology,
    UniRing,
    make_topology,
    parse_mesh_dims,
)


class TestUniRing:
    """The default topology must preserve the legacy package semantics."""

    def test_tables(self):
        t = UniRing(4)
        assert t.n_links == 3
        assert t.is_total_order
        assert t.hops(0, 3) == 3 and t.hops(2, 2) == 0
        np.testing.assert_array_equal(t.link_path(1, 3), [1, 2])
        np.testing.assert_array_equal(
            t.reachable, np.triu(np.ones((4, 4), dtype=bool))
        )

    def test_backward_raises_legacy_message(self):
        with pytest.raises(ValueError, match="backward transfer"):
            UniRing(4).hops(2, 1)

    def test_backward_edge_reason_alias(self):
        assert UniRing(4).unreachable_reason == "backward_edge"

    def test_occupancy_matches_generic_gather(self):
        t = UniRing(6)
        src = np.array([0, 1, 0, 3])
        dst = np.array([2, 4, 1, 5])
        occ = np.array([1.0, 2.0, 4.0, 0.5])
        fast = t.link_occupancy(src, dst, occ)
        generic = Topology.link_occupancy(t, src, dst, occ)
        np.testing.assert_allclose(fast, generic, rtol=1e-15)

    def test_single_chip(self):
        t = UniRing(1)
        assert t.n_links == 0 and t.hops(0, 0) == 0


class TestBiRing:
    def test_shortest_direction(self):
        t = BiRing(5)
        assert not t.is_total_order
        assert t.reachable.all()
        assert t.hops(0, 4) == 1  # wrap-around beats 4 forward hops
        assert t.hops(4, 0) == 1
        assert t.hops(0, 2) == 2

    def test_two_chip_ring_has_no_duplicate_links(self):
        t = BiRing(2)
        assert t.n_links == 2
        assert {tuple(l) for l in t.links} == {(0, 1), (1, 0)}
        assert t.hops(0, 1) == 1 and t.hops(1, 0) == 1

    def test_wraparound_contention_isolated(self):
        t = BiRing(4)
        # 3 -> 0 is one clockwise hop on the wrap link; no chain link busy.
        occ = t.link_occupancy(np.array([3]), np.array([0]), np.array([7.0]))
        assert occ.sum() == 7.0
        (link,) = np.flatnonzero(occ)
        a, b = t.links[link]
        assert (a, b) == (3, 0)


class TestMesh2D:
    def test_xy_routing(self):
        t = Mesh2D(2, 3)
        assert t.n_chips == 6 and t.reachable.all()
        # 0 -> 5: along the row to column 2, then down: 0 -> 1 -> 2 -> 5.
        path = t.link_path(0, 5)
        chips = [tuple(t.links[l]) for l in path]
        assert chips == [(0, 1), (1, 2), (2, 5)]
        assert t.hops(0, 5) == 3

    def test_hop_counts_are_manhattan(self):
        t = Mesh2D(3, 3)
        for src in range(9):
            for dst in range(9):
                sr, sc = divmod(src, 3)
                dr, dc = divmod(dst, 3)
                assert t.hop_matrix[src, dst] == abs(sr - dr) + abs(sc - dc)


class TestCrossbar:
    def test_all_pairs_one_hop(self):
        t = Crossbar(4)
        assert t.n_links == 12
        off = ~np.eye(4, dtype=bool)
        assert (t.hop_matrix[off] == 1).all()

    def test_dedicated_links_never_shared(self):
        t = Crossbar(3)
        occ = t.link_occupancy(
            np.array([0, 1, 2]), np.array([2, 2, 0]), np.array([1.0, 2.0, 4.0])
        )
        # Three transfers on three distinct links, each with its own time.
        assert sorted(occ[occ > 0].tolist()) == [1.0, 2.0, 4.0]


class TestBaseTopology:
    def test_partial_topology_unreachable(self):
        t = Topology(3, "chain", [(0, 1), (1, 2)], ("chain", 3))
        assert t.is_total_order  # forward chain == uni-ring reachability
        assert t.unreachable_reason == "unreachable_edge:chain"
        with pytest.raises(ValueError, match="no route"):
            t.hops(2, 0)

    def test_chip_range_checked(self):
        with pytest.raises(ValueError, match="out of range"):
            UniRing(4).hops(0, 4)

    def test_equality_by_key(self):
        assert UniRing(4) == UniRing(4)
        assert UniRing(4) != UniRing(5)
        assert UniRing(4) != BiRing(4)
        assert Mesh2D(2, 3) == Mesh2D(2, 3)
        assert hash(Crossbar(3)) == hash(Crossbar(3))


class TestFactory:
    def test_names(self):
        assert make_topology("uniring", 4).key == ("uniring", 4)
        assert make_topology("biring", 4).key == ("biring", 4)
        assert make_topology("crossbar", 4).key == ("crossbar", 4)
        assert make_topology("mesh", 4, "2x2").key == ("mesh2d", 2, 2)

    def test_mesh_default_dims_most_square(self):
        assert make_topology("mesh", 6).key == ("mesh2d", 2, 3)
        assert make_topology("mesh", 9).key == ("mesh2d", 3, 3)
        assert make_topology("mesh", 5).key == ("mesh2d", 1, 5)

    def test_mesh_dims_must_match_chips(self):
        with pytest.raises(ValueError, match="chips"):
            make_topology("mesh", 4, "2x3")

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown topology"):
            make_topology("torus", 4)

    def test_parse_mesh_dims(self):
        assert parse_mesh_dims("2x3") == (2, 3)
        with pytest.raises(ValueError):
            parse_mesh_dims("2by3")


class TestPackageIntegration:
    def test_default_package_is_uniring(self):
        pkg = MCMPackage(n_chips=4)
        assert pkg.topology == UniRing(4)
        assert pkg.n_links == 3
        np.testing.assert_array_equal(pkg.links_crossed(1, 3), [1, 2])
        with pytest.raises(ValueError, match="backward transfer"):
            pkg.hops(2, 1)

    def test_topology_package(self):
        pkg = MCMPackage(n_chips=4, topology=BiRing(4))
        assert pkg.n_links == 8
        assert pkg.hops(3, 0) == 1

    def test_chip_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="topology is for"):
            MCMPackage(n_chips=4, topology=BiRing(5))

    def test_packages_compare_by_topology(self):
        assert MCMPackage(n_chips=4) == MCMPackage(n_chips=4)
        assert MCMPackage(n_chips=4) != MCMPackage(n_chips=4, topology=BiRing(4))
