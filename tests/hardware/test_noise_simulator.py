"""Tests for the perturbation model and pipeline simulator."""

import numpy as np
import pytest

from repro.graphs.builders import GraphBuilder
from repro.graphs.ops import OpType
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.chip import ChipSpec
from repro.hardware.noise import PerturbationModel
from repro.hardware.package import MCMPackage
from repro.hardware.simulator import PipelineSimulator


class TestPerturbationModel:
    def test_deterministic(self):
        m = PerturbationModel(salt=3)
        nodes = np.arange(10)
        cats = np.zeros(10, dtype=int)
        chips = np.arange(10) % 4
        a = m.factors(nodes, cats, chips)
        b = PerturbationModel(salt=3).factors(nodes, cats, chips)
        np.testing.assert_array_equal(a, b)

    def test_salt_changes_factors(self):
        nodes, cats, chips = np.arange(32), np.zeros(32, dtype=int), np.zeros(32, dtype=int)
        a = PerturbationModel(salt=1).factors(nodes, cats, chips)
        b = PerturbationModel(salt=2).factors(nodes, cats, chips)
        assert not np.allclose(a, b)

    def test_amplitude_bounds(self):
        m = PerturbationModel(op_amplitude=0.1, chip_amplitude=0.05, category_amplitude=0.05)
        nodes = np.arange(1000)
        f = m.factors(nodes, nodes % 6, nodes % 8)
        assert np.all(f > 0.7) and np.all(f < 1.3)

    def test_zero_amplitude_is_identity(self):
        m = PerturbationModel(0.0, 0.0, 0.0)
        f = m.factors(np.arange(5), np.zeros(5, dtype=int), np.zeros(5, dtype=int))
        np.testing.assert_allclose(f, 1.0)

    def test_rejects_bad_amplitude(self):
        with pytest.raises(ValueError):
            PerturbationModel(op_amplitude=1.5)


class TestPipelineSimulator:
    @pytest.fixture
    def graph(self, chain_graph):
        return chain_graph

    def test_matches_analytical_shape_without_noise(self, graph, roomy_package):
        sim = PipelineSimulator(
            roomy_package,
            perturbation=PerturbationModel(0.0, 0.0, 0.0),
            op_overhead_us=0.0,
        )
        ana = AnalyticalCostModel(roomy_package)
        assignment = np.zeros(10, dtype=int)
        assert sim.evaluate(graph, assignment).runtime_us == pytest.approx(
            ana.evaluate(graph, assignment).runtime_us
        )

    def test_overhead_charged_per_op(self, graph, roomy_package):
        base = PipelineSimulator(
            roomy_package, PerturbationModel(0.0, 0.0, 0.0), op_overhead_us=0.0
        )
        with_oh = PipelineSimulator(
            roomy_package, PerturbationModel(0.0, 0.0, 0.0), op_overhead_us=2.0
        )
        a = np.zeros(10, dtype=int)
        diff = with_oh.evaluate(graph, a).runtime_us - base.evaluate(graph, a).runtime_us
        assert diff == pytest.approx(20.0)

    def test_oom_partition_rejected(self, graph):
        pkg = MCMPackage(n_chips=2, chip=ChipSpec(sram_bytes=64.0))
        sim = PipelineSimulator(pkg)
        res = sim.evaluate(graph, np.zeros(10, dtype=int))
        assert not res.valid
        assert res.failure_reason == "oom"
        assert res.throughput == 0.0

    def test_memory_check_disabled(self, graph):
        pkg = MCMPackage(n_chips=2, chip=ChipSpec(sram_bytes=64.0))
        sim = PipelineSimulator(pkg, check_memory=False)
        assert sim.evaluate(graph, np.zeros(10, dtype=int)).valid

    def test_backward_edge_rejected(self, graph, roomy_package):
        sim = PipelineSimulator(roomy_package)
        a = np.zeros(10, dtype=int)
        a[:5] = 1
        res = sim.evaluate(graph, a)
        assert not res.valid and res.failure_reason == "backward_edge"

    def test_link_contention_multi_hop(self, roomy_package):
        # One transfer chip0 -> chip3 occupies links 0,1,2.
        b = GraphBuilder("hop")
        n0 = b.add_node("a", OpType.INPUT, compute_us=1.0, output_bytes=1e6)
        b.add_node("b", OpType.RELU, compute_us=1.0, output_bytes=8.0, inputs=[n0])
        g = b.build()
        sim = PipelineSimulator(
            roomy_package, PerturbationModel(0.0, 0.0, 0.0), op_overhead_us=0.0
        )
        res = sim.evaluate(g, np.array([0, 3]))
        assert res.valid
        wire = 1e6 / (roomy_package.chip.link_bandwidth_gbps * 1e9) * 1e6
        expected = wire + roomy_package.chip.link_latency_us
        np.testing.assert_allclose(res.link_latency_us, expected)

    def test_determinism(self, graph, roomy_package):
        sim = PipelineSimulator(roomy_package)
        a = np.zeros(10, dtype=int)
        assert sim.evaluate(graph, a).runtime_us == sim.evaluate(graph, a).runtime_us

    def test_memory_report_exposed(self, graph, roomy_package):
        sim = PipelineSimulator(roomy_package)
        report = sim.memory_report(graph, np.zeros(10, dtype=int))
        assert report.peak_bytes.shape == (4,)

    def test_rejects_negative_overhead(self, roomy_package):
        with pytest.raises(ValueError):
            PipelineSimulator(roomy_package, op_overhead_us=-1.0)
