"""Property-based tests (hypothesis) for the hardware models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.chip import ChipSpec
from repro.hardware.memory import MemoryPlanner
from repro.hardware.package import MCMPackage
from repro.hardware.noise import PerturbationModel
from repro.hardware.simulator import PipelineSimulator
from repro.solver.fallback import contiguous_partition
from tests.conftest import random_dag


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000), n_nodes=st.integers(3, 30), n_chips=st.integers(1, 6))
def test_analytical_runtime_at_least_max_chip_compute(seed, n_nodes, n_chips):
    """Transfers only add latency: runtime >= busiest chip's raw compute."""
    g = random_dag(seed, n_nodes)
    model = AnalyticalCostModel(MCMPackage(n_chips=n_chips))
    y = contiguous_partition(g, n_chips)
    res = model.evaluate(g, y)
    loads = np.zeros(n_chips)
    np.add.at(loads, y, g.compute_us)
    assert res.runtime_us >= loads.max() - 1e-9


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000), n_nodes=st.integers(3, 30), n_chips=st.integers(1, 6))
def test_latency_at_least_runtime(seed, n_nodes, n_chips):
    """End-to-end latency can never beat the pipeline interval."""
    g = random_dag(seed, n_nodes)
    model = AnalyticalCostModel(MCMPackage(n_chips=n_chips))
    y = contiguous_partition(g, n_chips)
    res = model.evaluate(g, y)
    assert res.latency_us >= res.runtime_us - 1e-9


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000), n_nodes=st.integers(3, 25))
def test_peak_memory_at_least_params(seed, n_nodes):
    """Peak memory includes resident parameters on every chip."""
    g = random_dag(seed, n_nodes)
    y = contiguous_partition(g, 3)
    planner = MemoryPlanner(3, capacity_bytes=2**60)
    report = planner.plan(g, y)
    params = np.zeros(3)
    np.add.at(params, y, g.param_bytes)
    assert np.all(report.peak_bytes >= params - 1e-9)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000), n_nodes=st.integers(3, 25))
def test_peak_memory_bounded_by_total(seed, n_nodes):
    """No chip's peak can exceed all params + all activations."""
    g = random_dag(seed, n_nodes)
    y = contiguous_partition(g, 3)
    planner = MemoryPlanner(3, capacity_bytes=2**60)
    report = planner.plan(g, y)
    upper = g.param_bytes.sum() + g.output_bytes.sum()
    assert np.all(report.peak_bytes <= upper + 1e-9)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000), n_nodes=st.integers(3, 25), salt=st.integers(0, 50))
def test_simulator_determinism(seed, n_nodes, salt):
    """The "hardware" is a pure function of (graph, assignment, salt)."""
    g = random_dag(seed, n_nodes)
    pkg = MCMPackage(n_chips=3, chip=ChipSpec(sram_bytes=2**40))
    sim_a = PipelineSimulator(pkg, PerturbationModel(salt=salt))
    sim_b = PipelineSimulator(pkg, PerturbationModel(salt=salt))
    y = contiguous_partition(g, 3)
    assert sim_a.evaluate(g, y).runtime_us == sim_b.evaluate(g, y).runtime_us


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000), n_nodes=st.integers(4, 25))
def test_simulator_within_perturbation_envelope(seed, n_nodes):
    """Perturbed compute stays within the composed amplitude bounds of the
    unperturbed simulator's compute estimate."""
    g = random_dag(seed, n_nodes)
    pkg = MCMPackage(n_chips=2, chip=ChipSpec(sram_bytes=2**40))
    clean = PipelineSimulator(pkg, PerturbationModel(0.0, 0.0, 0.0), op_overhead_us=0.0)
    noisy = PipelineSimulator(
        pkg, PerturbationModel(0.1, 0.05, 0.05), op_overhead_us=0.0
    )
    y = contiguous_partition(g, 2)
    a = clean.evaluate(g, y)
    b = noisy.evaluate(g, y)
    # composed bound: (1.1)(1.05)(1.05) ~ 1.22
    assert b.runtime_us <= a.runtime_us * 1.25 + 1e-6
    assert b.runtime_us >= a.runtime_us * 0.75 - 1e-6
