"""Test package."""
