"""Tests for schedule-dependent memory planning (the dynamic constraint)."""

import numpy as np
import pytest

from repro.graphs.builders import GraphBuilder
from repro.graphs.ops import OpType
from repro.hardware.memory import MemoryPlanner


def _parallel_branches(n_branches=4, branch_len=4, out_bytes=100.0):
    """input fans out to n independent chains (no merge).

    A depth-first schedule finishes one chain before starting the next, so
    at most two chain buffers are live; a breadth-first schedule advances
    all chains in lock-step, keeping one live buffer per chain.
    """
    b = GraphBuilder("branches")
    inp = b.add_node("in", OpType.INPUT, output_bytes=out_bytes)
    for k in range(n_branches):
        prev = inp
        for j in range(branch_len):
            prev = b.add_node(
                f"b{k}/n{j}", OpType.RELU, compute_us=1.0,
                output_bytes=out_bytes, inputs=[prev],
            )
    return b.build()


class TestScheduleDependence:
    def test_bfs_holds_more_buffers_on_parallel_branches(self):
        """Interleaving branches keeps one live buffer per branch; running
        them to completion keeps only a couple."""
        g = _parallel_branches(n_branches=6)
        a = np.zeros(g.n_nodes, dtype=int)
        dfs = MemoryPlanner(1, capacity_bytes=2**40, schedule="dfs").plan(g, a)
        bfs = MemoryPlanner(1, capacity_bytes=2**40, schedule="bfs").plan(g, a)
        assert bfs.peak_bytes[0] > dfs.peak_bytes[0]

    def test_same_partition_different_verdicts(self):
        """The paper's point: H(G, f) depends on the later scheduling pass —
        the same placement passes under one schedule and fails another."""
        g = _parallel_branches(n_branches=6)
        a = np.zeros(g.n_nodes, dtype=int)
        probe = MemoryPlanner(1, capacity_bytes=2**40, schedule="dfs")
        dfs_peak = probe.plan(g, a).peak_bytes[0]
        capacity = dfs_peak * 1.05
        assert MemoryPlanner(1, capacity, schedule="dfs").check(g, a)
        assert not MemoryPlanner(1, capacity, schedule="bfs").check(g, a)

    def test_chain_is_schedule_invariant(self, chain_graph):
        a = np.zeros(10, dtype=int)
        dfs = MemoryPlanner(1, 2**40, schedule="dfs").plan(chain_graph, a)
        bfs = MemoryPlanner(1, 2**40, schedule="bfs").plan(chain_graph, a)
        assert dfs.peak_bytes[0] == pytest.approx(bfs.peak_bytes[0])

    def test_rejects_unknown_schedule(self):
        with pytest.raises(ValueError):
            MemoryPlanner(1, 100.0, schedule="random")


class TestRepeatHarness:
    def test_mean_and_std_shapes(self):
        from repro.bench.harness import repeat_methods
        from repro.core.baselines import SearchResult

        def factory(seed):
            rng = np.random.default_rng(seed)

            def method(env, n):
                return SearchResult(rng.random(n), None, 1.0)

            return {"M": method}

        means, stds = repeat_methods(factory, lambda: None, 6, n_repeats=4)
        assert means["M"].shape == (6,)
        assert stds["M"].shape == (6,)
        assert np.all(stds["M"] >= 0)

    def test_single_repeat_zero_std(self):
        from repro.bench.harness import repeat_methods
        from repro.core.baselines import SearchResult

        def factory(seed):
            return {"M": lambda env, n: SearchResult(np.ones(4), None, 1.0)}

        _, stds = repeat_methods(factory, lambda: None, 4, n_repeats=1)
        np.testing.assert_array_equal(stds["M"], 0.0)

    def test_rejects_zero_repeats(self):
        from repro.bench.harness import repeat_methods

        with pytest.raises(ValueError):
            repeat_methods(lambda s: {}, lambda: None, 4, n_repeats=0)
