"""Equivalence test: vectorised link-contention vs the per-transfer loop."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.builders import GraphBuilder
from repro.graphs.ops import OpType
from repro.hardware.chip import ChipSpec
from repro.hardware.package import MCMPackage
from repro.hardware.simulator import PipelineSimulator


def _link_time_reference(src_c, dst_c, wire_us, latency_us, n_links):
    """The original zip-loop: each transfer occupies links [src, dst)."""
    link_time = np.zeros(max(n_links, 1))
    for s, d, w in zip(src_c, dst_c, wire_us):
        if d > s:
            link_time[s:d] += w + latency_us
    return link_time


def _link_time_vectorized(src_c, dst_c, wire_us, latency_us, n_links):
    """Mirror of the difference-array scheme in PipelineSimulator."""
    link_time = np.zeros(max(n_links, 1))
    forward = dst_c > src_c
    if np.any(forward):
        occupancy = wire_us[forward] + latency_us
        diff = np.zeros(link_time.size + 1)
        np.add.at(diff, src_c[forward], occupancy)
        np.subtract.at(diff, dst_c[forward], occupancy)
        link_time = np.cumsum(diff)[:-1]
    return link_time


@settings(max_examples=80, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_chips=st.integers(2, 36),
    n_transfers=st.integers(0, 60),
)
def test_vectorized_matches_loop_on_random_transfers(seed, n_chips, n_transfers):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_chips, n_transfers)
    dst = rng.integers(0, n_chips, n_transfers)
    wire = rng.uniform(0.01, 50.0, n_transfers)
    latency = float(rng.uniform(0.0, 2.0))
    ref = _link_time_reference(src, dst, wire, latency, n_chips - 1)
    vec = _link_time_vectorized(src, dst, wire, latency, n_chips - 1)
    np.testing.assert_allclose(vec, ref, rtol=1e-12, atol=1e-12)


@pytest.fixture
def wide_graph():
    """Source fans out to chips far apart so long-distance links saturate."""
    b = GraphBuilder("wide")
    prev = b.add_node("in", OpType.INPUT, compute_us=1.0, output_bytes=4096.0)
    for i in range(7):
        prev = b.add_node(
            f"n{i}", OpType.MATMUL, compute_us=5.0, output_bytes=8192.0, inputs=[prev]
        )
    return b.build()


def test_simulator_link_time_matches_reference(wide_graph):
    package = MCMPackage(n_chips=4, chip=ChipSpec(sram_bytes=2**34))
    sim = PipelineSimulator(package, check_memory=False)
    assignment = np.array([0, 0, 1, 1, 2, 2, 3, 3])
    result = sim.evaluate(wide_graph, assignment)
    assert result.valid

    from repro.hardware.base import cross_chip_transfers

    src_c, dst_c, nbytes = cross_chip_transfers(wide_graph, assignment)
    wire_us = nbytes / (package.chip.link_bandwidth_gbps * 1e9) * 1e6
    ref = _link_time_reference(
        src_c, dst_c, wire_us, package.chip.link_latency_us, package.n_links
    )
    np.testing.assert_allclose(
        result.link_latency_us, ref[: package.n_links], rtol=1e-12
    )
