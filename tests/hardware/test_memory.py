"""Tests for the memory planner (dynamic constraint H)."""

import numpy as np
import pytest

from repro.graphs.builders import GraphBuilder
from repro.graphs.ops import OpType
from repro.hardware.memory import MemoryPlanner


def _chain(k=4, out_bytes=100.0, params=0.0):
    b = GraphBuilder("chain")
    prev = b.add_node("n0", OpType.INPUT, output_bytes=out_bytes)
    for i in range(1, k):
        prev = b.add_node(
            f"n{i}", OpType.RELU, compute_us=1.0, output_bytes=out_bytes,
            param_bytes=params, inputs=[prev],
        )
    return b.build()


class TestPeakMemory:
    def test_chain_single_chip_peak_is_two_buffers(self):
        # At any point in a chain only producer+consumer buffers are live.
        g = _chain(k=6, out_bytes=100.0)
        planner = MemoryPlanner(1, capacity_bytes=1e9)
        report = planner.plan(g, np.zeros(6, dtype=int))
        assert report.peak_bytes[0] == pytest.approx(200.0)

    def test_params_always_resident(self):
        g = _chain(k=4, out_bytes=10.0, params=1000.0)
        planner = MemoryPlanner(1, capacity_bytes=1e9)
        report = planner.plan(g, np.zeros(4, dtype=int))
        assert report.peak_bytes[0] >= 3000.0  # 3 param-carrying nodes

    def test_long_lived_buffer_extends_lifetime(self):
        # node0 output consumed by the LAST node: live the whole time.
        b = GraphBuilder("skip")
        n0 = b.add_node("n0", OpType.INPUT, output_bytes=500.0)
        prev = n0
        for i in range(1, 4):
            prev = b.add_node(f"n{i}", OpType.RELU, compute_us=1.0,
                              output_bytes=100.0, inputs=[prev])
        b.add_node("last", OpType.ADD, compute_us=1.0, output_bytes=100.0,
                   inputs=[prev, n0])
        g = b.build()
        planner = MemoryPlanner(1, capacity_bytes=1e9)
        report = planner.plan(g, np.zeros(5, dtype=int))
        # skip buffer (500) + two chain buffers live simultaneously
        assert report.peak_bytes[0] >= 700.0

    def test_cross_chip_buffer_counted_on_both_chips(self):
        g = _chain(k=2, out_bytes=300.0)
        planner = MemoryPlanner(2, capacity_bytes=1e9)
        report = planner.plan(g, np.array([0, 1]))
        assert report.peak_bytes[0] >= 300.0
        assert report.peak_bytes[1] >= 300.0

    def test_constants_replicated_to_every_chip(self):
        b = GraphBuilder("g")
        b.add_node("c", OpType.CONSTANT, output_bytes=50.0)
        b.add_node("x", OpType.INPUT, output_bytes=10.0)
        g = b.build()
        planner = MemoryPlanner(3, capacity_bytes=1e9)
        report = planner.plan(g, np.array([0, 1]))
        assert np.all(report.peak_bytes >= 50.0)


class TestFitCheck:
    def test_fits_within_capacity(self):
        g = _chain(k=4, out_bytes=100.0)
        assert MemoryPlanner(1, capacity_bytes=250.0).check(g, np.zeros(4, dtype=int))

    def test_oom_detected(self):
        g = _chain(k=4, out_bytes=100.0)
        planner = MemoryPlanner(1, capacity_bytes=150.0)
        report = planner.plan(g, np.zeros(4, dtype=int))
        assert not report.ok
        assert report.worst_chip == 0

    def test_splitting_relieves_memory(self):
        # single chip: 8 x 100 params + 200 live = 1000; split halves:
        # 400 params + ~200 live per chip = ~600.
        g = _chain(k=8, out_bytes=100.0, params=100.0)
        planner = MemoryPlanner(2, capacity_bytes=700.0)
        assert not planner.check(g, np.zeros(8, dtype=int))
        split = np.zeros(8, dtype=int)
        split[4:] = 1
        assert planner.check(g, split)

    def test_rejects_bad_init(self):
        with pytest.raises(ValueError):
            MemoryPlanner(0, capacity_bytes=10.0)
        with pytest.raises(ValueError):
            MemoryPlanner(1, capacity_bytes=0.0)
