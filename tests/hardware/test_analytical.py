"""Tests for the analytical cost model."""

import numpy as np
import pytest

from repro.graphs.builders import GraphBuilder
from repro.graphs.ops import OpType
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.chip import ChipSpec
from repro.hardware.package import MCMPackage


@pytest.fixture
def model(roomy_package):
    return AnalyticalCostModel(roomy_package)


class TestSingleChip:
    def test_all_on_one_chip_is_sum_of_compute(self, model, chain_graph):
        res = model.evaluate(chain_graph, np.zeros(10, dtype=int))
        assert res.valid
        assert res.runtime_us == pytest.approx(chain_graph.total_compute_us())
        assert res.throughput == pytest.approx(1e6 / res.runtime_us)

    def test_chip_latency_vector(self, model, chain_graph):
        res = model.evaluate(chain_graph, np.zeros(10, dtype=int))
        assert res.chip_latency_us.shape == (4,)
        assert res.chip_latency_us[1:].sum() == 0


class TestPartitioned:
    def test_balanced_split_beats_single_chip(self, model, chain_graph):
        # Split the chain in half at a single boundary.
        split = np.zeros(10, dtype=int)
        split[5:] = 1
        single = model.evaluate(chain_graph, np.zeros(10, dtype=int))
        dual = model.evaluate(chain_graph, split)
        assert dual.throughput > single.throughput

    def test_transfer_cost_charged_to_both_ends(self, chain_graph):
        pkg = MCMPackage(n_chips=2, chip=ChipSpec(link_latency_us=10.0))
        model = AnalyticalCostModel(pkg)
        split = np.zeros(10, dtype=int)
        split[5:] = 1
        res = model.evaluate(chain_graph, split)
        compute0 = chain_graph.compute_us[:5].sum()
        compute1 = chain_graph.compute_us[5:].sum()
        wire = 64.0 / (pkg.chip.link_bandwidth_gbps * 1e9) * 1e6 + 10.0
        stall = wire * (1.0 - pkg.chip.io_overlap)
        assert res.chip_latency_us[0] == pytest.approx(compute0 + stall)
        assert res.chip_latency_us[1] == pytest.approx(compute1 + stall)

    def test_fanout_transfer_deduplicated(self, model, diamond_graph):
        # node0 feeds nodes 1 and 2; both on chip 1 -> one transfer.
        assignment = np.array([0, 1, 1, 1, 1])
        res = model.evaluate(diamond_graph, assignment)
        chip = model.package.chip
        wire = diamond_graph.output_bytes[0] / (
            chip.link_bandwidth_gbps * 1e9
        ) * 1e6 + chip.link_latency_us
        expected0 = diamond_graph.compute_us[0] + wire * (1.0 - chip.io_overlap)
        assert res.chip_latency_us[0] == pytest.approx(expected0)

    def test_backward_edge_invalid(self, model, chain_graph):
        backward = np.zeros(10, dtype=int)
        backward[:5] = 1  # first half on chip 1, second half on chip 0
        res = model.evaluate(chain_graph, backward)
        assert not res.valid
        assert res.throughput == 0.0
        assert res.failure_reason == "backward_edge"

    def test_constant_producer_exempt(self):
        b = GraphBuilder("g")
        const = b.add_node("c", OpType.CONSTANT, output_bytes=1e9)
        x = b.add_node("x", OpType.INPUT, compute_us=1.0, output_bytes=8.0)
        b.add_node("y", OpType.ADD, compute_us=1.0, output_bytes=8.0, inputs=[const, x])
        g = b.build()
        model = AnalyticalCostModel(MCMPackage(n_chips=2))
        # constant on chip 1, consumer on chip 0: would be a backward edge
        # if constants were placed; they are replicated instead.
        res = model.evaluate(g, np.array([1, 0, 0]))
        assert res.valid

    def test_assignment_shape_checked(self, model, chain_graph):
        with pytest.raises(ValueError):
            model.evaluate(chain_graph, np.zeros(3, dtype=int))

    def test_assignment_range_checked(self, model, chain_graph):
        with pytest.raises(ValueError):
            model.evaluate(chain_graph, np.full(10, 99))


class TestDeterminism:
    def test_repeated_evaluation_identical(self, model, diamond_graph):
        a = model.evaluate(diamond_graph, np.array([0, 0, 1, 1, 2]))
        b = model.evaluate(diamond_graph, np.array([0, 0, 1, 1, 2]))
        assert a.runtime_us == b.runtime_us
