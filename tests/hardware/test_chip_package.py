"""Tests for ChipSpec and MCMPackage."""

import numpy as np
import pytest

from repro.hardware.chip import ChipSpec
from repro.hardware.package import MCMPackage


class TestChipSpec:
    def test_defaults_are_paper_scale(self):
        chip = ChipSpec()
        # "tens of MBs SRAM", "tens of GB/s" links
        assert 10 * 2**20 <= chip.sram_bytes <= 100 * 2**20
        assert 10 <= chip.link_bandwidth_gbps <= 100

    def test_transfer_time_scales_linearly(self):
        chip = ChipSpec(link_latency_us=0.0)
        assert chip.transfer_us(2e9) == pytest.approx(2 * chip.transfer_us(1e9))

    def test_transfer_includes_latency(self):
        chip = ChipSpec(link_latency_us=5.0)
        assert chip.transfer_us(0.0) == pytest.approx(5.0)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            ChipSpec().transfer_us(-1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sram_bytes": 0},
            {"compute_scale": -1.0},
            {"link_bandwidth_gbps": 0.0},
            {"link_latency_us": -1.0},
        ],
    )
    def test_rejects_bad_spec(self, kwargs):
        with pytest.raises(ValueError):
            ChipSpec(**kwargs)


class TestMCMPackage:
    def test_paper_default_is_36_chips(self):
        assert MCMPackage().n_chips == 36

    def test_links_count(self):
        assert MCMPackage(n_chips=4).n_links == 3

    def test_hops_forward(self):
        pkg = MCMPackage(n_chips=8)
        assert pkg.hops(2, 5) == 3
        assert pkg.hops(3, 3) == 0

    def test_backward_transfer_rejected(self):
        with pytest.raises(ValueError, match="backward"):
            MCMPackage(n_chips=4).hops(2, 1)

    def test_links_crossed(self):
        pkg = MCMPackage(n_chips=8)
        np.testing.assert_array_equal(pkg.links_crossed(2, 5), [2, 3, 4])
        assert pkg.links_crossed(3, 3).size == 0

    def test_chip_range_checked(self):
        with pytest.raises(ValueError):
            MCMPackage(n_chips=4).hops(0, 4)

    def test_rejects_zero_chips(self):
        with pytest.raises(ValueError):
            MCMPackage(n_chips=0)
