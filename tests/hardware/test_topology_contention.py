"""Per-topology cost-model behaviour: reachability and link contention."""

import numpy as np
import pytest

from repro.graphs.builders import GraphBuilder
from repro.graphs.ops import OpType
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.noise import PerturbationModel
from repro.hardware.package import MCMPackage
from repro.hardware.simulator import PipelineSimulator
from repro.hardware.topology import BiRing, Crossbar, Mesh2D, Topology, UniRing


def _chain(k, nbytes=1e6):
    b = GraphBuilder("chain")
    prev = b.add_node("n0", OpType.INPUT, compute_us=10.0, output_bytes=nbytes)
    for i in range(1, k):
        prev = b.add_node(
            f"n{i}", OpType.RELU, compute_us=10.0, output_bytes=nbytes, inputs=[prev]
        )
    return b.build()


def _simulator(package):
    # Identity perturbation: contention numbers stay hand-checkable.
    return PipelineSimulator(
        package,
        perturbation=PerturbationModel(0.0, 0.0, 0.0),
        op_overhead_us=0.0,
        check_memory=False,
    )


def _wire_us(package, nbytes):
    return nbytes / (package.chip.link_bandwidth_gbps * 1e9) * 1e6


class TestReachabilityReasons:
    def test_uniring_keeps_backward_edge_alias(self):
        g = _chain(2)
        pkg = MCMPackage(n_chips=4)
        for model in (AnalyticalCostModel(pkg), _simulator(pkg)):
            res = model.evaluate(g, np.array([1, 0]))
            assert not res.valid
            assert res.failure_reason == "backward_edge"

    def test_generic_unreachable_reason_names_topology(self):
        g = _chain(2)
        chain_topo = Topology(3, "chain3", [(0, 1), (1, 2)], ("chain3", 3))
        pkg = MCMPackage(n_chips=3, topology=chain_topo)
        for model in (AnalyticalCostModel(pkg), _simulator(pkg)):
            res = model.evaluate(g, np.array([2, 0]))
            assert not res.valid
            assert res.failure_reason == "unreachable_edge:chain3"

    def test_backward_transfers_valid_on_biring(self):
        g = _chain(2)
        pkg = MCMPackage(n_chips=4, topology=BiRing(4))
        for model in (AnalyticalCostModel(pkg), _simulator(pkg)):
            res = model.evaluate(g, np.array([1, 0]))
            assert res.valid and res.throughput > 0


class TestBiRingContention:
    def test_wraparound_transfer_occupies_only_wrap_link(self):
        topo = BiRing(4)
        pkg = MCMPackage(n_chips=4, topology=topo)
        sim = _simulator(pkg)
        res = sim.evaluate(_chain(2), np.array([3, 0]))
        assert res.valid
        busy = np.flatnonzero(res.link_latency_us)
        assert busy.size == 1
        assert tuple(topo.links[busy[0]]) == (3, 0)
        expected = _wire_us(pkg, 1e6) + pkg.chip.link_latency_us
        assert res.link_latency_us[busy[0]] == pytest.approx(expected)


class TestMeshContention:
    def test_xy_route_links_accumulate(self):
        topo = Mesh2D(2, 2)
        pkg = MCMPackage(n_chips=4, topology=topo)
        sim = _simulator(pkg)
        # 0 -> 3 routes 0 -> 1 -> 3 under XY: both links carry the transfer.
        res = sim.evaluate(_chain(2), np.array([0, 3]))
        assert res.valid
        busy = {tuple(topo.links[l]) for l in np.flatnonzero(res.link_latency_us)}
        assert busy == {(0, 1), (1, 3)}
        expected = _wire_us(pkg, 1e6) + pkg.chip.link_latency_us
        for l in np.flatnonzero(res.link_latency_us):
            assert res.link_latency_us[l] == pytest.approx(expected)

    def test_shared_link_contention_sums(self):
        topo = Mesh2D(2, 2)
        pkg = MCMPackage(n_chips=4, topology=topo)
        sim = _simulator(pkg)
        # Two producers on chip 0 feeding chips 1 and 3: link (0, 1) carries
        # both transfers, link (1, 3) only one.
        b = GraphBuilder("fanout")
        a = b.add_node("a", OpType.INPUT, compute_us=10.0, output_bytes=1e6)
        m = b.add_node("m", OpType.RELU, compute_us=10.0, output_bytes=1e6, inputs=[a])
        b.add_node("x", OpType.RELU, compute_us=10.0, output_bytes=1.0, inputs=[m])
        b.add_node("y", OpType.RELU, compute_us=10.0, output_bytes=1.0, inputs=[m])
        g = b.build()
        res = sim.evaluate(g, np.array([0, 0, 1, 3]))
        assert res.valid
        lut = {tuple(topo.links[l]): res.link_latency_us[l] for l in range(topo.n_links)}
        one = _wire_us(pkg, 1e6) + pkg.chip.link_latency_us
        assert lut[(0, 1)] == pytest.approx(2 * one)
        assert lut[(1, 3)] == pytest.approx(one)


class TestCrossbarContention:
    def test_transfers_never_interfere(self):
        topo = Crossbar(3)
        pkg = MCMPackage(n_chips=3, topology=topo)
        sim = _simulator(pkg)
        # 0 -> 1 and 1 -> 2 transfers ride dedicated links.
        res = sim.evaluate(_chain(3), np.array([0, 1, 2]))
        assert res.valid
        nonzero = res.link_latency_us[res.link_latency_us > 0]
        expected = _wire_us(pkg, 1e6) + pkg.chip.link_latency_us
        assert nonzero.size == 2
        np.testing.assert_allclose(nonzero, expected)

    def test_crossbar_beats_uniring_on_long_hops(self):
        """The same partition is cheaper without multi-hop link occupancy."""
        g = _chain(4, nbytes=4e6)
        assignment = np.array([0, 1, 2, 3])
        ring = _simulator(MCMPackage(n_chips=4)).evaluate(g, assignment)
        xbar = _simulator(
            MCMPackage(n_chips=4, topology=Crossbar(4))
        ).evaluate(g, assignment)
        assert ring.valid and xbar.valid
        assert xbar.link_latency_us.max() <= ring.link_latency_us.max()


class TestUniRingUnchanged:
    def test_simulator_matches_pre_refactor_reference(self):
        """Uni-ring contention numbers are the legacy difference-array ones."""
        g = _chain(4, nbytes=2e6)
        pkg = MCMPackage(n_chips=4)
        res = _simulator(pkg).evaluate(g, np.array([0, 0, 1, 3]))
        assert res.valid
        wire = _wire_us(pkg, 2e6) + pkg.chip.link_latency_us
        # transfer 0->1 rides link 0; transfer 1->3 rides links 1 and 2.
        np.testing.assert_allclose(res.link_latency_us, [wire, wire, wire])
