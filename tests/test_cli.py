"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graphs.serialization import save_graph
from tests.conftest import random_dag


class TestInfo:
    def test_zoo_graph(self, capsys):
        assert main(["info", "mlp"]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out

    def test_npz_graph(self, tmp_path, capsys):
        g = random_dag(0, 12)
        path = str(tmp_path / "g.npz")
        save_graph(g, path)
        assert main(["info", path]) == 0
        assert "12 nodes" in capsys.readouterr().out

    def test_unknown_graph(self):
        with pytest.raises(SystemExit):
            main(["info", "nonexistent"])


class TestZoo:
    def test_lists_graphs(self, capsys):
        assert main(["zoo"]) == 0
        out = capsys.readouterr().out
        assert "bert" in out and "mlp" in out

    def test_zoo_table_covers_every_builder(self):
        """Every ``build_*`` export of ``repro.graphs.zoo`` is reachable
        from the CLI ``_ZOO`` table."""
        import repro.graphs.zoo as zoo
        from repro.cli import _ZOO

        builders = {
            name
            for name in zoo.__all__
            if name.startswith("build_") and name != "build_dataset"
        }
        covered = set()
        for entry in _ZOO.values():
            if entry.__name__ in builders:
                covered.add(entry.__name__)
            else:  # parametrised lambda: resolve the builder it calls
                covered |= builders & set(entry.__code__.co_names)
        missing = builders - covered
        assert not missing, f"zoo builders missing from the CLI table: {missing}"

    def test_every_zoo_entry_builds(self):
        """Each table entry constructs a graph (small ones built fully)."""
        from repro.cli import _ZOO

        for name, fn in _ZOO.items():
            if name in ("bert", "bert-large"):  # heavyweight: covered elsewhere
                continue
            g = fn()
            assert g.n_nodes > 0, name


class TestPartition:
    def test_greedy(self, capsys):
        assert main(["partition", "mlp", "--method", "greedy"]) == 0
        out = capsys.readouterr().out
        assert "partition report" in out
        assert "improvement" in out

    def test_random_with_output(self, tmp_path, capsys):
        out_path = str(tmp_path / "assignment.npy")
        code = main(
            ["partition", "mlp", "--method", "random", "--samples", "5",
             "--output", out_path]
        )
        assert code == 0
        assignment = np.load(out_path)
        assert assignment.shape[0] > 0

    def test_latency_objective(self, capsys):
        code = main(
            ["partition", "mlp", "--method", "greedy", "--objective", "latency"]
        )
        assert code == 0
        assert "latency improvement" in capsys.readouterr().out

    def test_simulator_platform(self, capsys):
        code = main(
            ["partition", "mlp", "--method", "random", "--samples", "4",
             "--platform", "simulator"]
        )
        assert code == 0

    def test_rl_with_worker_pool(self, capsys):
        code = main(
            ["partition", "mlp", "--method", "rl", "--samples", "8",
             "--workers", "2", "--seed", "0"]
        )
        assert code == 0
        assert "improvement" in capsys.readouterr().out

    def test_workers_rejected_for_non_rl_methods(self, capsys):
        code = main(
            ["partition", "mlp", "--method", "random", "--samples", "4",
             "--workers", "2"]
        )
        assert code == 2
        assert "--method rl" in capsys.readouterr().err

    def test_eager_frontier_flag(self, capsys):
        code = main(
            ["partition", "mlp", "--method", "rl", "--samples", "4",
             "--chips", "8", "--eager-frontier", "on", "--seed", "0"]
        )
        assert code == 0

    def test_latency_objective_through_search(self, capsys):
        """End-to-end latency objective on the RL search path (not just the
        environment unit path)."""
        code = main(
            ["partition", "mlp", "--method", "rl", "--samples", "8",
             "--objective", "latency", "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "latency improvement" in out
        import re

        (value,) = re.findall(r"latency improvement over greedy heuristic: ([0-9.]+)x", out)
        assert float(value) > 0

    def test_latency_objective_through_random_search(self, capsys):
        code = main(
            ["partition", "mlp", "--method", "random", "--samples", "5",
             "--objective", "latency", "--seed", "0"]
        )
        assert code == 0
        assert "latency improvement" in capsys.readouterr().out


class TestTopologyCLI:
    def test_mesh_partition_with_dims(self, capsys):
        code = main(
            ["partition", "cnn", "--topology", "mesh", "--mesh-dims", "2x2",
             "--method", "rl", "--samples", "8", "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "static constraints: OK" in out
        assert "improvement" in out

    def test_biring_partition(self, capsys):
        code = main(
            ["partition", "mlp", "--topology", "biring", "--chips", "3",
             "--method", "random", "--samples", "4", "--seed", "0"]
        )
        assert code == 0
        assert "static constraints: OK" in capsys.readouterr().out

    def test_crossbar_partition_simulator(self, capsys):
        code = main(
            ["partition", "mlp", "--topology", "crossbar", "--chips", "3",
             "--method", "random", "--samples", "4", "--platform", "simulator"]
        )
        assert code == 0

    def test_mesh_dims_infer_chip_count(self, capsys):
        code = main(
            ["partition", "mlp", "--topology", "mesh", "--mesh-dims", "2x3",
             "--method", "greedy"]
        )
        assert code == 0
        assert "static constraints: OK" in capsys.readouterr().out

    def test_mesh_dims_conflict_rejected(self):
        with pytest.raises(SystemExit, match="conflicts"):
            main(
                ["partition", "mlp", "--topology", "mesh", "--mesh-dims", "2x2",
                 "--chips", "6", "--method", "greedy"]
            )

    def test_mesh_dims_require_mesh(self):
        with pytest.raises(SystemExit, match="--topology mesh"):
            main(
                ["partition", "mlp", "--topology", "biring",
                 "--mesh-dims", "2x2", "--method", "greedy"]
            )

    def test_validate_respects_topology(self, tmp_path, capsys):
        from repro.cli import _resolve_graph

        g = _resolve_graph("mlp")
        # Reversed greedy: invalid on the uni-ring, valid on the bi-ring.
        from repro.core.baselines import greedy_partition

        reversed_assignment = 2 - greedy_partition(g, 3)
        path = str(tmp_path / "a.npy")
        np.save(path, reversed_assignment)
        assert main(["validate", "mlp", path, "--chips", "3"]) == 1
        capsys.readouterr()
        code = main(
            ["validate", "mlp", path, "--chips", "3", "--topology", "biring"]
        )
        assert code == 0
        assert "valid" in capsys.readouterr().out


class TestValidate:
    def test_valid_assignment(self, tmp_path, capsys):
        from repro.cli import _resolve_graph
        from repro.core.baselines import greedy_partition

        g = _resolve_graph("mlp")
        path = str(tmp_path / "a.npy")
        np.save(path, greedy_partition(g, 4))
        assert main(["validate", "mlp", path]) == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_assignment(self, tmp_path, capsys):
        from repro.cli import _resolve_graph

        g = _resolve_graph("mlp")
        bad = np.zeros(g.n_nodes, dtype=int)
        bad[0] = 3  # source above its consumers: backward flow
        path = str(tmp_path / "a.npy")
        np.save(path, bad)
        assert main(["validate", "mlp", path]) == 1
        assert "INVALID" in capsys.readouterr().out
