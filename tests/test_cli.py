"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graphs.serialization import save_graph
from tests.conftest import random_dag


class TestInfo:
    def test_zoo_graph(self, capsys):
        assert main(["info", "mlp"]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out

    def test_npz_graph(self, tmp_path, capsys):
        g = random_dag(0, 12)
        path = str(tmp_path / "g.npz")
        save_graph(g, path)
        assert main(["info", path]) == 0
        assert "12 nodes" in capsys.readouterr().out

    def test_unknown_graph(self):
        with pytest.raises(SystemExit):
            main(["info", "nonexistent"])


class TestZoo:
    def test_lists_graphs(self, capsys):
        assert main(["zoo"]) == 0
        out = capsys.readouterr().out
        assert "bert" in out and "mlp" in out


class TestPartition:
    def test_greedy(self, capsys):
        assert main(["partition", "mlp", "--method", "greedy"]) == 0
        out = capsys.readouterr().out
        assert "partition report" in out
        assert "improvement" in out

    def test_random_with_output(self, tmp_path, capsys):
        out_path = str(tmp_path / "assignment.npy")
        code = main(
            ["partition", "mlp", "--method", "random", "--samples", "5",
             "--output", out_path]
        )
        assert code == 0
        assignment = np.load(out_path)
        assert assignment.shape[0] > 0

    def test_latency_objective(self, capsys):
        code = main(
            ["partition", "mlp", "--method", "greedy", "--objective", "latency"]
        )
        assert code == 0
        assert "latency improvement" in capsys.readouterr().out

    def test_simulator_platform(self, capsys):
        code = main(
            ["partition", "mlp", "--method", "random", "--samples", "4",
             "--platform", "simulator"]
        )
        assert code == 0

    def test_rl_with_worker_pool(self, capsys):
        code = main(
            ["partition", "mlp", "--method", "rl", "--samples", "8",
             "--workers", "2", "--seed", "0"]
        )
        assert code == 0
        assert "improvement" in capsys.readouterr().out

    def test_workers_rejected_for_non_rl_methods(self, capsys):
        code = main(
            ["partition", "mlp", "--method", "random", "--samples", "4",
             "--workers", "2"]
        )
        assert code == 2
        assert "--method rl" in capsys.readouterr().err

    def test_eager_frontier_flag(self, capsys):
        code = main(
            ["partition", "mlp", "--method", "rl", "--samples", "4",
             "--chips", "8", "--eager-frontier", "on", "--seed", "0"]
        )
        assert code == 0


class TestValidate:
    def test_valid_assignment(self, tmp_path, capsys):
        from repro.cli import _resolve_graph
        from repro.core.baselines import greedy_partition

        g = _resolve_graph("mlp")
        path = str(tmp_path / "a.npy")
        np.save(path, greedy_partition(g, 4))
        assert main(["validate", "mlp", path]) == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_assignment(self, tmp_path, capsys):
        from repro.cli import _resolve_graph

        g = _resolve_graph("mlp")
        bad = np.zeros(g.n_nodes, dtype=int)
        bad[0] = 3  # source above its consumers: backward flow
        path = str(tmp_path / "a.npy")
        np.save(path, bad)
        assert main(["validate", "mlp", path]) == 1
        assert "INVALID" in capsys.readouterr().out
