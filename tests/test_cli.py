"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graphs.serialization import save_graph
from tests.conftest import random_dag


class TestInfo:
    def test_zoo_graph(self, capsys):
        assert main(["info", "mlp"]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out

    def test_npz_graph(self, tmp_path, capsys):
        g = random_dag(0, 12)
        path = str(tmp_path / "g.npz")
        save_graph(g, path)
        assert main(["info", path]) == 0
        assert "12 nodes" in capsys.readouterr().out

    def test_unknown_graph(self):
        with pytest.raises(SystemExit):
            main(["info", "nonexistent"])


class TestZoo:
    def test_lists_graphs(self, capsys):
        assert main(["zoo"]) == 0
        out = capsys.readouterr().out
        assert "bert" in out and "mlp" in out

    def test_zoo_table_covers_every_builder(self):
        """Every ``build_*`` export of ``repro.graphs.zoo`` is reachable
        from the CLI ``_ZOO`` table."""
        import repro.graphs.zoo as zoo
        from repro.cli import _ZOO

        builders = {
            name
            for name in zoo.__all__
            if name.startswith("build_") and name != "build_dataset"
        }
        covered = set()
        for entry in _ZOO.values():
            if entry.__name__ in builders:
                covered.add(entry.__name__)
            else:  # parametrised lambda: resolve the builder it calls
                covered |= builders & set(entry.__code__.co_names)
        missing = builders - covered
        assert not missing, f"zoo builders missing from the CLI table: {missing}"

    def test_every_zoo_entry_builds(self):
        """Each table entry constructs a graph (small ones built fully)."""
        from repro.cli import _ZOO

        for name, fn in _ZOO.items():
            if name in ("bert", "bert-large"):  # heavyweight: covered elsewhere
                continue
            g = fn()
            assert g.n_nodes > 0, name


class TestPartition:
    def test_greedy(self, capsys):
        assert main(["partition", "mlp", "--method", "greedy"]) == 0
        out = capsys.readouterr().out
        assert "partition report" in out
        assert "improvement" in out

    def test_random_with_output(self, tmp_path, capsys):
        out_path = str(tmp_path / "assignment.npy")
        code = main(
            ["partition", "mlp", "--method", "random", "--samples", "5",
             "--output", out_path]
        )
        assert code == 0
        assignment = np.load(out_path)
        assert assignment.shape[0] > 0

    def test_latency_objective(self, capsys):
        code = main(
            ["partition", "mlp", "--method", "greedy", "--objective", "latency"]
        )
        assert code == 0
        assert "latency improvement" in capsys.readouterr().out

    def test_simulator_platform(self, capsys):
        code = main(
            ["partition", "mlp", "--method", "random", "--samples", "4",
             "--platform", "simulator"]
        )
        assert code == 0

    def test_rl_with_worker_pool(self, capsys):
        code = main(
            ["partition", "mlp", "--method", "rl", "--samples", "8",
             "--workers", "2", "--seed", "0"]
        )
        assert code == 0
        assert "improvement" in capsys.readouterr().out

    def test_workers_rejected_for_non_rl_methods(self, capsys):
        code = main(
            ["partition", "mlp", "--method", "random", "--samples", "4",
             "--workers", "2"]
        )
        assert code == 2
        assert "--method rl" in capsys.readouterr().err

    def test_eager_frontier_flag(self, capsys):
        code = main(
            ["partition", "mlp", "--method", "rl", "--samples", "4",
             "--chips", "8", "--eager-frontier", "on", "--seed", "0"]
        )
        assert code == 0

    def test_latency_objective_through_search(self, capsys):
        """End-to-end latency objective on the RL search path (not just the
        environment unit path)."""
        code = main(
            ["partition", "mlp", "--method", "rl", "--samples", "8",
             "--objective", "latency", "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "latency improvement" in out
        import re

        (value,) = re.findall(r"latency improvement over greedy heuristic: ([0-9.]+)x", out)
        assert float(value) > 0

    def test_latency_objective_through_random_search(self, capsys):
        code = main(
            ["partition", "mlp", "--method", "random", "--samples", "5",
             "--objective", "latency", "--seed", "0"]
        )
        assert code == 0
        assert "latency improvement" in capsys.readouterr().out


class TestTopologyCLI:
    def test_mesh_partition_with_dims(self, capsys):
        code = main(
            ["partition", "cnn", "--topology", "mesh", "--mesh-dims", "2x2",
             "--method", "rl", "--samples", "8", "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "static constraints: OK" in out
        assert "improvement" in out

    def test_biring_partition(self, capsys):
        code = main(
            ["partition", "mlp", "--topology", "biring", "--chips", "3",
             "--method", "random", "--samples", "4", "--seed", "0"]
        )
        assert code == 0
        assert "static constraints: OK" in capsys.readouterr().out

    def test_crossbar_partition_simulator(self, capsys):
        code = main(
            ["partition", "mlp", "--topology", "crossbar", "--chips", "3",
             "--method", "random", "--samples", "4", "--platform", "simulator"]
        )
        assert code == 0

    def test_mesh_dims_infer_chip_count(self, capsys):
        code = main(
            ["partition", "mlp", "--topology", "mesh", "--mesh-dims", "2x3",
             "--method", "greedy"]
        )
        assert code == 0
        assert "static constraints: OK" in capsys.readouterr().out

    def test_mesh_dims_conflict_rejected(self):
        with pytest.raises(SystemExit, match="conflicts"):
            main(
                ["partition", "mlp", "--topology", "mesh", "--mesh-dims", "2x2",
                 "--chips", "6", "--method", "greedy"]
            )

    def test_mesh_dims_require_mesh(self):
        with pytest.raises(SystemExit, match="--topology mesh"):
            main(
                ["partition", "mlp", "--topology", "biring",
                 "--mesh-dims", "2x2", "--method", "greedy"]
            )

    def test_validate_respects_topology(self, tmp_path, capsys):
        from repro.cli import _resolve_graph

        g = _resolve_graph("mlp")
        # Reversed greedy: invalid on the uni-ring, valid on the bi-ring.
        from repro.core.baselines import greedy_partition

        reversed_assignment = 2 - greedy_partition(g, 3)
        path = str(tmp_path / "a.npy")
        np.save(path, reversed_assignment)
        assert main(["validate", "mlp", path, "--chips", "3"]) == 1
        capsys.readouterr()
        code = main(
            ["validate", "mlp", path, "--chips", "3", "--topology", "biring"]
        )
        assert code == 0
        assert "valid" in capsys.readouterr().out


class TestValidate:
    def test_valid_assignment(self, tmp_path, capsys):
        from repro.cli import _resolve_graph
        from repro.core.baselines import greedy_partition

        g = _resolve_graph("mlp")
        path = str(tmp_path / "a.npy")
        np.save(path, greedy_partition(g, 4))
        assert main(["validate", "mlp", path]) == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_assignment(self, tmp_path, capsys):
        from repro.cli import _resolve_graph

        g = _resolve_graph("mlp")
        bad = np.zeros(g.n_nodes, dtype=int)
        bad[0] = 3  # source above its consumers: backward flow
        path = str(tmp_path / "a.npy")
        np.save(path, bad)
        assert main(["validate", "mlp", path]) == 1
        assert "INVALID" in capsys.readouterr().out


class TestServeRequest:
    """The serving verbs: ``repro serve`` + ``repro request``."""

    @pytest.fixture
    def live_server(self):
        """An in-process server wired exactly like ``repro serve``."""
        from repro.cli import _resolve_zoo_graph
        from repro.core.partitioner import RLPartitionerConfig
        from repro.rl.ppo import PPOConfig
        from repro.serve import (
            PartitionServer,
            PartitionService,
            ServiceConfig,
        )

        service = PartitionService(
            ServiceConfig(default_samples=4),
            partitioner_config=RLPartitionerConfig(
                hidden=16, n_sage_layers=1, refine_iters=1,
                ppo=PPOConfig(n_rollouts=4, n_minibatches=1, n_epochs=1),
            ),
        )
        with PartitionServer(
            service, port=0, graph_resolver=_resolve_zoo_graph
        ).start() as server:
            yield server

    def test_request_cold_then_cached(self, live_server, capsys):
        args = ["request", "mlp", "--port", str(live_server.port)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "computed (cold)" in first
        assert "improvement over greedy heuristic" in first
        assert main(args) == 0
        assert "cache hit" in capsys.readouterr().out

    def test_request_json_and_output(self, live_server, tmp_path, capsys):
        import json

        out_path = str(tmp_path / "a.npy")
        code = main(
            ["request", "mlp", "--port", str(live_server.port), "--json"]
        )
        assert code == 0
        reply = json.loads(capsys.readouterr().out)
        assert reply["chips"] == 4
        code = main(
            ["request", "mlp", "--port", str(live_server.port),
             "--output", out_path]
        )
        assert code == 0
        capsys.readouterr()
        assignment = np.load(out_path)
        assert assignment.tolist() == reply["assignment"]

    def test_request_json_with_output_still_writes(self, live_server,
                                                   tmp_path, capsys):
        """--json must not short-circuit --output."""
        import json

        out_path = str(tmp_path / "b.npy")
        code = main(
            ["request", "mlp", "--port", str(live_server.port),
             "--json", "--output", out_path]
        )
        assert code == 0
        reply = json.loads(capsys.readouterr().out)
        assert np.load(out_path).tolist() == reply["assignment"]

    def test_request_npz_graph_is_inlined(self, live_server, tmp_path, capsys):
        g = random_dag(2, 15)
        path = str(tmp_path / "g.npz")
        save_graph(g, path)
        code = main(["request", path, "--port", str(live_server.port)])
        assert code == 0
        assert "improvement" in capsys.readouterr().out

    def test_request_mesh_dims_implies_chips(self, live_server, capsys):
        code = main(
            ["request", "mlp", "--port", str(live_server.port),
             "--topology", "mesh", "--mesh-dims", "2x3", "--json"]
        )
        assert code == 0
        import json

        assert json.loads(capsys.readouterr().out)["chips"] == 6

    def test_request_unknown_graph_rejected(self, live_server):
        with pytest.raises(SystemExit, match="unknown graph"):
            main(["request", "ghost", "--port", str(live_server.port)])

    def test_request_connection_refused_fails_cleanly(self, capsys):
        # A port from the ephemeral range with (almost surely) no listener.
        code = main(["request", "mlp", "--port", "1", "--timeout", "5"])
        assert code == 1
        assert "request failed" in capsys.readouterr().err

    def test_serve_cli_end_to_end(self, tmp_path, capsys):
        """``repro serve --max-requests`` in a subprocess: the full CLI
        surface, ephemeral port parsed from the announce line."""
        import os
        import subprocess
        import sys as _sys

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro", "serve", "--port", "0",
             "--max-requests", "2", "--samples", "4"],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            announce = proc.stdout.readline().strip()
            assert announce.startswith("serving on ")
            port = announce.rsplit(":", 1)[1]
            assert main(["request", "mlp", "--port", port, "--samples", "4"]) == 0
            capsys.readouterr()
            assert main(["request", "mlp", "--port", port, "--samples", "4"]) == 0
            assert "cache hit" in capsys.readouterr().out
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()


    def test_serve_fault_plan_parse_error_is_usage_error(self):
        """A malformed --fault-plan must exit with the grammar, not start a
        server with no chaos armed."""
        with pytest.raises(SystemExit, match="--fault-plan"):
            main(["serve", "--port", "0", "--fault-plan", "nonsense"])

    def test_route_cli_end_to_end(self, capsys):
        """``repro route`` in a subprocess: spawns its shards, announces the
        same machine-readable first line as ``repro serve``, serves
        ``repro request`` unchanged, and shuts its shards down on SIGINT."""
        import json
        import os
        import signal
        import subprocess
        import sys as _sys
        import urllib.request

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro", "route", "--port", "0",
             "--shards", "2", "--replication", "2", "--samples", "4",
             "--probe-interval", "0.5"],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            announce = proc.stdout.readline().strip()
            assert announce.startswith("serving on ")
            port = announce.rsplit(":", 1)[1]
            for shard_id in ("s0", "s1"):
                line = proc.stdout.readline().strip()
                assert line.startswith(f"shard {shard_id} on ")
            assert main(["request", "mlp", "--port", port,
                         "--samples", "4"]) == 0
            capsys.readouterr()
            assert main(["request", "mlp", "--port", port,
                         "--samples", "4"]) == 0
            assert "cache hit" in capsys.readouterr().out
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=30
            ) as resp:
                metrics = json.loads(resp.read())
            assert metrics["router"] is True
            assert metrics["requests_total"] == 2
            assert set(metrics["shards"]) == {"s0", "s1"}
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_request_mesh_dims_require_mesh(self, live_server):
        with pytest.raises(SystemExit, match="--topology mesh"):
            main(
                ["request", "mlp", "--port", str(live_server.port),
                 "--mesh-dims", "2x3"]
            )

    def test_request_mesh_dims_chip_conflict(self, live_server):
        with pytest.raises(SystemExit, match="conflicts"):
            main(
                ["request", "mlp", "--port", str(live_server.port),
                 "--topology", "mesh", "--mesh-dims", "2x3", "--chips", "4"]
            )

    def test_server_never_reads_server_local_paths(self, live_server, tmp_path):
        """A path-shaped graph name is rejected with a clean 422: the HTTP
        resolver is zoo-names-only, so remote clients cannot make the
        server load arbitrary server-side .npz files."""
        from repro.serve import ServiceError, request_partition

        g = random_dag(3, 8)
        path = str(tmp_path / "probe.npz")
        save_graph(g, path)  # exists server-side, must still be refused
        with pytest.raises(ServiceError, match="422.*unknown graph"):
            request_partition({"graph": path, "chips": 4},
                              port=live_server.port)
