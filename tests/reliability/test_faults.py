"""Unit tests for the deterministic fault-injection plan."""

import pytest

from repro.reliability import Fault, FaultPlan, InjectedIOError


class TestFire:
    def test_exact_key_match_consumes_once(self):
        plan = FaultPlan([Fault(site="pool", kind="crash", at=(1, 0))])
        assert plan.fire("pool", "crash", (1, 0)) is not None
        assert plan.fire("pool", "crash", (1, 0)) is None  # spent

    def test_prefix_match(self):
        plan = FaultPlan([Fault(site="registry", kind="io_error", at=("load",))])
        assert plan.fire("registry", "io_error", ("load", "extra")) is not None

    def test_empty_at_matches_everything(self):
        plan = FaultPlan([Fault(site="server", kind="drop")])
        assert plan.fire("server", "drop", ("/partition",)) is not None

    def test_site_and_kind_must_match(self):
        plan = FaultPlan([Fault(site="pool", kind="crash", at=(0, 0))])
        assert plan.fire("pool", "delay", (0, 0)) is None
        assert plan.fire("cache", "crash", (0, 0)) is None
        assert plan.fire("pool", "crash", (0, 1)) is None
        # nothing above consumed it
        assert plan.fire("pool", "crash", (0, 0)) is not None

    def test_times_bounds_firing(self):
        plan = FaultPlan([Fault(site="server", kind="drop", times=2)])
        assert plan.fire("server", "drop", ()) is not None
        assert plan.fire("server", "drop", ()) is not None
        assert plan.fire("server", "drop", ()) is None

    def test_negative_times_never_spends(self):
        plan = FaultPlan([Fault(site="cache", kind="io_error", times=-1)])
        for _ in range(10):
            assert plan.fire("cache", "io_error", ("append",)) is not None

    def test_fired_log_records_keys(self):
        plan = FaultPlan([Fault(site="pool", kind="crash", at=(2, 1))])
        plan.fire("pool", "crash", (2, 1))
        assert plan.fired == [("pool", "crash", (2, 1))]


class TestIOError:
    def test_raises_injected_oserror(self):
        plan = FaultPlan(
            [Fault(site="registry", kind="io_error", at=("publish",))]
        )
        with pytest.raises(InjectedIOError):
            plan.io_error("registry", "publish")
        # spent: second call is clean
        plan.io_error("registry", "publish")

    def test_injected_error_is_oserror(self):
        # Layers catch OSError; the injection must be indistinguishable.
        assert issubclass(InjectedIOError, OSError)


class TestPoolDirective:
    def test_crash_directive(self):
        plan = FaultPlan([Fault(site="pool", kind="crash", at=(0, 1))])
        assert plan.pool_directive((0, 1)) == ("crash",)
        assert plan.pool_directive((0, 1)) is None  # consumed

    def test_delay_directive_carries_duration(self):
        plan = FaultPlan(
            [Fault(site="pool", kind="delay", at=(1, 0), delay_s=2.5)]
        )
        assert plan.pool_directive((1, 0)) == ("delay", 2.5)

    def test_clean_task_gets_no_directive(self):
        plan = FaultPlan([Fault(site="pool", kind="crash", at=(0, 0))])
        assert plan.pool_directive((3, 3)) is None


class TestGenerate:
    def test_same_seed_same_plan(self):
        a = FaultPlan.generate(seed=7, n_faults=3)
        b = FaultPlan.generate(seed=7, n_faults=3)
        assert a._faults == b._faults

    def test_different_seeds_differ(self):
        a = FaultPlan.generate(seed=7, n_faults=4)
        b = FaultPlan.generate(seed=8, n_faults=4)
        assert a._faults != b._faults

    def test_targets_are_pool_tasks_in_range(self):
        plan = FaultPlan.generate(seed=3, n_windows=4, n_shards=2, n_faults=5)
        for fault in plan._faults:
            assert fault.site == "pool"
            assert fault.kind in ("crash", "delay")
            window, shard = fault.at
            assert 0 <= window < 4
            assert 0 <= shard < 2


class TestCounts:
    def test_counts_surface(self):
        plan = FaultPlan(
            [
                Fault(site="pool", kind="crash", at=(0, 0)),
                Fault(site="cache", kind="io_error", times=-1),
            ]
        )
        plan.fire("pool", "crash", (0, 0))
        plan.fire("cache", "io_error", ("append",))
        plan.fire("cache", "io_error", ("append",))
        counts = plan.counts()
        assert counts["fired_total"] == 3
        assert counts["fired_by_site"] == {"pool": 1, "cache": 2}
        assert counts["armed"] == 1  # only the unspendable cache fault


class TestParse:
    def test_single_fault_with_options(self):
        plan = FaultPlan.parse("registry:io_error:at=load:times=-1", seed=9)
        assert plan.seed == 9
        fault = plan._faults[0]
        assert (fault.site, fault.kind, fault.at) == (
            "registry", "io_error", ("load",)
        )
        assert fault.times == -1

    def test_multiple_faults_and_separators(self):
        plan = FaultPlan.parse(
            "server:drop:times=2; shard_stall:stall:at=s0:delay=1.5,"
            "shard_kill:kill:at=s1"
        )
        assert [f.site for f in plan._faults] == [
            "server", "shard_stall", "shard_kill"
        ]
        assert plan._faults[1].delay_s == 1.5
        assert plan._faults[1].at == ("s0",)
        assert plan._faults[2].at == ("s1",)

    def test_at_parses_ints_where_possible(self):
        plan = FaultPlan.parse("pool:crash:at=2/1")
        assert plan._faults[0].at == (2, 1)  # pool task ids are int tuples

    def test_parsed_plan_fires(self):
        plan = FaultPlan.parse("shard_kill:kill:at=s1")
        assert plan.fire("shard_kill", "kill", ("s0",)) is None
        assert plan.fire("shard_kill", "kill", ("s1",)) is not None
        assert plan.fire("shard_kill", "kill", ("s1",)) is None  # spent

    def test_malformed_specs_rejected(self):
        with pytest.raises(ValueError, match="expected site:kind"):
            FaultPlan.parse("justasite")
        with pytest.raises(ValueError, match="expected at=/times=/delay="):
            FaultPlan.parse("server:drop:banana")
        with pytest.raises(ValueError, match="unknown fault option"):
            FaultPlan.parse("server:drop:wat=1")
        with pytest.raises(ValueError, match="declares no faults"):
            FaultPlan.parse(" ; ")


class TestDescribe:
    def test_describe_tracks_remaining_budget(self):
        plan = FaultPlan.parse("server:drop:times=2;cache:io_error:times=-1")
        before = plan.describe()
        assert before[0] == {
            "site": "server", "kind": "drop", "at": [],
            "delay_s": 0.0, "times": 2, "remaining": 2,
        }
        assert before[1]["remaining"] == -1
        plan.fire("server", "drop", ("/partition",))
        try:
            plan.io_error("cache", "append")
        except InjectedIOError:
            pass
        after = plan.describe()
        assert after[0]["remaining"] == 1
        assert after[1]["remaining"] == -1  # unspendable stays armed

    def test_describe_is_json_safe(self):
        import json

        plan = FaultPlan.parse("pool:crash:at=1/0:delay=0.5")
        json.dumps(plan.describe())  # must not raise
