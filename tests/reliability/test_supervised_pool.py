"""Supervised worker pool: death/stall detection, respawn, reassignment.

The invariant under test: losing a worker changes *when* a result arrives,
never *what* it is — a reassigned task replays the same spawn-keyed RNG
stream on the replacement worker (see ``task_rng``).
"""

import numpy as np
import pytest

from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.package import MCMPackage
from repro.parallel import (
    InlineExecutor,
    ReplayTask,
    WorkerPool,
    fork_available,
)
from repro.reliability import Fault, FaultPlan
from repro.rl.features import featurize
from repro.rl.ppo import PPOConfig
from tests.conftest import random_dag

N_CHIPS = 3

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="fork start method required"
)


def _tiny_partitioner(rng=0):
    cfg = RLPartitionerConfig(
        hidden=16,
        n_sage_layers=1,
        n_policy_layers=1,
        refine_iters=1,
        ppo=PPOConfig(n_rollouts=4, n_minibatches=1, n_epochs=1),
    )
    return RLPartitioner(N_CHIPS, config=cfg, rng=rng)


@pytest.fixture
def env():
    graph = random_dag(3, 14)
    package = MCMPackage(n_chips=N_CHIPS)
    return PartitionEnvironment(graph, AnalyticalCostModel(package), N_CHIPS)


def _replay(task_id=(0, 0), samples=4, seed=(3, 2, 0, 0)):
    return ReplayTask(
        task_id=task_id, graph_idx=0, n_samples=samples, seed=seed
    )


def _inline_result(env, task):
    partitioner = _tiny_partitioner()
    ex = InlineExecutor(partitioner, [env], [featurize(env.graph)])
    ex.submit(0, "replay", task)
    return ex.recv_any()[1]


class TestCrashRecovery:
    def test_crashed_worker_is_respawned_and_result_identical(self, env):
        task = _replay()
        expected = _inline_result(env, task)
        plan = FaultPlan([Fault(site="pool", kind="crash", at=(0, 0))])
        partitioner = _tiny_partitioner()
        with WorkerPool(
            partitioner, [env], [featurize(env.graph)],
            n_workers=1, fault_plan=plan,
        ) as pool:
            pool.submit(0, "replay", task)
            kind, result = pool.recv_any()
            assert kind == "replay"
            assert pool.respawns == 1
        assert plan.counts()["fired_total"] == 1
        np.testing.assert_array_equal(
            result.improvements, expected.improvements
        )
        assert result.best_improvement == expected.best_improvement

    def test_replacement_worker_serves_subsequent_tasks(self, env):
        plan = FaultPlan([Fault(site="pool", kind="crash", at=(0, 0))])
        partitioner = _tiny_partitioner()
        feats = featurize(env.graph)
        with WorkerPool(
            partitioner, [env], [feats], n_workers=1, fault_plan=plan
        ) as pool:
            pool.submit(0, "replay", _replay(task_id=(0, 0)))
            pool.submit(0, "replay", _replay(task_id=(1, 0), seed=(3, 2, 1, 0)))
            replies = {pool.recv_any()[1].task_id for _ in range(2)}
        assert replies == {(0, 0), (1, 0)}

    def test_respawn_budget_exhaustion_raises(self, env):
        plan = FaultPlan([Fault(site="pool", kind="crash", at=(0, 0))])
        partitioner = _tiny_partitioner()
        pool = WorkerPool(
            partitioner, [env], [featurize(env.graph)],
            n_workers=1, fault_plan=plan, max_respawns=0,
        )
        try:
            pool.submit(0, "replay", _replay())
            with pytest.raises(RuntimeError, match="respawn budget"):
                pool.recv_any()
        finally:
            pool.close(force=True)


class TestStuckWorkerRecovery:
    def test_stalled_worker_is_reaped_and_result_identical(self, env):
        task = _replay()
        expected = _inline_result(env, task)
        # The injected stall (30s) dwarfs the deadline (0.5s): the test
        # passes quickly *because* the supervisor kills the stuck worker.
        plan = FaultPlan(
            [Fault(site="pool", kind="delay", at=(0, 0), delay_s=30.0)]
        )
        partitioner = _tiny_partitioner()
        with WorkerPool(
            partitioner, [env], [featurize(env.graph)],
            n_workers=1, fault_plan=plan, task_deadline=0.5, timeout=60.0,
        ) as pool:
            pool.submit(0, "replay", task)
            kind, result = pool.recv_any()
            assert pool.respawns == 1
        np.testing.assert_array_equal(
            result.improvements, expected.improvements
        )

    def test_short_delay_within_deadline_needs_no_respawn(self, env):
        plan = FaultPlan(
            [Fault(site="pool", kind="delay", at=(0, 0), delay_s=0.05)]
        )
        partitioner = _tiny_partitioner()
        with WorkerPool(
            partitioner, [env], [featurize(env.graph)],
            n_workers=1, fault_plan=plan, task_deadline=10.0,
        ) as pool:
            pool.submit(0, "replay", _replay())
            pool.recv_any()
            assert pool.respawns == 0
