"""Chaos suite: faulty runs must be *bit-identical* to fault-free runs.

Each test runs the same workload twice — once clean, once under a
:class:`FaultPlan` that kills or stalls workers mid-window — and asserts
the merged trajectory, best assignment, and final weights match exactly.
This is the payoff of spawn-keyed RNG + epoch-replayed weights: worker
loss is invisible in results, not just survivable.

Marked ``chaos`` (multi-process, seconds per test): deselected from the
tier-1 run by default, exercised by ``pytest -m chaos`` in CI.
"""

import numpy as np
import pytest

from repro.core.environment import PartitionEnvironment
from repro.core.partitioner import RLPartitioner, RLPartitionerConfig
from repro.core.pretrain import PretrainConfig
from repro.graphs.zoo import build_dataset
from repro.hardware.analytical import AnalyticalCostModel
from repro.hardware.package import MCMPackage
from repro.parallel import (
    ParallelConfig,
    fork_available,
    parallel_pretrain,
    parallel_search,
    replay_batch,
)
from repro.reliability import Fault, FaultPlan
from repro.rl.features import featurize
from repro.rl.ppo import PPOConfig

N_CHIPS = 4

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.skipif(not fork_available(), reason="fork start method required"),
]


@pytest.fixture(scope="module")
def graphs():
    return list(build_dataset(seed=0).train[:2])


def _env(graph):
    package = MCMPackage(n_chips=N_CHIPS)
    return PartitionEnvironment(graph, AnalyticalCostModel(package), N_CHIPS)


def _partitioner(rng=5):
    cfg = RLPartitionerConfig(
        hidden=32,
        n_sage_layers=2,
        ppo=PPOConfig(n_rollouts=10, n_minibatches=2, n_epochs=3),
    )
    return RLPartitioner(N_CHIPS, config=cfg, rng=rng)


def _weights_equal(a: RLPartitioner, b: RLPartitioner) -> bool:
    sa, sb = a.state_dict(), b.state_dict()
    return all(np.array_equal(sa[k], sb[k]) for k in sa)


def _crash_at(window, shard):
    return FaultPlan([Fault(site="pool", kind="crash", at=(window, shard))])


class TestRolloutChaos:
    """Worker killed mid-window during PPO-training search."""

    def test_crash_mid_search_bit_identical(self, graphs):
        clean_p, chaos_p = _partitioner(), _partitioner()
        clean = parallel_search(
            clean_p, _env(graphs[0]), 25,
            config=ParallelConfig(n_workers=2, seed=99),
        )
        plan = _crash_at(1, 0)
        chaos = parallel_search(
            chaos_p, _env(graphs[0]), 25,
            config=ParallelConfig(n_workers=2, seed=99, fault_plan=plan),
        )
        assert plan.counts()["fired_total"] == 1, "fault must actually fire"
        np.testing.assert_array_equal(clean.improvements, chaos.improvements)
        np.testing.assert_array_equal(
            clean.best_assignment, chaos.best_assignment
        )
        assert clean.best_improvement == chaos.best_improvement
        assert _weights_equal(clean_p, chaos_p)

    def test_stalled_worker_mid_search_bit_identical(self, graphs):
        clean_p, chaos_p = _partitioner(), _partitioner()
        clean = parallel_search(
            clean_p, _env(graphs[0]), 25,
            config=ParallelConfig(n_workers=2, seed=99),
        )
        plan = FaultPlan(
            [Fault(site="pool", kind="delay", at=(1, 1), delay_s=30.0)]
        )
        chaos = parallel_search(
            chaos_p, _env(graphs[0]), 25,
            config=ParallelConfig(
                n_workers=2, seed=99, fault_plan=plan, task_deadline=0.8,
            ),
        )
        assert plan.counts()["fired_total"] == 1
        np.testing.assert_array_equal(clean.improvements, chaos.improvements)
        assert _weights_equal(clean_p, chaos_p)

    def test_seed_generated_plan_bit_identical(self, graphs):
        """Any seed-keyed random plan leaves results untouched."""
        clean = parallel_search(
            _partitioner(), _env(graphs[0]), 25,
            config=ParallelConfig(n_workers=2, seed=4),
        )
        plan = FaultPlan.generate(seed=11, n_windows=3, n_shards=2, n_faults=2)
        chaos = parallel_search(
            _partitioner(), _env(graphs[0]), 25,
            config=ParallelConfig(n_workers=2, seed=4, fault_plan=plan),
        )
        np.testing.assert_array_equal(clean.improvements, chaos.improvements)


class TestPretrainChaos:
    """Worker killed mid-window during the pre-training rotation."""

    def test_crash_mid_pretrain_identical_checkpoints(self, graphs):
        cfg = PretrainConfig(
            total_samples=40, n_checkpoints=4, samples_per_graph=10
        )
        clean_p, chaos_p = _partitioner(11), _partitioner(11)
        clean = parallel_pretrain(
            clean_p, graphs, _env, cfg,
            parallel=ParallelConfig(n_workers=2, seed=7),
        )
        plan = _crash_at(1, 0)
        chaos = parallel_pretrain(
            chaos_p, graphs, _env, cfg,
            parallel=ParallelConfig(n_workers=2, seed=7, fault_plan=plan),
        )
        assert plan.counts()["fired_total"] == 1
        assert [c.step for c in clean] == [c.step for c in chaos]
        for a, b in zip(clean, chaos):
            for key in a.state:
                np.testing.assert_array_equal(a.state[key], b.state[key])
        assert _weights_equal(clean_p, chaos_p)


class TestReplayChaos:
    """Worker killed mid-window during zero-shot serving replay."""

    def test_crash_mid_replay_smoke(self, graphs):
        # The CI chaos smoke (`-m chaos -k smoke`): cheapest end-to-end
        # kill-and-recover with a bit-identity assertion.
        partitioner = _partitioner()
        envs = [_env(g) for g in graphs]
        feats = [featurize(g) for g in graphs]
        seeds = [(0, 2, i) for i in range(len(envs))]
        clean = replay_batch(
            partitioner, envs, [6] * len(envs), seeds,
            config=ParallelConfig(n_workers=2, seed=0),
            features=feats,
        )
        plan = _crash_at(0, 0)  # replay task ids are (env_idx, 0)
        chaos = replay_batch(
            partitioner, envs, [6] * len(envs), seeds,
            config=ParallelConfig(n_workers=2, seed=0, fault_plan=plan),
            features=feats,
        )
        assert plan.counts()["fired_total"] == 1
        for a, b in zip(clean, chaos):
            np.testing.assert_array_equal(a.improvements, b.improvements)
            np.testing.assert_array_equal(a.best_assignment, b.best_assignment)
