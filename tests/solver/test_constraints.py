"""Tests for the static-constraint validators (paper Figure 2)."""

import numpy as np
import pytest

from repro.graphs.builders import GraphBuilder
from repro.graphs.ops import OpType
from repro.solver.constraints import (
    check_acyclic_dataflow,
    check_no_skipping,
    check_triangle_dependency,
    validate_partition,
)


@pytest.fixture
def figure2_graph():
    """The 5-node graph of paper Figure 2a: 0->1, 0->2, 1->3, 2->4, 3->4."""
    b = GraphBuilder("fig2")
    n0 = b.add_node("0", OpType.INPUT, compute_us=1.0, output_bytes=8.0)
    n1 = b.add_node("1", OpType.RELU, compute_us=1.0, output_bytes=8.0, inputs=[n0])
    n2 = b.add_node("2", OpType.RELU, compute_us=1.0, output_bytes=8.0, inputs=[n0])
    n3 = b.add_node("3", OpType.RELU, compute_us=1.0, output_bytes=8.0, inputs=[n1])
    b.add_node("4", OpType.ADD, compute_us=1.0, output_bytes=8.0, inputs=[n2, n3])
    return b.build()


class TestAcyclicDataflow:
    def test_valid_forward_flow(self, figure2_graph):
        assert check_acyclic_dataflow(figure2_graph, np.array([0, 0, 1, 1, 1]))

    def test_figure2c_backward_transfer(self, figure2_graph):
        # node 2 on chip 1 feeding node 4 on chip 0 (paper Figure 2c).
        assignment = np.array([0, 0, 1, 0, 0])
        assert not check_acyclic_dataflow(figure2_graph, assignment)

    def test_same_chip_trivially_valid(self, figure2_graph):
        assert check_acyclic_dataflow(figure2_graph, np.zeros(5, dtype=int))


class TestNoSkipping:
    def test_prefix_use_valid(self, figure2_graph):
        assert check_no_skipping(figure2_graph, np.array([0, 0, 1, 1, 1]), 4)

    def test_figure2d_skipped_chip(self, figure2_graph):
        # chips {0, 2} used, chip 1 skipped (paper Figure 2d).
        assert not check_no_skipping(figure2_graph, np.array([0, 0, 0, 2, 2]), 4)

    def test_not_all_chips_required(self, figure2_graph):
        # using only chips {0, 1} of 4 is fine.
        assert check_no_skipping(figure2_graph, np.array([0, 0, 0, 1, 1]), 4)


class TestTriangleDependency:
    def test_figure2e_pattern(self, figure2_graph):
        # node0@0 -> node2@2 direct; node0@0 -> node1@1 -> node3@1...
        # build: 0 on chip0, 1,3 on chip1, 2 on chip2, 4 on chip2
        # direct dep 0->2 (edge 0->2), indirect 0->1->2 via 1->3(chip1)->4(chip2)
        assignment = np.array([0, 1, 2, 1, 2])
        assert not check_triangle_dependency(figure2_graph, assignment, 3)

    def test_adjacent_chain_valid(self, figure2_graph):
        assignment = np.array([0, 0, 1, 1, 2])
        # edges: 0->2 chip(0,1); 2->4 chip(1,2); 3->4 chip(1,2); ok path
        assert check_triangle_dependency(figure2_graph, assignment, 3)

    def test_single_chip_valid(self, figure2_graph):
        assert check_triangle_dependency(figure2_graph, np.zeros(5, dtype=int), 3)


class TestValidatePartition:
    def test_valid_report(self, figure2_graph):
        report = validate_partition(figure2_graph, np.array([0, 0, 1, 1, 1]), 4)
        assert report.ok
        assert report.violated == ()

    def test_violations_named(self, figure2_graph):
        report = validate_partition(figure2_graph, np.array([0, 0, 0, 2, 2]), 4)
        assert not report.ok
        assert "no_skipping" in report.violated

    def test_backward_flow_marks_triangle_unchecked(self, figure2_graph):
        report = validate_partition(figure2_graph, np.array([1, 1, 1, 0, 0]), 4)
        assert not report.acyclic_dataflow
        assert not report.triangle_dependency

    def test_shape_validation(self, figure2_graph):
        with pytest.raises(ValueError):
            validate_partition(figure2_graph, np.zeros(3, dtype=int), 4)
