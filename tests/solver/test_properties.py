"""Property-based tests (hypothesis) for the constraint solver."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver.chipgraph import longest_paths
from repro.solver.constraints import validate_partition
from repro.solver.engine import ConstraintSolver
from repro.solver.fallback import contiguous_partition
from repro.solver.strategies import fix_partition, sample_partition
from tests.conftest import random_dag


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 1000),
    n_nodes=st.integers(3, 30),
    n_chips=st.integers(1, 6),
)
def test_sample_partition_always_valid(seed, n_nodes, n_chips):
    """Algorithm 1 must emit partitions satisfying every static constraint."""
    g = random_dag(seed, n_nodes)
    probs = np.full((n_nodes, n_chips), 1.0 / n_chips)
    y = sample_partition(g, probs, n_chips, rng=seed)
    assert validate_partition(g, y, n_chips).ok


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 1000),
    n_nodes=st.integers(3, 30),
    n_chips=st.integers(1, 6),
)
def test_fix_partition_always_valid(seed, n_nodes, n_chips):
    """Algorithm 2 must repair any candidate into a valid partition."""
    g = random_dag(seed, n_nodes)
    rng = np.random.default_rng(seed)
    candidate = rng.integers(0, n_chips, n_nodes)
    y = fix_partition(g, candidate, n_chips, rng=rng)
    assert validate_partition(g, y, n_chips).ok


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 1000),
    n_nodes=st.integers(3, 40),
    n_chips=st.integers(1, 8),
)
def test_contiguous_fallback_always_valid(seed, n_nodes, n_chips):
    """The constructive heuristic is valid for every DAG and chip count."""
    g = random_dag(seed, n_nodes)
    y = contiguous_partition(g, n_chips)
    assert validate_partition(g, y, n_chips).ok


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 1000), n_nodes=st.integers(3, 25))
def test_fix_is_identity_on_valid_candidates(seed, n_nodes):
    """A valid candidate passes FIX mode unchanged (Algorithm 2 phase 1)."""
    g = random_dag(seed, n_nodes)
    candidate = contiguous_partition(g, 3)
    y = fix_partition(g, candidate, 3, rng=seed)
    np.testing.assert_array_equal(y, candidate)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 10),
    density=st.floats(0.0, 1.0),
)
def test_longest_paths_agree_with_networkx(seed, n, density):
    """Longest-path DP matches networkx's dag_longest_path_length."""
    import networkx as nx

    rng = np.random.default_rng(seed)
    adj = np.triu(rng.random((n, n)) < density, k=1)
    dist = longest_paths(adj)
    g = nx.from_numpy_array(adj, create_using=nx.DiGraph)
    for a in range(n):
        for b in range(n):
            if a == b:
                continue
            paths = list(nx.all_simple_paths(g, a, b)) if nx.has_path(g, a, b) else []
            expected = max((len(p) - 1 for p in paths), default=-1)
            assert dist[a, b] == expected


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000), n_nodes=st.integers(3, 20))
def test_bounds_consistency_extends_without_backtracking(seed, n_nodes):
    """For pure <=-chains (no triangle/coverage pressure at C=2... any value
    drawn from a propagated C1 domain extends to a full assignment).

    Uses a chain graph where C1 is the only binding constraint: after fixing
    any node, every remaining domain value must still admit completion.
    """
    from repro.graphs.builders import GraphBuilder
    from repro.graphs.ops import OpType

    b = GraphBuilder("chain")
    prev = b.add_node("n0", OpType.INPUT, compute_us=1.0, output_bytes=1.0)
    for i in range(1, n_nodes):
        prev = b.add_node(f"n{i}", OpType.RELU, compute_us=1.0, output_bytes=1.0,
                          inputs=[prev])
    g = b.build()
    rng = np.random.default_rng(seed)
    s = ConstraintSolver(g, 3)
    order = rng.permutation(n_nodes)
    i = 0
    steps = 0
    while i < n_nodes:
        steps += 1
        assert steps < 20 * n_nodes
        u = int(order[i])
        dom = s.get_domain(u)
        i = s.set_domain(u, int(rng.choice(dom)))
    assert validate_partition(g, s.assignment(), 3).ok
