"""Tests for SAMPLE / FIX strategies (Algorithms 1 and 2)."""

import numpy as np
import pytest

from repro.solver.constraints import validate_partition
from repro.solver.fallback import contiguous_partition
from repro.solver.strategies import fix_partition, sample_partition, topo_prior
from tests.conftest import random_dag


class TestSamplePartition:
    def test_output_always_valid(self, diamond_graph):
        rng = np.random.default_rng(0)
        probs = np.full((5, 3), 1.0 / 3)
        for _ in range(20):
            y = sample_partition(diamond_graph, probs, 3, rng=rng)
            assert validate_partition(diamond_graph, y, 3).ok

    def test_respects_sharp_distribution(self, chain_graph):
        # All mass on chip 0 -> the only consistent partition is all-zero.
        probs = np.zeros((10, 3))
        probs[:, 0] = 1.0
        y = sample_partition(chain_graph, probs, 3, rng=0)
        np.testing.assert_array_equal(y, 0)

    def test_biased_distribution_shifts_result(self):
        # Early bias admits the exactly-feasible all-zero partition, so its
        # mean is 0; any late bias must land strictly above it.  (Comparing
        # late bias against *uniform* is not stream-robust: all-on-last-chip
        # violates no-skipping, and the solver's repairs wash the bias out.)
        g = random_dag(11, 30, edge_prob=0.15)
        early = np.full((30, 4), 1e-6)
        early[:, 0] = 1.0
        early /= early.sum(axis=1, keepdims=True)
        late = np.full((30, 4), 1e-6)
        late[:, 3] = 1.0
        late /= late.sum(axis=1, keepdims=True)
        rng = np.random.default_rng(0)
        mean_early = np.mean(
            [sample_partition(g, early, 4, rng=rng).mean() for _ in range(10)]
        )
        mean_late = np.mean(
            [sample_partition(g, late, 4, rng=rng).mean() for _ in range(10)]
        )
        assert mean_late > mean_early

    def test_custom_order_accepted(self, chain_graph):
        probs = np.full((10, 2), 0.5)
        y = sample_partition(chain_graph, probs, 2, rng=0, order=np.arange(10))
        assert validate_partition(chain_graph, y, 2).ok

    def test_rejects_bad_order(self, chain_graph):
        probs = np.full((10, 2), 0.5)
        with pytest.raises(ValueError):
            sample_partition(chain_graph, probs, 2, rng=0, order=np.zeros(10, dtype=int))

    def test_rejects_bad_probs(self, chain_graph):
        with pytest.raises(ValueError):
            sample_partition(chain_graph, np.full((10, 2), 0.3), 2, rng=0)

    def test_deterministic_given_seed(self, diamond_graph):
        probs = np.full((5, 3), 1.0 / 3)
        a = sample_partition(diamond_graph, probs, 3, rng=7)
        b = sample_partition(diamond_graph, probs, 3, rng=7)
        np.testing.assert_array_equal(a, b)


class TestFixPartition:
    def test_valid_candidate_preserved(self, chain_graph):
        # A contiguous split is valid; FIX must keep it verbatim.
        candidate = contiguous_partition(chain_graph, 3)
        y = fix_partition(chain_graph, candidate, 3, rng=0)
        np.testing.assert_array_equal(y, candidate)

    def test_invalid_candidate_repaired(self, chain_graph):
        rng = np.random.default_rng(1)
        candidate = rng.integers(0, 3, 10)
        y = fix_partition(chain_graph, candidate, 3, rng=rng)
        assert validate_partition(chain_graph, y, 3).ok

    def test_agreement_maximised_where_possible(self, chain_graph):
        # Candidate valid except one backward value: most nodes keep theirs.
        candidate = contiguous_partition(chain_graph, 3)
        broken = candidate.copy()
        broken[9] = 0  # backwards
        y = fix_partition(chain_graph, broken, 3, rng=0)
        assert validate_partition(chain_graph, y, 3).ok
        agreement = (y == broken).mean()
        assert agreement >= 0.7

    def test_random_dags_always_valid(self):
        rng = np.random.default_rng(3)
        for seed in range(8):
            g = random_dag(seed, 25)
            candidate = rng.integers(0, 4, g.n_nodes)
            y = fix_partition(g, candidate, 4, rng=rng)
            assert validate_partition(g, y, 4).ok

    def test_rejects_bad_candidate_shape(self, chain_graph):
        with pytest.raises(ValueError):
            fix_partition(chain_graph, np.zeros(3, dtype=int), 3, rng=0)

    def test_rejects_out_of_range_candidate(self, chain_graph):
        with pytest.raises(ValueError):
            fix_partition(chain_graph, np.full(10, 9), 3, rng=0)


class TestTopoPrior:
    def test_rows_are_distributions(self, chain_graph):
        prior = topo_prior(chain_graph, 4)
        np.testing.assert_allclose(prior.sum(axis=1), 1.0)

    def test_prior_tracks_position(self, chain_graph):
        prior = topo_prior(chain_graph, 4)
        order = chain_graph.topological_order()
        first, last = order[0], order[-1]
        assert prior[first].argmax() == 0
        assert prior[last].argmax() == 3


class TestFallback:
    def test_contiguous_partition_valid_on_random_dags(self):
        for seed in range(10):
            g = random_dag(seed + 100, 30)
            for c in (1, 2, 4, 7):
                y = contiguous_partition(g, c)
                assert validate_partition(g, y, c).ok

    def test_balance_quality(self, chain_graph):
        y = contiguous_partition(chain_graph, 2)
        loads = np.bincount(y, weights=chain_graph.compute_us, minlength=2)
        assert loads.max() / loads.sum() < 0.75

    def test_single_chip(self, chain_graph):
        np.testing.assert_array_equal(contiguous_partition(chain_graph, 1), 0)

    def test_rejects_zero_chips(self, chain_graph):
        with pytest.raises(ValueError):
            contiguous_partition(chain_graph, 0)
