"""Tests for chip-dependency graph utilities."""

import numpy as np
import pytest

from repro.graphs.builders import GraphBuilder
from repro.graphs.ops import OpType
from repro.solver.chipgraph import chip_adjacency, longest_paths, triangle_violations


def _adj(n, edges):
    adj = np.zeros((n, n), dtype=bool)
    for a, b in edges:
        adj[a, b] = True
    return adj


class TestLongestPaths:
    def test_empty(self):
        dist = longest_paths(_adj(3, []))
        np.testing.assert_array_equal(np.diag(dist), 0)
        assert (dist >= 0).sum() == 3  # only the diagonal

    def test_path_graph(self):
        dist = longest_paths(_adj(4, [(0, 1), (1, 2), (2, 3)]))
        assert dist[0, 3] == 3
        assert dist[1, 3] == 2
        assert dist[3, 0] == -1

    def test_longest_not_shortest(self):
        # 0->2 direct, but 0->1->2 is longer.
        dist = longest_paths(_adj(3, [(0, 2), (0, 1), (1, 2)]))
        assert dist[0, 2] == 2

    def test_rejects_downward_edges(self):
        with pytest.raises(ValueError):
            longest_paths(_adj(3, [(2, 0)]))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            longest_paths(np.zeros((2, 3), dtype=bool))


class TestTriangleViolations:
    def test_paper_figure2e_pattern(self):
        # direct 0->2 plus chain 0->1->2: the forbidden pattern.
        v = triangle_violations(_adj(3, [(0, 2), (0, 1), (1, 2)]))
        assert [0, 2] in v.tolist()

    def test_path_is_clean(self):
        assert triangle_violations(_adj(4, [(0, 1), (1, 2), (2, 3)])).size == 0

    def test_skip_edge_without_path_is_clean(self):
        # 0->2 direct with no path through 1 is fine.
        assert triangle_violations(_adj(3, [(0, 2)])).size == 0

    def test_long_range_violation(self):
        # direct 0->3 vs chain 0->1->2->3
        v = triangle_violations(_adj(4, [(0, 3), (0, 1), (1, 2), (2, 3)]))
        assert [0, 3] in v.tolist()


class TestChipAdjacency:
    def test_basic(self, diamond_graph):
        adj = chip_adjacency(diamond_graph, np.array([0, 0, 1, 1, 2]), 3)
        assert adj[0, 1] and adj[1, 2]
        assert not adj[0, 2]

    def test_same_chip_no_edge(self, diamond_graph):
        adj = chip_adjacency(diamond_graph, np.zeros(5, dtype=int), 3)
        assert not adj.any()

    def test_replicable_sources_excluded(self):
        b = GraphBuilder("g")
        c = b.add_node("c", OpType.CONSTANT, output_bytes=4.0)
        x = b.add_node("x", OpType.INPUT, output_bytes=4.0)
        b.add_node("y", OpType.ADD, inputs=[c, x], output_bytes=4.0)
        g = b.build()
        adj = chip_adjacency(g, np.array([0, 1, 1]), 2)
        assert not adj.any()
