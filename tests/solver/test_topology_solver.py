"""Per-topology solver completeness: solver solutions == brute force.

For every built-in topology the incremental solver must accept *exactly*
the brute-force-valid partitions: driving it with the values of a valid
assignment commits every step and reproduces the assignment, and driving it
with an invalid assignment back-tracks (or leaves the driver unable to pick
the value).  The uni-ring case additionally pins that a total-order topology
reduces to the legacy engine.
"""

from itertools import product

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.builders import GraphBuilder
from repro.graphs.ops import OpType
from repro.hardware.topology import BiRing, Crossbar, Mesh2D, UniRing
from repro.solver.engine import ConstraintSolver, Unsatisfiable
from repro.solver.enumerate import count_valid_partitions, enumerate_valid_partitions
from repro.solver.strategies import fix_partition, sample_partition
from tests.conftest import random_dag


def _chain(k):
    b = GraphBuilder("chain")
    prev = b.add_node("n0", OpType.INPUT, compute_us=1.0, output_bytes=1.0)
    for i in range(1, k):
        prev = b.add_node(
            f"n{i}", OpType.RELU, compute_us=1.0, output_bytes=1.0, inputs=[prev]
        )
    return b.build()


def _diamond():
    b = GraphBuilder("diamond")
    a = b.add_node("a", OpType.INPUT, compute_us=1.0, output_bytes=1.0)
    l = b.add_node("l", OpType.RELU, compute_us=1.0, output_bytes=1.0, inputs=[a])
    r = b.add_node("r", OpType.RELU, compute_us=1.0, output_bytes=1.0, inputs=[a])
    b.add_node("o", OpType.ADD, compute_us=1.0, output_bytes=1.0, inputs=[l, r])
    return b.build()


def _solver_emits(graph, n_chips, topology, assignment) -> bool:
    """Drive the solver with exactly ``assignment``; True iff it commits."""
    s = ConstraintSolver(graph, n_chips, topology=topology)
    try:
        for u in graph.topological_order().tolist():
            if int(assignment[u]) not in s.get_domain(u):
                return False
            before = s.n_decisions
            if s.set_domain(u, int(assignment[u])) <= before:
                return False
        return bool(np.array_equal(s.assignment(), assignment))
    except Unsatisfiable:
        return False


TOPOLOGIES = [
    UniRing(3),
    BiRing(3),
    Crossbar(3),
    Mesh2D(2, 2),
]


class TestExhaustiveCompleteness:
    @pytest.mark.parametrize("topology", TOPOLOGIES, ids=lambda t: t.name)
    @pytest.mark.parametrize("make_graph", [_chain, _diamond], ids=["chain", "diamond"])
    def test_solver_accepts_exactly_the_valid_set(self, topology, make_graph):
        graph = make_graph(4) if make_graph is _chain else make_graph()
        c = topology.n_chips
        valid = {
            tuple(v)
            for v in enumerate_valid_partitions(graph, c, topology=topology)
        }
        emitted = {
            values
            for values in product(range(c), repeat=graph.n_nodes)
            if _solver_emits(graph, c, topology, np.array(values, dtype=np.int64))
        }
        assert emitted == valid

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_random_dags_on_biring(self, seed):
        graph = random_dag(seed, 5)
        topology = BiRing(3)
        valid = {
            tuple(v) for v in enumerate_valid_partitions(graph, 3, topology=topology)
        }
        emitted = {
            values
            for values in product(range(3), repeat=5)
            if _solver_emits(graph, 3, topology, np.array(values, dtype=np.int64))
        }
        assert emitted == valid


class TestStrategiesAcrossTopologies:
    @pytest.mark.parametrize("topology", TOPOLOGIES, ids=lambda t: t.name)
    def test_sample_and_fix_emit_valid_partitions(self, topology):
        graph = random_dag(3, 7)
        c = topology.n_chips
        valid = {
            tuple(v) for v in enumerate_valid_partitions(graph, c, topology=topology)
        }
        rng = np.random.default_rng(0)
        probs = np.full((graph.n_nodes, c), 1.0 / c)
        for _ in range(5):
            y = sample_partition(graph, probs, c, rng=rng, topology=topology)
            assert tuple(y) in valid
            cand = rng.integers(0, c, graph.n_nodes)
            y2 = fix_partition(graph, cand, c, rng=rng, topology=topology)
            assert tuple(y2) in valid

    def test_sample_covers_the_biring_valid_set(self):
        graph = _chain(3)
        topology = BiRing(2)
        valid = {
            tuple(v) for v in enumerate_valid_partitions(graph, 2, topology=topology)
        }
        probs = np.full((3, 2), 0.5)
        rng = np.random.default_rng(1)
        seen = set()
        for _ in range(400):
            seen.add(tuple(sample_partition(graph, probs, 2, rng=rng, topology=topology)))
            if seen == valid:
                break
        assert seen == valid


class TestUniRingReduction:
    def test_total_order_topology_takes_the_legacy_engine(self):
        graph = _chain(4)
        legacy = ConstraintSolver(graph, 3)
        pinned = ConstraintSolver(graph, 3, topology=UniRing(3))
        assert not legacy._general and not pinned._general
        # Identical domains after identical restrictions.
        for s in (legacy, pinned):
            s.set_domain(1, 1)
        for u in range(4):
            np.testing.assert_array_equal(legacy.get_domain(u), pinned.get_domain(u))

    def test_valid_sets_agree_with_and_without_topology(self):
        graph = _diamond()
        with_topo = count_valid_partitions(graph, 3, topology=UniRing(3))
        without = count_valid_partitions(graph, 3)
        assert with_topo == without

    def test_wider_reachability_never_shrinks_the_valid_set(self):
        """The ring's valid partitions stay valid on every richer fabric."""
        graph = _diamond()
        ring = {tuple(v) for v in enumerate_valid_partitions(graph, 3)}
        for topology in (BiRing(3), Crossbar(3)):
            richer = {
                tuple(v)
                for v in enumerate_valid_partitions(graph, 3, topology=topology)
            }
            assert ring <= richer
            assert len(richer) > len(ring)


class TestGeneralModeEngine:
    def test_chip_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="topology is for"):
            ConstraintSolver(_chain(3), 4, topology=BiRing(3))

    def test_no_skipping_enforced_in_general_mode(self):
        graph = _chain(2)
        s = ConstraintSolver(graph, 2, topology=Crossbar(2))
        # Forcing both nodes onto chip 1 leaves chip 0 uncovered.
        assert s.set_domain(0, 1) == 1
        count = s.set_domain(1, 1)
        assert count <= 1  # back-tracked rather than committed

    def test_backtracking_restores_general_state(self):
        graph = _diamond()
        topology = BiRing(3)
        s = ConstraintSolver(graph, 3, topology=topology)
        baseline = [s.get_domain(u).tolist() for u in range(4)]
        # Drive into a conflict, then reset: domains must be pristine.
        s.set_domain(0, 2)
        s.reset()
        assert [s.get_domain(u).tolist() for u in range(4)] == baseline
