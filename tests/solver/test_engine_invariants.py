"""Invariant tests: the engine's bookkeeping survives conflicts and resets."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver.constraints import validate_partition
from repro.solver.engine import ConstraintSolver
from tests.conftest import random_dag


def _bookkeeping_snapshot(solver: ConstraintSolver):
    return (
        list(solver._masks),
        list(solver._cover),
        solver._max_lo,
        solver._edge_count.copy(),
    )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2000), n_nodes=st.integers(3, 20))
def test_reset_restores_pristine_state(seed, n_nodes):
    g = random_dag(seed, n_nodes)
    solver = ConstraintSolver(g, 4)
    pristine = _bookkeeping_snapshot(solver)
    rng = np.random.default_rng(seed)
    # make a handful of decisions (some may conflict and back-track)
    for _ in range(min(n_nodes, 6)):
        u = int(rng.integers(0, n_nodes))
        if solver.is_fixed(u):
            continue
        dom = solver.get_domain(u)
        solver.set_domain(u, int(rng.choice(dom)))
    solver.reset()
    after = _bookkeeping_snapshot(solver)
    assert after[0] == pristine[0]
    assert after[1] == pristine[1]
    assert after[2] == pristine[2]
    np.testing.assert_array_equal(after[3], pristine[3])


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2000), n_nodes=st.integers(3, 20))
def test_cover_counts_match_masks(seed, n_nodes):
    """cover[d] must always equal the number of domains containing d."""
    g = random_dag(seed, n_nodes)
    solver = ConstraintSolver(g, 4)
    rng = np.random.default_rng(seed)
    for _ in range(min(n_nodes, 8)):
        u = int(rng.integers(0, n_nodes))
        if solver.is_fixed(u):
            continue
        dom = solver.get_domain(u)
        solver.set_domain(u, int(rng.choice(dom)))
        for d in range(4):
            expected = sum(1 for m in solver._masks if m >> d & 1)
            assert solver._cover[d] == expected


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2000), n_nodes=st.integers(3, 16))
def test_edge_counts_match_fixed_pairs(seed, n_nodes):
    """The chip-edge multiset must equal the cross-chip edges among fixed
    node pairs (each graph edge counted once)."""
    g = random_dag(seed, n_nodes)
    solver = ConstraintSolver(g, 3)
    rng = np.random.default_rng(seed)
    for _ in range(n_nodes):
        u = int(rng.integers(0, n_nodes))
        if solver.is_fixed(u):
            continue
        dom = solver.get_domain(u)
        solver.set_domain(u, int(rng.choice(dom)))
    expected = np.zeros((3, 3), dtype=np.int64)
    replicable = g.is_replicable()
    for s_, d_ in zip(g.src.tolist(), g.dst.tolist()):
        if replicable[s_]:
            continue
        if solver.is_fixed(s_) and solver.is_fixed(d_):
            a = solver._masks[s_].bit_length() - 1
            b = solver._masks[d_].bit_length() - 1
            if a != b:
                expected[a, b] += 1
    np.testing.assert_array_equal(solver._edge_count, expected)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2000), n_nodes=st.integers(4, 16))
def test_completion_after_heavy_conflicts_is_valid(seed, n_nodes):
    """Drive the solver adversarially (always pick the largest domain value)
    and verify any completion still satisfies every constraint."""
    g = random_dag(seed, n_nodes)
    solver = ConstraintSolver(g, 3)
    order = list(range(n_nodes))
    i = 0
    steps = 0
    while i < n_nodes and steps < 50 * n_nodes:
        steps += 1
        u = order[i % n_nodes]
        if solver.is_fixed(u):
            i = solver.set_domain(u, solver.get_domain(u))
            continue
        dom = solver.get_domain(u)
        i = solver.set_domain(u, int(dom.max()))
    if i >= n_nodes:
        assert validate_partition(g, solver.assignment(), 3).ok
