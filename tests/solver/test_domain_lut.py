"""The byte-LUT bitmask -> value-array conversion behind ``get_domain``."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver.engine import _mask_to_values


@settings(max_examples=200, deadline=None)
@given(mask=st.integers(0, (1 << 63) - 1))
def test_matches_list_comprehension(mask):
    expected = np.array([d for d in range(64) if mask >> d & 1], dtype=np.int64)
    np.testing.assert_array_equal(_mask_to_values(mask), expected)


def test_small_masks_share_readonly_arrays():
    a = _mask_to_values(0b1011)
    b = _mask_to_values(0b1011)
    assert a is b
    assert not a.flags.writeable


def test_empty_mask():
    assert _mask_to_values(0).size == 0
